"""Tests for shared utilities (rng, timing, logging)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.logging import RunLog, format_table
from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.timing import AmortizedStats, Timer, WelfordAccumulator


class TestRng:
    def test_new_rng_from_int(self):
        a, b = new_rng(5), new_rng(5)
        assert a.random() == b.random()

    def test_new_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert new_rng(g) is g

    def test_spawn_independent(self):
        children = spawn_rngs(new_rng(1), 3)
        vals = [c.random() for c in children]
        assert len(set(vals)) == 3

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(new_rng(0), -1)

    def test_mixin_lazy(self):
        class Thing(RngMixin):
            pass

        t = Thing()
        assert isinstance(t.rng, np.random.Generator)
        t.rng = 7
        assert t.rng.random() == new_rng(7).random()


class TestTimer:
    def test_measures_nonnegative(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0


class TestWelford:
    def test_mean_and_variance(self):
        acc = WelfordAccumulator()
        data = [1.0, 2.0, 3.0, 4.0]
        for x in data:
            acc.add(x)
        assert acc.mean == pytest.approx(np.mean(data))
        assert acc.variance == pytest.approx(np.var(data, ddof=1))
        assert acc.min == 1.0
        assert acc.max == 4.0

    def test_empty(self):
        acc = WelfordAccumulator()
        assert acc.mean == 0.0
        assert acc.variance == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy(self, data):
        acc = WelfordAccumulator()
        for x in data:
            acc.add(x)
        assert math.isclose(acc.mean, float(np.mean(data)), rel_tol=1e-9, abs_tol=1e-6)

    @given(
        a=st.lists(st.floats(-100, 100), min_size=1, max_size=20),
        b=st.lists(st.floats(-100, 100), min_size=1, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_sequential(self, a, b):
        left = WelfordAccumulator()
        for x in a:
            left.add(x)
        right = WelfordAccumulator()
        for x in b:
            right.add(x)
        left.merge(right)
        combined = WelfordAccumulator()
        for x in a + b:
            combined.add(x)
        assert math.isclose(left.mean, combined.mean, rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(left._m2, combined._m2, rel_tol=1e-6, abs_tol=1e-6)


class TestAmortizedStats:
    def test_amortized(self):
        s = AmortizedStats()
        s.record(1.0, ops=10)
        s.record(2.0, ops=20)
        assert s.amortized == pytest.approx(3.0 / 30)
        assert s.operations == 30

    def test_zero_ops_rejected(self):
        with pytest.raises(ValueError):
            AmortizedStats().record(1.0, ops=0)

    def test_empty_amortized_zero(self):
        assert AmortizedStats().amortized == 0.0


class TestRunLog:
    def test_log_and_select(self):
        log = RunLog()
        log.log("move", n=1)
        log.log("train", loss=0.5)
        log.log("move", n=2)
        assert len(log.select("move")) == 2
        assert log.last("move")["n"] == 2
        assert log.last("missing") is None

    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows)
        assert "a" in text and "b" in text
        assert "10" in text

    def test_format_empty(self):
        assert format_table([]) == "(empty)"
