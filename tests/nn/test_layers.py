"""Gradient checks and behavioural tests for every layer.

Each layer's ``backward`` is validated against central-difference
numerical gradients -- both for the input gradient and for every
parameter gradient.  This is the strongest correctness guarantee a
hand-written adjoint can get.
"""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    Module,
    Parameter,
    ReLU,
    Tanh,
)
from tests.conftest import assert_grad_close, numerical_gradient


def check_input_gradient(layer: Module, x: np.ndarray, tol: float = 1e-5):
    """Compare layer input gradient to numerical differentiation of a
    random scalar projection of the output."""
    rng = np.random.default_rng(99)
    out = layer.forward(x)
    proj = rng.random(out.shape)

    def scalar():
        return float(np.sum(layer.forward(x) * proj))

    numeric = numerical_gradient(scalar, x)
    layer.forward(x)  # refresh caches after perturbations
    analytic = layer.backward(proj)
    assert_grad_close(analytic, numeric, tol)


def check_param_gradients(layer: Module, x: np.ndarray, tol: float = 1e-5):
    rng = np.random.default_rng(98)
    out = layer.forward(x)
    proj = rng.random(out.shape)

    def scalar():
        return float(np.sum(layer.forward(x) * proj))

    for p in layer.parameters():
        numeric = numerical_gradient(scalar, p.data)
        layer.zero_grad()
        layer.forward(x)
        layer.backward(proj)
        assert_grad_close(p.grad, numeric, tol)


class TestParameter:
    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        assert np.allclose(p.grad, 0.0)

    def test_shape_and_size(self):
        p = Parameter(np.zeros((2, 3)))
        assert p.shape == (2, 3)
        assert p.size == 6


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 7, rng=0)
        assert layer.forward(np.zeros((3, 4))).shape == (3, 7)

    def test_rejects_bad_input(self):
        layer = Linear(4, 7, rng=0)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((3, 5)))

    def test_input_gradient(self):
        layer = Linear(5, 3, rng=1)
        check_input_gradient(layer, np.random.default_rng(0).random((4, 5)))

    def test_param_gradients(self):
        layer = Linear(5, 3, rng=2)
        check_param_gradients(layer, np.random.default_rng(1).random((4, 5)))

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_grad_accumulates(self):
        layer = Linear(3, 2, rng=3)
        x = np.ones((2, 3))
        g = np.ones((2, 2))
        layer.forward(x)
        layer.backward(g)
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(g)
        assert np.allclose(layer.weight.grad, 2 * first)


class TestConv2d:
    def test_forward_shape_padded(self):
        conv = Conv2d(3, 8, 3, padding=1, rng=0)
        assert conv.forward(np.zeros((2, 3, 6, 6))).shape == (2, 8, 6, 6)

    def test_forward_shape_strided(self):
        conv = Conv2d(1, 4, 2, stride=2, rng=0)
        assert conv.forward(np.zeros((1, 1, 8, 8))).shape == (1, 4, 4, 4)

    def test_rejects_wrong_channels(self):
        conv = Conv2d(3, 8, 3, rng=0)
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 2, 5, 5)))

    def test_1x1_is_pointwise(self):
        conv = Conv2d(2, 3, 1, bias=False, rng=1)
        x = np.random.default_rng(2).random((1, 2, 4, 4))
        out = conv.forward(x)
        w = conv.weight.data.reshape(3, 2)
        ref = np.einsum("fc,bchw->bfhw", w, x)
        assert np.allclose(out, ref)

    def test_input_gradient(self):
        conv = Conv2d(2, 3, 3, padding=1, rng=4)
        check_input_gradient(conv, np.random.default_rng(3).random((2, 2, 4, 4)))

    def test_input_gradient_strided(self):
        conv = Conv2d(1, 2, 2, stride=2, rng=5)
        check_input_gradient(conv, np.random.default_rng(4).random((1, 1, 4, 4)))

    def test_param_gradients(self):
        conv = Conv2d(2, 2, 3, padding=1, rng=6)
        check_param_gradients(conv, np.random.default_rng(5).random((2, 2, 4, 4)))

    def test_bias_broadcast(self):
        conv = Conv2d(1, 2, 1, rng=7)
        conv.weight.data[...] = 0.0
        conv.bias.data[...] = [1.0, -2.0]
        out = conv.forward(np.zeros((1, 1, 3, 3)))
        assert np.allclose(out[0, 0], 1.0)
        assert np.allclose(out[0, 1], -2.0)


class TestActivations:
    def test_relu_forward(self):
        r = ReLU()
        assert np.allclose(r.forward(np.array([[-1.0, 2.0]])), [[0.0, 2.0]])

    def test_relu_gradient(self):
        check_input_gradient(ReLU(), np.random.default_rng(6).standard_normal((3, 5)) + 0.1)

    def test_relu_blocks_negative_grad(self):
        r = ReLU()
        r.forward(np.array([[-1.0, 1.0]]))
        g = r.backward(np.array([[5.0, 5.0]]))
        assert np.allclose(g, [[0.0, 5.0]])

    def test_tanh_range(self):
        t = Tanh()
        out = t.forward(np.array([[-100.0, 0.0, 100.0]]))
        assert np.all(np.abs(out) <= 1.0)

    def test_tanh_gradient(self):
        check_input_gradient(Tanh(), np.random.default_rng(7).standard_normal((2, 4)))


class TestFlatten:
    def test_roundtrip(self):
        f = Flatten()
        x = np.random.default_rng(8).random((2, 3, 4, 4))
        out = f.forward(x)
        assert out.shape == (2, 48)
        back = f.backward(out)
        assert back.shape == x.shape
        assert np.allclose(back, x)


class TestBatchNorm2d:
    def test_normalises_in_train_mode(self):
        bn = BatchNorm2d(3)
        x = np.random.default_rng(9).random((8, 3, 4, 4)) * 5 + 2
        out = bn.forward(x)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_update(self):
        bn = BatchNorm2d(2, momentum=0.5)
        x = np.ones((4, 2, 3, 3)) * 10
        bn.forward(x)
        assert np.all(bn.running_mean > 0)

    def test_eval_mode_uses_running_stats(self):
        bn = BatchNorm2d(2)
        x = np.random.default_rng(10).random((4, 2, 3, 3))
        for _ in range(50):
            bn.forward(x)
        bn.eval()
        out_eval = bn.forward(x)
        bn.train()
        out_train = bn.forward(x)
        assert np.allclose(out_eval, out_train, atol=1e-1)

    def test_input_gradient_train(self):
        bn = BatchNorm2d(2)
        check_input_gradient(
            bn, np.random.default_rng(11).random((4, 2, 3, 3)), tol=1e-4
        )

    def test_param_gradients(self):
        bn = BatchNorm2d(2)
        check_param_gradients(
            bn, np.random.default_rng(12).random((4, 2, 3, 3)), tol=1e-4
        )

    def test_rejects_wrong_shape(self):
        bn = BatchNorm2d(3)
        with pytest.raises(ValueError):
            bn.forward(np.zeros((2, 4, 3, 3)))


class TestDropout:
    def test_eval_is_identity(self):
        d = Dropout(0.5, rng=0)
        d.eval()
        x = np.random.default_rng(13).random((3, 4))
        assert np.allclose(d.forward(x), x)

    def test_train_zeroes_some(self):
        d = Dropout(0.5, rng=1)
        x = np.ones((100, 100))
        out = d.forward(x)
        frac_zero = np.mean(out == 0.0)
        assert 0.4 < frac_zero < 0.6

    def test_inverted_scaling_preserves_mean(self):
        d = Dropout(0.3, rng=2)
        x = np.ones((200, 200))
        out = d.forward(x)
        assert abs(out.mean() - 1.0) < 0.02

    def test_backward_masks_consistently(self):
        d = Dropout(0.5, rng=3)
        x = np.ones((10, 10))
        out = d.forward(x)
        g = d.backward(np.ones_like(x))
        assert np.allclose((out == 0), (g == 0))

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestModuleInfra:
    def test_parameter_discovery_nested(self):
        from repro.nn.network import Sequential

        seq = Sequential(Linear(3, 4, rng=0), ReLU(), Linear(4, 2, rng=0))
        assert len(seq.parameters()) == 4  # 2 weights + 2 biases

    def test_state_dict_roundtrip(self):
        a = Linear(3, 4, rng=0)
        b = Linear(3, 4, rng=1)
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.weight.data, b.weight.data)

    def test_state_dict_shape_mismatch(self):
        a = Linear(3, 4, rng=0)
        b = Linear(4, 4, rng=0)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_train_eval_propagates(self):
        from repro.nn.network import Sequential

        seq = Sequential(Linear(3, 3, rng=0), Dropout(0.5), ReLU())
        seq.eval()
        assert not seq.layers[1].training
        seq.train()
        assert seq.layers[1].training

    def test_num_parameters(self):
        lin = Linear(10, 5, rng=0)
        assert lin.num_parameters() == 10 * 5 + 5
