"""Tests for Sequential and the paper's PolicyValueNet architecture."""

import numpy as np
import pytest

from repro.games import ConnectFour, TicTacToe, build_network_for
from repro.nn.layers import Conv2d, Linear, ReLU
from repro.nn.losses import AlphaZeroLoss
from repro.nn.network import PolicyValueNet, Sequential
from tests.conftest import assert_grad_close, numerical_gradient


class TestSequential:
    def test_composes(self):
        seq = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=0))
        out = seq.forward(np.zeros((3, 4)))
        assert out.shape == (3, 2)

    def test_backward_chains(self):
        seq = Sequential(Linear(3, 3, rng=0), ReLU())
        x = np.random.default_rng(0).random((2, 3))
        out = seq.forward(x)
        g = seq.backward(np.ones_like(out))
        assert g.shape == x.shape

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential()

    def test_indexing(self):
        seq = Sequential(Linear(2, 2, rng=0), ReLU())
        assert len(seq) == 2
        assert isinstance(seq[1], ReLU)


class TestPolicyValueNetArchitecture:
    def test_paper_layer_count(self):
        """Section 5.1: 5 convolution layers and 3 fully-connected layers."""
        net = PolicyValueNet(board_size=15, rng=0)
        convs = [
            l
            for seq in (net.trunk, net.policy_head, net.value_head)
            for l in seq.layers
            if isinstance(l, Conv2d)
        ]
        fcs = [
            l
            for seq in (net.trunk, net.policy_head, net.value_head)
            for l in seq.layers
            if isinstance(l, Linear)
        ]
        assert len(convs) == 5
        assert len(fcs) == 3

    def test_output_shapes(self):
        net = PolicyValueNet(board_size=5, in_channels=4, channels=(4, 8, 8), rng=0)
        out = net.predict(np.zeros((2, 4, 5, 5)))
        assert out.policy.shape == (2, 25)
        assert out.value.shape == (2,)
        assert out.logits.shape == (2, 25)

    def test_policy_is_distribution(self):
        net = PolicyValueNet(board_size=4, channels=(4, 4, 4), rng=1)
        out = net.predict(np.random.default_rng(0).random((3, 4, 4, 4)))
        assert np.allclose(out.policy.sum(axis=-1), 1.0)
        assert np.all(out.policy >= 0)

    def test_value_in_range(self):
        net = PolicyValueNet(board_size=4, channels=(4, 4, 4), rng=2)
        out = net.predict(np.random.default_rng(1).random((5, 4, 4, 4)) * 10)
        assert np.all(np.abs(out.value) <= 1.0)

    def test_single_state_promoted_to_batch(self):
        net = PolicyValueNet(board_size=3, channels=(2, 2, 2), rng=3)
        out = net.predict(np.zeros((4, 3, 3)))
        assert out.policy.shape == (1, 9)

    def test_non_square_and_custom_actions(self):
        net = PolicyValueNet(board_size=(6, 7), action_size=7, channels=(2, 4, 4), rng=4)
        out = net.predict(np.zeros((1, 4, 6, 7)))
        assert out.policy.shape == (1, 7)

    def test_build_network_for_games(self):
        for game in (TicTacToe(), ConnectFour()):
            net = build_network_for(game, channels=(2, 4, 4), rng=0)
            out = net.predict(game.encode())
            assert out.policy.shape == (1, game.action_size)

    def test_deterministic_given_seed(self):
        a = PolicyValueNet(board_size=3, channels=(2, 2, 2), rng=7)
        b = PolicyValueNet(board_size=3, channels=(2, 2, 2), rng=7)
        x = np.random.default_rng(2).random((1, 4, 3, 3))
        assert np.allclose(a.predict(x).logits, b.predict(x).logits)


class TestPolicyValueNetGradients:
    def test_end_to_end_gradcheck(self):
        """Numerical gradient of the full Equation-2 loss through both
        heads and the trunk, for a few parameters of every layer group."""
        rng = np.random.default_rng(5)
        net = PolicyValueNet(board_size=3, in_channels=2, channels=(2, 2, 2), rng=6)
        net.num_planes = 2
        x = rng.random((2, 2, 3, 3))
        pi = rng.dirichlet(np.ones(9), size=2)
        z = rng.uniform(-1, 1, 2)
        loss_fn = AlphaZeroLoss(l2=0.0)

        def scalar():
            out = net.forward(x)
            return loss_fn(out.logits, out.value, pi, z).total

        net.zero_grad()
        out = net.forward(x)
        loss = loss_fn(out.logits, out.value, pi, z)
        net.backward(loss.grad_logits, loss.grad_value)

        # check a parameter from the trunk, each head, and a bias
        params = net.parameters()
        for p in (params[0], params[6], params[-2]):
            flat_idx = 0  # perturb only a handful of entries for speed
            view = p.data.reshape(-1)
            grad_view = p.grad.reshape(-1)
            for flat_idx in range(0, view.size, max(1, view.size // 5)):
                eps = 1e-6
                orig = view[flat_idx]
                view[flat_idx] = orig + eps
                f_plus = scalar()
                view[flat_idx] = orig - eps
                f_minus = scalar()
                view[flat_idx] = orig
                numeric = (f_plus - f_minus) / (2 * eps)
                assert_grad_close(
                    np.array([grad_view[flat_idx]]), np.array([numeric]), tol=1e-4
                )

    def test_training_reduces_loss_on_fixed_batch(self):
        from repro.nn.optim import SGD

        rng = np.random.default_rng(8)
        net = PolicyValueNet(board_size=3, channels=(4, 4, 4), rng=9)
        x = rng.random((8, 4, 3, 3))
        pi = rng.dirichlet(np.ones(9), size=8)
        z = rng.uniform(-1, 1, 8)
        loss_fn = AlphaZeroLoss(l2=0.0)
        opt = SGD(net.parameters(), lr=0.05, momentum=0.9)
        losses = []
        for _ in range(120):
            net.zero_grad()
            out = net.forward(x)
            loss = loss_fn(out.logits, out.value, pi, z)
            net.backward(loss.grad_logits, loss.grad_value)
            opt.step()
            losses.append(loss.total)
        # overfitting a fixed batch must reduce the loss substantially; the
        # floor is the entropy of the soft policy targets, so compare the
        # achieved *reduction*, not the absolute value.
        assert losses[-1] < losses[0] - 0.2


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        net = PolicyValueNet(board_size=3, channels=(2, 2, 2), rng=10)
        other = PolicyValueNet(board_size=3, channels=(2, 2, 2), rng=11)
        path = str(tmp_path / "weights.npz")
        net.save(path)
        other.load(path)
        x = np.random.default_rng(3).random((1, 4, 3, 3))
        assert np.allclose(net.predict(x).logits, other.predict(x).logits)


class TestPredictBatch:
    def test_matches_per_state_mask_and_normalize(self):
        """The vectorised batched path must agree exactly with the scalar
        mask_and_normalize reference applied row by row."""
        from repro.games import TicTacToe
        from repro.mcts.evaluation import mask_and_normalize

        games = [TicTacToe()]
        for moves in ((0,), (0, 4), (0, 4, 8), (1, 3, 5, 7)):
            g = TicTacToe()
            for m in moves:
                g.step(m)
            games.append(g)
        net = PolicyValueNet(board_size=3, channels=(2, 4, 4), rng=12)
        states = np.stack([g.encode() for g in games])
        masks = np.stack([g.legal_mask() for g in games])

        out = net.predict_batch(states, masks)
        raw = net.predict(states)
        assert np.allclose(out.value, raw.value)
        for i, g in enumerate(games):
            expected = mask_and_normalize(raw.policy[i], masks[i])
            assert np.allclose(out.policy[i], expected)
            assert np.isclose(out.policy[i].sum(), 1.0)
            assert (out.policy[i][~masks[i]] == 0).all()

    def test_no_mask_is_plain_predict(self):
        net = PolicyValueNet(board_size=3, channels=(2, 2, 2), rng=13)
        x = np.random.default_rng(0).random((4, 4, 3, 3))
        assert np.allclose(net.predict_batch(x).policy, net.predict(x).policy)

    def test_degenerate_rows_fall_back_to_uniform(self):
        """Rows whose legal mass underflows renormalise uniformly over the
        legal set -- per row, without disturbing healthy rows."""

        net = PolicyValueNet(board_size=3, channels=(2, 2, 2), rng=14)
        x = np.random.default_rng(1).random((2, 4, 3, 3))
        # row 0: only cells {0, 1} legal; row 1: everything legal
        masks = np.zeros((2, 9), dtype=bool)
        masks[0, :2] = True
        masks[1, :] = True
        out = net.predict_batch(x, masks)
        assert np.isclose(out.policy[0].sum(), 1.0)
        assert np.isclose(out.policy[1].sum(), 1.0)
        assert (out.policy[0][2:] == 0).all()

    def test_mask_shape_mismatch_raises(self):
        net = PolicyValueNet(board_size=3, channels=(2, 2, 2), rng=15)
        x = np.random.default_rng(2).random((2, 4, 3, 3))
        with np.testing.assert_raises(ValueError):
            net.predict_batch(x, np.ones((3, 9), dtype=bool))
