"""Tests for optimisers and LR schedules."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import SGD, Adam, ConstantLR, CosineLR, StepLR


def quadratic_param(start=5.0):
    """Single parameter minimising f(x) = x^2 (grad = 2x)."""
    return Parameter(np.array([start]))


def step_quadratic(opt, p, n):
    for _ in range(n):
        p.zero_grad()
        p.grad += 2.0 * p.data
        opt.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        step_quadratic(opt, p, 100)
        assert abs(p.data[0]) < 1e-4

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_param(), quadratic_param()
        plain = SGD([p1], lr=0.01)
        mom = SGD([p2], lr=0.01, momentum=0.9)
        step_quadratic(plain, p1, 20)
        step_quadratic(mom, p2, 20)
        assert abs(p2.data[0]) < abs(p1.data[0])

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.zero_grad()  # zero task gradient; only decay acts
        opt.step()
        assert p.data[0] < 1.0

    def test_single_step_formula(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.5)
        p.grad += 2.0
        opt.step()
        assert np.isclose(p.data[0], 0.0)

    def test_invalid_args(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            SGD([p], lr=-1)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.1)
        step_quadratic(opt, p, 200)
        assert abs(p.data[0]) < 1e-3

    def test_first_step_magnitude(self):
        # with bias correction, the first Adam step is ~lr in magnitude
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        p.grad += 3.0
        opt.step()
        assert np.isclose(1.0 - p.data[0], 0.1, atol=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], betas=(1.0, 0.9))


class TestSchedules:
    def test_constant(self):
        assert ConstantLR().factor(1000) == 1.0

    def test_step_lr(self):
        s = StepLR(step_size=10, gamma=0.5)
        assert s.factor(0) == 1.0
        assert s.factor(10) == 0.5
        assert s.factor(25) == 0.25

    def test_cosine_endpoints(self):
        s = CosineLR(total_steps=100, floor=0.1)
        assert np.isclose(s.factor(0), 1.0)
        assert np.isclose(s.factor(100), 0.1)
        assert np.isclose(s.factor(1000), 0.1)  # clamps past the horizon

    def test_cosine_monotone(self):
        s = CosineLR(total_steps=50)
        vals = [s.factor(i) for i in range(51)]
        assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_schedule_applied_by_optimizer(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0, schedule=StepLR(1, 0.5))
        assert opt.lr == 1.0
        opt.step()
        assert opt.lr == 0.5

    def test_invalid_schedule_args(self):
        with pytest.raises(ValueError):
            StepLR(0)
        with pytest.raises(ValueError):
            CosineLR(0)
        with pytest.raises(ValueError):
            CosineLR(10, floor=2.0)
