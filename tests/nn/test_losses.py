"""Tests for the AlphaZero loss (Equation 2) and its components."""

import numpy as np
import pytest

from repro.nn.functional import softmax
from repro.nn.layers import Parameter
from repro.nn.losses import AlphaZeroLoss, cross_entropy_with_logits, mse
from tests.conftest import assert_grad_close, numerical_gradient


class TestMSE:
    def test_zero_at_match(self):
        x = np.array([1.0, -0.5])
        loss, grad = mse(x, x.copy())
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_known_value(self):
        loss, _ = mse(np.array([2.0, 0.0]), np.array([0.0, 0.0]))
        assert np.isclose(loss, 2.0)  # (4 + 0) / 2

    def test_gradient_numeric(self):
        rng = np.random.default_rng(0)
        pred = rng.random(6)
        target = rng.random(6)

        def f():
            return mse(pred, target)[0]

        _, grad = mse(pred, target)
        assert_grad_close(grad, numerical_gradient(f, pred))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = np.array([[1.0, 2.0, 0.5]])
        pi = np.array([[0.2, 0.5, 0.3]])
        loss, _ = cross_entropy_with_logits(logits, pi)
        p = softmax(logits)
        assert np.isclose(loss, -np.sum(pi * np.log(p)))

    def test_gradient_is_softmax_minus_target(self):
        rng = np.random.default_rng(1)
        logits = rng.random((4, 5))
        pi = rng.dirichlet(np.ones(5), size=4)
        _, grad = cross_entropy_with_logits(logits, pi)
        assert np.allclose(grad, (softmax(logits) - pi) / 4)

    def test_gradient_numeric(self):
        rng = np.random.default_rng(2)
        logits = rng.random((2, 4))
        pi = rng.dirichlet(np.ones(4), size=2)

        def f():
            return cross_entropy_with_logits(logits, pi)[0]

        _, grad = cross_entropy_with_logits(logits, pi)
        assert_grad_close(grad, numerical_gradient(f, logits), tol=1e-4)

    def test_minimised_when_softmax_equals_target(self):
        pi = np.array([[0.7, 0.2, 0.1]])
        logits = np.log(pi)
        loss_at_match, _ = cross_entropy_with_logits(logits, pi)
        loss_off, _ = cross_entropy_with_logits(logits + [[1.0, 0, 0]], pi)
        assert loss_at_match < loss_off

    def test_rejects_non_distribution(self):
        with pytest.raises(ValueError):
            cross_entropy_with_logits(np.zeros((1, 3)), np.array([[0.5, 0.5, 0.5]]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            cross_entropy_with_logits(np.zeros((1, 3)), np.full((1, 4), 0.25))


class TestAlphaZeroLoss:
    def _setup(self, seed=0, n=3, a=4):
        rng = np.random.default_rng(seed)
        logits = rng.random((n, a))
        value = rng.uniform(-1, 1, n)
        pi = rng.dirichlet(np.ones(a), size=n)
        z = rng.uniform(-1, 1, n)
        return logits, value, pi, z

    def test_decomposition(self):
        logits, value, pi, z = self._setup()
        loss = AlphaZeroLoss(l2=0.0)(logits, value, pi, z)
        v, _ = mse(value, z)
        p, _ = cross_entropy_with_logits(logits, pi)
        assert np.isclose(loss.total, v + p)
        assert loss.l2_loss == 0.0

    def test_l2_term_and_param_grad(self):
        logits, value, pi, z = self._setup(1)
        p = Parameter(np.full(4, 2.0))
        loss = AlphaZeroLoss(l2=0.01)(logits, value, pi, z, [p])
        assert np.isclose(loss.l2_loss, 0.01 * 4 * 4.0)
        assert np.allclose(p.grad, 2 * 0.01 * 2.0)

    def test_gradients_feed_backward(self):
        logits, value, pi, z = self._setup(2)
        loss = AlphaZeroLoss(l2=0.0)(logits, value, pi, z)
        assert loss.grad_logits.shape == logits.shape
        assert loss.grad_value.shape == value.shape

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            AlphaZeroLoss(l2=-1.0)

    def test_perfect_prediction_minimises(self):
        a = 4
        pi = np.array([[0.1, 0.2, 0.3, 0.4]])
        logits_match = np.log(pi)
        z = np.array([0.5])
        loss_fn = AlphaZeroLoss(l2=0.0)
        perfect = loss_fn(logits_match, z.copy(), pi, z)
        worse = loss_fn(logits_match + [[2, 0, 0, 0]], z - 0.5, pi, z)
        assert perfect.total < worse.total
