"""Tests for the residual policy/value network variant."""

import numpy as np
import pytest

from repro.nn.functional import softmax
from repro.nn.losses import AlphaZeroLoss
from repro.nn.optim import Adam
from repro.nn.resnet import ResidualBlock, ResNetPolicyValueNet
from tests.conftest import assert_grad_close


class TestResidualBlock:
    def test_shape_preserving(self):
        block = ResidualBlock(8, rng=0)
        x = np.random.default_rng(0).random((2, 8, 5, 5))
        assert block.forward(x).shape == x.shape

    def test_identity_at_zero_weights(self):
        """With zeroed conv weights the block is ReLU(BN-const + x)."""
        block = ResidualBlock(4, rng=1)
        for conv in (block.conv1, block.conv2):
            conv.weight.data[...] = 0.0
        block.eval()
        x = np.abs(np.random.default_rng(1).random((1, 4, 3, 3)))
        out = block.forward(x)
        assert np.allclose(out, x, atol=1e-6)

    def test_gradient_through_skip(self):
        """Numerical gradcheck of the residual block end to end."""
        block = ResidualBlock(2, rng=2)
        block.eval()  # freeze BN statistics for a clean check
        rng = np.random.default_rng(2)
        x = rng.random((2, 2, 3, 3))
        proj = rng.random((2, 2, 3, 3))

        def scalar():
            return float(np.sum(block.forward(x) * proj))

        block.forward(x)
        analytic = block.backward(proj)
        eps = 1e-6
        numeric = np.zeros_like(x)
        it = np.nditer(x, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = x[idx]
            x[idx] = orig + eps
            fp = scalar()
            x[idx] = orig - eps
            fm = scalar()
            x[idx] = orig
            numeric[idx] = (fp - fm) / (2 * eps)
            it.iternext()
        assert_grad_close(analytic, numeric, tol=1e-4)

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            ResidualBlock(0)


class TestResNetPolicyValueNet:
    def test_output_contract(self):
        net = ResNetPolicyValueNet(5, num_blocks=2, channels=8, rng=0)
        out = net.predict(np.random.default_rng(0).random((3, 4, 5, 5)))
        assert out.policy.shape == (3, 25)
        assert np.allclose(out.policy.sum(axis=-1), 1.0)
        assert np.all(np.abs(out.value) <= 1.0)

    def test_parameter_discovery_includes_blocks(self):
        net = ResNetPolicyValueNet(4, num_blocks=3, channels=8, rng=1)
        # stem(1 conv + bn) + 3 blocks x (2 conv + 2 bn) + heads
        n_params = len(net.parameters())
        assert n_params > 3 * 4  # all block parameters discovered
        deeper = ResNetPolicyValueNet(4, num_blocks=5, channels=8, rng=1)
        assert len(deeper.parameters()) > n_params

    def test_trains_on_fixed_batch(self):
        rng = np.random.default_rng(3)
        net = ResNetPolicyValueNet(3, num_blocks=1, channels=8, rng=4)
        x = rng.random((8, 4, 3, 3))
        pi = rng.dirichlet(np.ones(9), size=8)
        z = rng.uniform(-1, 1, 8)
        loss_fn = AlphaZeroLoss(l2=0.0)
        opt = Adam(net.parameters(), lr=3e-3)
        losses = []
        for _ in range(60):
            net.zero_grad()
            out = net.forward(x)
            loss = loss_fn(out.logits, out.value, pi, z)
            net.backward(loss.grad_logits, loss.grad_value)
            opt.step()
            losses.append(loss.total)
        assert losses[-1] < losses[0] - 0.2

    def test_mcts_integration(self):
        from repro.games import TicTacToe
        from repro.mcts import NetworkEvaluator, SerialMCTS

        net = ResNetPolicyValueNet(3, num_blocks=1, channels=8, rng=5)
        net.eval()
        engine = SerialMCTS(NetworkEvaluator(net), rng=6)
        prior = engine.get_action_prior(TicTacToe(), 40)
        assert np.isclose(prior.sum(), 1.0)

    def test_save_load_roundtrip(self, tmp_path):
        a = ResNetPolicyValueNet(3, num_blocks=1, channels=4, rng=7)
        b = ResNetPolicyValueNet(3, num_blocks=1, channels=4, rng=8)
        a.eval()
        b.eval()
        path = str(tmp_path / "resnet.npz")
        a.save(path)
        b.load(path)
        x = np.random.default_rng(4).random((1, 4, 3, 3))
        assert np.allclose(a.predict(x).logits, b.predict(x).logits)

    def test_non_square_with_custom_actions(self):
        net = ResNetPolicyValueNet((6, 7), num_blocks=1, channels=8, action_size=7, rng=9)
        out = net.predict(np.zeros((1, 4, 6, 7)))
        assert out.policy.shape == (1, 7)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ResNetPolicyValueNet(0)
        with pytest.raises(ValueError):
            ResNetPolicyValueNet(5, num_blocks=0)
