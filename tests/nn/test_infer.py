"""Tests for the fused float32 inference engine (`repro.nn.infer`).

Covers the plan/reference parity contract (all four games x both
architectures x varying batch sizes, including the legality-masking
path), BatchNorm-folding correctness, staleness/recompilation after SGD
and weight loads, the eval-mode regression (inference must never mutate
BatchNorm running statistics), zero-allocation steady state, and
thread-shareability of a single plan.
"""

from __future__ import annotations

import os
import tempfile
import threading
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games import ConnectFour, Gomoku, SyntheticTreeGame, TicTacToe, build_network_for
from repro.mcts.evaluation import NetworkEvaluator, mask_and_normalize
from repro.nn import (
    Adam,
    AlphaZeroLoss,
    InferencePlan,
    PlanCompileError,
    PolicyValueNet,
    ResNetPolicyValueNet,
    Sequential,
    compile_plan,
    ensure_plan,
)
from repro.nn.layers import Dropout, Linear, Module, ReLU
from repro.training.trainer import Trainer

# float32 forward against the float64 reference: worst observed error is
# ~1e-7 on these towers; 1e-5 leaves two orders of magnitude of margin
# while still catching any real compilation bug.
TOL = dict(rtol=1e-5, atol=1e-5)

GAMES = {
    "tictactoe": lambda: TicTacToe(),
    "connect4": lambda: ConnectFour(),
    "gomoku": lambda: Gomoku(7, 4),
    "synthetic": lambda: SyntheticTreeGame(fanout=4, board_size=5),
}


def _make_net(arch: str, game, rng: int):
    if arch == "policyvalue":
        return build_network_for(game, channels=(4, 8, 8), rng=rng)
    return ResNetPolicyValueNet(
        game.board_shape,
        in_channels=game.num_planes,
        num_blocks=2,
        channels=8,
        action_size=game.action_size,
        rng=rng,
    )


def _reference_output(net, states):
    net.set_inference_backend("reference")
    try:
        return net.predict(states)
    finally:
        net.set_inference_backend("fused")


def _states_masks(game_factory, batch: int, seed: int = 0):
    """A batch of real mid-game states with their legality masks."""
    rng = np.random.default_rng(seed)
    games = []
    for _ in range(batch):
        g = game_factory()
        for _ in range(int(rng.integers(0, 4))):
            legal = g.legal_actions()
            if g.is_terminal or len(legal) == 0:
                break
            g.step(int(rng.choice(legal)))
        games.append(g)
    states = np.stack([g.encode() for g in games])
    masks = np.stack([g.legal_mask() for g in games])
    return states, masks


class TestPlanReferenceParity:
    @pytest.mark.parametrize("game_name", sorted(GAMES))
    @pytest.mark.parametrize("arch", ["policyvalue", "resnet"])
    @pytest.mark.parametrize("batch", [1, 3, 8])
    def test_fused_matches_reference(self, game_name, arch, batch):
        game = GAMES[game_name]()
        net = _make_net(arch, game, rng=7)
        states, _ = _states_masks(GAMES[game_name], batch, seed=batch)
        fused = net.predict(states)
        ref = _reference_output(net, states)
        np.testing.assert_allclose(fused.logits, ref.logits, **TOL)
        np.testing.assert_allclose(fused.policy, ref.policy, **TOL)
        np.testing.assert_allclose(fused.value, ref.value, **TOL)

    @pytest.mark.parametrize("game_name", sorted(GAMES))
    @pytest.mark.parametrize("arch", ["policyvalue", "resnet"])
    def test_masked_predict_batch_matches_reference(self, game_name, arch):
        """The legality-masking path: fused predict_batch rows must match
        mask_and_normalize applied to the reference forward."""
        game = GAMES[game_name]()
        net = _make_net(arch, game, rng=11)
        states, masks = _states_masks(GAMES[game_name], 5, seed=3)
        out = net.predict_batch(states, masks)
        ref = _reference_output(net, states)
        expected = mask_and_normalize(ref.policy, masks)
        np.testing.assert_allclose(out.policy, expected, **TOL)
        assert np.all(out.policy[~masks] == 0.0)
        np.testing.assert_allclose(out.policy.sum(axis=-1), 1.0, rtol=1e-12)

    @given(batch=st.integers(1, 6), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_parity_property(self, batch, seed):
        """Property form: parity holds for arbitrary well-formed inputs."""
        net = PolicyValueNet(board_size=4, channels=(3, 5, 5), rng=2)
        states = np.random.default_rng(seed).standard_normal((batch, 4, 4, 4))
        fused = net.predict(states)
        ref = _reference_output(net, states)
        np.testing.assert_allclose(fused.policy, ref.policy, **TOL)
        np.testing.assert_allclose(fused.value, ref.value, **TOL)

    def test_resnet_with_exercised_running_stats(self):
        """BN folding must use the *current* running statistics, not the
        init-time ones: train a few steps to move them, then compare."""
        net = ResNetPolicyValueNet(4, num_blocks=1, channels=6, rng=5)
        rng = np.random.default_rng(5)
        for _ in range(3):  # training-mode forwards update running stats
            net.train()
            net.forward(rng.standard_normal((4, 4, 4, 4)))
        states = rng.standard_normal((3, 4, 4, 4))
        fused = net.predict(states)
        ref = _reference_output(net, states)
        np.testing.assert_allclose(fused.policy, ref.policy, **TOL)
        np.testing.assert_allclose(fused.value, ref.value, **TOL)


class TestPlanLifecycle:
    def test_plan_is_cached_until_weights_move(self):
        net = PolicyValueNet(board_size=3, channels=(2, 4, 4), rng=0)
        plan = net.inference_plan()
        assert net.inference_plan() is plan
        net.bump_weights_version()
        assert net.inference_plan() is not plan

    def test_recompiled_after_sgd_matches_updated_reference(self):
        """An SGD step through the trainer invalidates the plan; the fused
        path must then match the *updated* float64 reference."""
        game = TicTacToe()
        net = build_network_for(game, channels=(3, 6, 6), rng=1)
        states, masks = _states_masks(GAMES["tictactoe"], 4, seed=9)
        stale = net.predict(states)

        trainer = Trainer(net, Adam(net.parameters(), lr=5e-2), AlphaZeroLoss())
        rng = np.random.default_rng(1)
        pi = rng.dirichlet(np.ones(9), size=4)
        trainer.train_step(states, pi, rng.uniform(-1, 1, 4))

        fused = net.predict(states)
        ref = _reference_output(net, states)
        np.testing.assert_allclose(fused.policy, ref.policy, **TOL)
        np.testing.assert_allclose(fused.value, ref.value, **TOL)
        # and the update was actually visible (the stale plan did not leak)
        assert not np.allclose(fused.policy, stale.policy, rtol=1e-8, atol=1e-10)

    def test_load_state_dict_refreshes_plan(self):
        a = PolicyValueNet(board_size=3, channels=(2, 4, 4), rng=3)
        b = PolicyValueNet(board_size=3, channels=(2, 4, 4), rng=4)
        x = np.random.default_rng(0).random((2, 4, 3, 3))
        _ = a.predict(x)  # compile against the old weights
        a.load_state_dict(b.state_dict())
        np.testing.assert_allclose(
            a.predict(x).logits, b.predict(x).logits, **TOL
        )

    def test_plan_is_immutable_snapshot(self):
        """Mutating the source network in place must not change a compiled
        plan's outputs (staleness is a version check, not aliasing)."""
        net = PolicyValueNet(board_size=3, channels=(2, 4, 4), rng=6)
        x = np.random.default_rng(2).random((2, 4, 3, 3))
        plan = net.inference_plan()
        before = plan.predict(x)
        for p in net.parameters():
            p.data += 1.0  # silent in-place edit, no version bump
        after = plan.predict(x)
        np.testing.assert_array_equal(before.logits, after.logits)

    def test_reference_backend_selection(self):
        net = PolicyValueNet(board_size=3, channels=(2, 4, 4), rng=8)
        net.set_inference_backend("reference")
        assert net._plan is None
        x = np.random.default_rng(3).random((1, 4, 3, 3))
        out = net.predict(x)
        assert out.policy.dtype == np.float64
        with pytest.raises(ValueError, match="inference backend"):
            net.set_inference_backend("float16")

    def test_unsupported_tower_raises(self):
        class Flat(Module):
            def __init__(self):
                super().__init__()
                self.layers = [Linear(4, 2, rng=0)]

        with pytest.raises(PlanCompileError, match="trunk"):
            compile_plan(Flat())

    def test_unsupported_layer_raises(self):
        net = PolicyValueNet(board_size=3, channels=(2, 4, 4), rng=9)
        net.trunk.layers.append(_Weird())
        with pytest.raises(PlanCompileError, match="Weird"):
            compile_plan(net)

    def test_dropout_is_identity_at_inference(self):
        net = PolicyValueNet(board_size=3, channels=(2, 4, 4), rng=12)
        net.policy_head.layers.insert(2, Dropout(0.5, rng=0))
        x = np.random.default_rng(4).random((2, 4, 3, 3))
        fused = net.predict(x)
        ref = _reference_output(net, x)
        np.testing.assert_allclose(fused.policy, ref.policy, **TOL)

    def test_ensure_plan(self):
        net = PolicyValueNet(board_size=3, channels=(2, 4, 4), rng=13)
        plan = ensure_plan(net)
        assert isinstance(plan, InferencePlan)
        assert ensure_plan(net) is plan
        net.set_inference_backend("reference")
        assert ensure_plan(net) is None
        assert ensure_plan(None) is None
        assert ensure_plan(object()) is None

    def test_input_validation(self):
        net = PolicyValueNet(board_size=3, channels=(2, 4, 4), rng=14)
        plan = net.inference_plan()
        with pytest.raises(ValueError, match="plan expects"):
            plan.predict(np.zeros((2, 7, 3, 3)))


class _Weird(Module):
    def forward(self, x):  # pragma: no cover - never run
        return x


class TestEvalModeRegression:
    """Inference through a network left in training mode must neither
    mutate BatchNorm running statistics nor drift between calls."""

    @pytest.mark.parametrize("backend", ["fused", "reference"])
    def test_repeated_evaluate_batch_bit_identical_and_stats_untouched(
        self, backend
    ):
        game = TicTacToe()
        net = ResNetPolicyValueNet(
            game.board_shape,
            in_channels=game.num_planes,
            num_blocks=1,
            channels=6,
            action_size=game.action_size,
            rng=21,
        )
        net.set_inference_backend(backend)
        assert net.training  # deliberately left in training mode
        stem_bn = net.stem.layers[1]
        means = stem_bn.running_mean.copy()
        variances = stem_bn.running_var.copy()

        evaluator = NetworkEvaluator(net)
        games = [TicTacToe() for _ in range(3)]
        first = evaluator.evaluate_batch(games)
        for _ in range(3):
            again = evaluator.evaluate_batch(games)
            for a, b in zip(first, again):
                np.testing.assert_array_equal(a.priors, b.priors)
                assert a.value == b.value
        np.testing.assert_array_equal(stem_bn.running_mean, means)
        np.testing.assert_array_equal(stem_bn.running_var, variances)
        assert net.training  # mode restored

    def test_save_load_preserves_exercised_running_stats(self):
        """Running statistics are folded into compiled plans, so a
        save/load round-trip must carry them: a reloaded network has to
        produce the *same* inference outputs, not init-stats outputs."""
        net = ResNetPolicyValueNet(3, num_blocks=1, channels=6, rng=23)
        rng = np.random.default_rng(12)
        net.train()
        for _ in range(4):  # move running stats well away from (0, 1)
            net.forward(rng.standard_normal((4, 4, 3, 3)) * 3.0 + 1.0)
        states = rng.standard_normal((2, 4, 3, 3))
        want = net.predict(states)

        other = ResNetPolicyValueNet(3, num_blocks=1, channels=6, rng=24)
        other.load_state_dict(net.state_dict())
        stem_bn, other_bn = net.stem.layers[1], other.stem.layers[1]
        np.testing.assert_array_equal(other_bn.running_mean, stem_bn.running_mean)
        np.testing.assert_array_equal(other_bn.running_var, stem_bn.running_var)
        got = other.predict(states)
        np.testing.assert_array_equal(got.policy, want.policy)
        np.testing.assert_array_equal(got.value, want.value)
        # and through the on-disk format too
        for backend in ("fused", "reference"):
            fresh = ResNetPolicyValueNet(3, num_blocks=1, channels=6, rng=25)
            with tempfile.TemporaryDirectory() as d:
                path = os.path.join(d, "w.npz")
                net.save(path)
                fresh.load(path)
            fresh.set_inference_backend(backend)
            got = fresh.predict(states)
            np.testing.assert_allclose(got.policy, want.policy, **TOL)

    def test_legacy_param_only_state_still_loads(self):
        """Checkpoints written before buffers were serialised (parameters
        only) load without error and keep the current running stats."""
        net = ResNetPolicyValueNet(3, num_blocks=1, channels=6, rng=26)
        params_only = {
            f"p{i}": p.data.copy() for i, p in enumerate(net.parameters())
        }
        other = ResNetPolicyValueNet(3, num_blocks=1, channels=6, rng=27)
        kept = other.stem.layers[1].running_mean.copy()
        other.load_state_dict(params_only)
        np.testing.assert_array_equal(other.stem.layers[1].running_mean, kept)

    def test_concurrent_reference_inference_leaves_stats_untouched(self):
        """The reference backend toggles the module-wide train/eval flag;
        concurrent evaluation from engine threads must not let a forward
        slip through in training mode and mutate BatchNorm statistics."""
        net = ResNetPolicyValueNet(3, num_blocks=1, channels=6, rng=28)
        net.set_inference_backend("reference")
        assert net.training
        stem_bn = net.stem.layers[1]
        means = stem_bn.running_mean.copy()
        states = np.random.default_rng(13).standard_normal((2, 4, 3, 3))
        errors: list = []

        def worker() -> None:
            try:
                for _ in range(20):
                    net.predict(states)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        np.testing.assert_array_equal(stem_bn.running_mean, means)
        assert net.training

    def test_training_forward_still_updates_stats(self):
        """The fix must not leak into training: an explicit training-mode
        forward still maintains running statistics."""
        net = ResNetPolicyValueNet(3, num_blocks=1, channels=6, rng=22)
        stem_bn = net.stem.layers[1]
        means = stem_bn.running_mean.copy()
        net.train()
        net.forward(np.random.default_rng(6).standard_normal((4, 4, 3, 3)))
        assert not np.array_equal(stem_bn.running_mean, means)


class TestWorkspaces:
    def test_zero_allocation_steady_state(self):
        """After warmup, a fused forward allocates only the small output
        arrays -- the im2col/activation temporaries all come from the
        workspace arena.  The reference forward allocates orders of
        magnitude more; assert an absolute bound well between the two."""
        net = ResNetPolicyValueNet(15, num_blocks=3, channels=32, rng=30)
        plan = net.inference_plan()
        states = np.random.default_rng(7).standard_normal((8, 4, 15, 15))
        plan.predict(states)
        plan.predict(states)  # arena fully populated
        warm_bytes = plan.workspace_nbytes()
        assert warm_bytes > 0

        tracemalloc.start()
        plan.predict(states)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # outputs: 2x (8, 225) float64 logits/policy + softmax temporaries
        # + (8,) values ~ tens of KB; the im2col buffer alone is ~2.6 MB
        assert peak < 1_000_000, f"steady-state fused forward allocated {peak} bytes"
        assert plan.workspace_nbytes() == warm_bytes  # arena did not grow

    def test_workspaces_keyed_by_batch_shape(self):
        net = PolicyValueNet(board_size=5, channels=(4, 8, 8), rng=31)
        plan = net.inference_plan()
        rng = np.random.default_rng(8)
        plan.predict(rng.random((2, 4, 5, 5)))
        bytes_b2 = plan.workspace_nbytes()
        plan.predict(rng.random((6, 4, 5, 5)))
        assert plan.workspace_nbytes() > bytes_b2  # second arena appeared
        # and the first batch shape still evaluates correctly afterwards
        again = plan.predict(rng.random((2, 4, 5, 5)))
        assert again.policy.shape == (2, 25)

    def test_arena_retention_is_bounded(self):
        """Queue/farm evaluators flush at varying occupancy, so a plan sees
        many distinct batch sizes; retained arenas must stay capped (LRU)
        instead of accumulating one per batch size forever."""
        net = PolicyValueNet(board_size=5, channels=(4, 8, 8), rng=34)
        plan = net.inference_plan()
        cap = plan.MAX_ARENAS_PER_THREAD
        rng = np.random.default_rng(14)
        for batch in range(1, cap + 6):
            plan.predict(rng.random((batch, 4, 5, 5)))
        assert len(plan._tls.arenas) == cap
        # an evicted shape still evaluates correctly (arena just rebuilds)
        out = plan.predict(rng.random((1, 4, 5, 5)))
        assert out.policy.shape == (1, 25)
        assert len(plan._tls.arenas) == cap

    def test_outputs_do_not_alias_workspace(self):
        net = PolicyValueNet(board_size=3, channels=(2, 4, 4), rng=32)
        x = np.random.default_rng(9).random((2, 4, 3, 3))
        first = net.predict(x)
        kept = first.policy.copy(), first.value.copy(), first.logits.copy()
        net.predict(np.random.default_rng(10).random((2, 4, 3, 3)))
        np.testing.assert_array_equal(first.policy, kept[0])
        np.testing.assert_array_equal(first.value, kept[1])
        np.testing.assert_array_equal(first.logits, kept[2])

    def test_plan_shared_across_threads(self):
        """One plan, many threads: thread-local arenas make concurrent
        prediction race-free and bit-identical to single-threaded runs."""
        net = ResNetPolicyValueNet(5, num_blocks=2, channels=8, rng=33)
        plan = net.inference_plan()
        rng = np.random.default_rng(11)
        batches = [rng.standard_normal((3, 4, 5, 5)) for _ in range(8)]
        expected = [plan.predict(b) for b in batches]

        results: list = [None] * len(batches)
        errors: list = []

        def worker(i: int) -> None:
            try:
                for _ in range(5):
                    results[i] = plan.predict(batches[i])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(len(batches))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got.policy, want.policy)
            np.testing.assert_array_equal(got.value, want.value)


class TestPlanIntrospection:
    def test_folded_batchnorm_count(self):
        # stem (1) + 2 blocks x 2 + policy head (1) + value head (1)
        net = ResNetPolicyValueNet(4, num_blocks=2, channels=6, rng=40)
        assert net.inference_plan().folded_batchnorms == 7
        plain = PolicyValueNet(board_size=4, channels=(2, 4, 4), rng=41)
        assert plain.inference_plan().folded_batchnorms == 0

    def test_num_steps_counts_fusion(self):
        # trunk 3 fused conv+relu; policy conv+relu, flatten, linear;
        # value conv+relu, flatten, linear+relu, linear+tanh
        net = PolicyValueNet(board_size=4, channels=(2, 4, 4), rng=42)
        assert net.inference_plan().num_steps == 10
