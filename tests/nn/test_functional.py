"""Tests for the vectorised primitives (im2col/col2im, softmax family)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.functional import (
    col2im,
    conv_out_size,
    im2col,
    log_softmax,
    one_hot,
    softmax,
)


class TestConvOutSize:
    def test_basic(self):
        assert conv_out_size(15, 3, 1, 1) == 15

    def test_stride(self):
        assert conv_out_size(8, 2, 2, 0) == 4

    def test_no_padding_shrinks(self):
        assert conv_out_size(5, 3, 1, 0) == 3

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            conv_out_size(2, 5, 1, 0)


class TestIm2Col:
    def test_shape(self):
        x = np.random.default_rng(0).random((2, 3, 5, 5))
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2, 3 * 9, 25)

    def test_identity_kernel_1x1(self):
        x = np.random.default_rng(1).random((1, 2, 4, 4))
        cols = im2col(x, 1, 1)
        assert np.allclose(cols.reshape(1, 2, 4, 4), x)

    def test_known_patch(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = im2col(x, 2, 2)
        # first output column = top-left 2x2 patch [0, 1, 4, 5]
        assert np.allclose(cols[0, :, 0], [0, 1, 4, 5])

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((3, 5, 5)), 3, 3)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(2)
        x = rng.random((2, 3, 6, 6))
        w = rng.random((4, 3, 3, 3))
        cols = im2col(x, 3, 3, 1, 1)
        out = np.einsum("fk,bkl->bfl", w.reshape(4, -1), cols).reshape(2, 4, 6, 6)
        # naive reference
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros((2, 4, 6, 6))
        for b in range(2):
            for f in range(4):
                for i in range(6):
                    for j in range(6):
                        ref[b, f, i, j] = np.sum(
                            xp[b, :, i : i + 3, j : j + 3] * w[f]
                        )
        assert np.allclose(out, ref)

    def test_stride_2(self):
        x = np.random.default_rng(3).random((1, 1, 6, 6))
        cols = im2col(x, 2, 2, stride=2)
        assert cols.shape == (1, 4, 9)

    @given(
        b=st.integers(1, 3),
        c=st.integers(1, 3),
        hw=st.integers(3, 7),
        k=st.integers(1, 3),
        p=st.integers(0, 2),
    )
    @settings(max_examples=30, deadline=None)
    def test_col2im_is_adjoint_of_im2col(self, b, c, hw, k, p):
        """<im2col(x), y> == <x, col2im(y)> -- the defining adjoint identity
        that guarantees the conv backward pass is exactly the transpose."""
        rng = np.random.default_rng(42)
        x = rng.random((b, c, hw, hw))
        cols = im2col(x, k, k, 1, p)
        y = rng.random(cols.shape)
        lhs = float(np.sum(cols * y))
        back = col2im(y, x.shape, k, k, 1, p)
        rhs = float(np.sum(x * back))
        assert np.isclose(lhs, rhs, rtol=1e-10)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(4).random((5, 7)) * 10
        s = softmax(x)
        assert np.allclose(s.sum(axis=-1), 1.0)

    def test_stability_large_values(self):
        x = np.array([[1e4, 1e4 + 1.0]])
        s = softmax(x)
        assert np.all(np.isfinite(s))
        assert s[0, 1] > s[0, 0]

    def test_invariant_to_shift(self):
        x = np.random.default_rng(5).random((3, 4))
        assert np.allclose(softmax(x), softmax(x + 100.0))

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(6).random((3, 9))
        assert np.allclose(np.exp(log_softmax(x)), softmax(x))

    def test_log_softmax_stability(self):
        x = np.array([[0.0, -1e5]])
        ls = log_softmax(x)
        assert np.all(np.isfinite(ls[0, 0:1]))

    def test_axis_argument(self):
        x = np.random.default_rng(7).random((4, 5))
        assert np.allclose(softmax(x, axis=0).sum(axis=0), 1.0)


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2]), 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), 3)
