"""Backend-equivalence suite: the array tree IS the Node tree, faster.

Mirror of the Section-3.2 scheme-equivalence suite, but over the storage
axis instead of the scheduling axis: serial search on the
structure-of-arrays backend must reproduce the ``Node`` backend's root
visit counts **exactly** (fixed seed, no virtual loss) -- same float64
operation order in Equation 1, same ascending-action tie-break, same RNG
consumption.  Any drift here means the vectorisation changed the
algorithm, not just the memory layout.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games import ConnectFour, Gomoku, SyntheticTreeGame, TicTacToe
from repro.mcts.evaluation import UniformEvaluator
from repro.mcts.reuse import TreeReuseMCTS
from repro.mcts.serial import SerialMCTS
from repro.mcts.search import backup, expand, select_leaf
from repro.mcts.backend import make_root
from repro.mcts.virtual_loss import ConstantVirtualLoss, WUVirtualLoss

GAMES = {
    "tictactoe": lambda: TicTacToe(),
    "connect4": lambda: ConnectFour(),
    "gomoku7": lambda: Gomoku(7, 4),
    "synthetic": lambda: SyntheticTreeGame(fanout=5, depth_limit=7, board_size=5, seed=3),
}


def root_visits(root, action_size: int) -> np.ndarray:
    visits = np.zeros(action_size, dtype=np.int64)
    for action, child in root.children.items():
        visits[action] = child.visit_count
    return visits


def run(backend: str, game, playouts: int, seed: int, epsilon: float = 0.0):
    engine = SerialMCTS(
        UniformEvaluator(),
        dirichlet_epsilon=epsilon,
        rng=seed,
        tree_backend=backend,
    )
    return engine.search(game.copy(), playouts)


class TestExactVisitParity:
    @pytest.mark.parametrize("game_name", sorted(GAMES))
    def test_serial_search_identical_visits(self, game_name):
        game = GAMES[game_name]()
        expected = root_visits(run("node", game, 120, seed=0), game.action_size)
        actual = root_visits(run("array", game, 120, seed=0), game.action_size)
        np.testing.assert_array_equal(
            actual, expected,
            err_msg=f"array backend diverged from Node on {game_name}",
        )

    @given(seed=st.integers(0, 2**16), playouts=st.integers(1, 80))
    @settings(max_examples=20, deadline=None)
    def test_property_any_seed_any_budget(self, seed, playouts):
        game = TicTacToe()
        expected = root_visits(run("node", game, playouts, seed), game.action_size)
        actual = root_visits(run("array", game, playouts, seed), game.action_size)
        np.testing.assert_array_equal(actual, expected)

    def test_dirichlet_noise_parity(self):
        """Root-noise mixing consumes the RNG identically on both backends."""
        game = TicTacToe()
        expected = root_visits(
            run("node", game, 150, seed=9, epsilon=0.25), game.action_size
        )
        actual = root_visits(
            run("array", game, 150, seed=9, epsilon=0.25), game.action_size
        )
        np.testing.assert_array_equal(actual, expected)

    def test_q_values_match_exactly(self):
        """Beyond visit counts: Q of every root child is bit-identical."""
        game = ConnectFour()
        node_root = run("node", game, 100, seed=4)
        array_root = run("array", game, 100, seed=4)
        for action, child in node_root.children.items():
            twin = array_root.children[action]
            assert child.visit_count == twin.visit_count
            assert child.value_sum == twin.value_sum  # exact, not approx
            assert child.prior == twin.prior


class TestVirtualLossParity:
    """The primitives agree under VL too (1-worker degenerate schedule)."""

    @pytest.mark.parametrize(
        "make_vl", [lambda: ConstantVirtualLoss(3.0), WUVirtualLoss],
        ids=["constant", "wu"],
    )
    def test_descend_backup_cycle_matches(self, make_vl):
        game = TicTacToe()
        evaluator = UniformEvaluator()
        roots = {}
        for backend in ("node", "array"):
            vl = make_vl()
            root = make_root(backend)
            for _ in range(40):
                g = game.copy()
                leaf, leaf_game, _ = select_leaf(root, g, 5.0, vl)
                if leaf.is_terminal:
                    value = leaf.terminal_value
                else:
                    value = expand(leaf, leaf_game, evaluator.evaluate(leaf_game))
                backup(leaf, value, vl)
            roots[backend] = root
        expected = root_visits(roots["node"], game.action_size)
        actual = root_visits(roots["array"], game.action_size)
        np.testing.assert_array_equal(actual, expected)
        for node in roots["array"].iter_subtree():
            assert node.virtual_loss == 0.0  # fully recovered


class TestSchemesOnArrayBackend:
    """Every parallel scheme, degenerated to serial scheduling, must still
    reproduce serial visit counts when its tree runs on the array backend
    (the storage axis composed with the Section-3.2 scheduling axis)."""

    PLAYOUTS = 60

    def factories(self, evaluator):
        from repro.mcts.virtual_loss import NoVirtualLoss
        from repro.parallel import (
            LeafParallelMCTS,
            LocalTreeMCTS,
            LockFreeSharedTreeMCTS,
            RootParallelMCTS,
            SharedTreeMCTS,
            SpeculativeMCTS,
        )

        no_vl = NoVirtualLoss()
        return {
            "shared_tree": lambda: SharedTreeMCTS(
                evaluator, num_workers=1, vl_policy=no_vl, rng=0,
                tree_backend="array",
            ),
            "lock_free": lambda: LockFreeSharedTreeMCTS(
                evaluator, num_workers=1, vl_policy=no_vl, rng=0,
                tree_backend="array",
            ),
            "local_tree": lambda: LocalTreeMCTS(
                evaluator, num_workers=1, batch_size=1, vl_policy=no_vl,
                rng=0, tree_backend="array",
            ),
            "leaf_parallel": lambda: LeafParallelMCTS(
                evaluator, num_workers=1, rng=0, tree_backend="array"
            ),
            "root_parallel": lambda: RootParallelMCTS(
                evaluator, num_workers=1, rng=0, tree_backend="array"
            ),
            "speculative": lambda: SpeculativeMCTS(
                evaluator, evaluator, num_workers=1, rng=0,
                tree_backend="array",
            ),
        }

    @pytest.mark.parametrize(
        "scheme_name",
        ["shared_tree", "lock_free", "local_tree", "leaf_parallel",
         "root_parallel", "speculative"],
    )
    def test_degenerate_parity_with_serial(self, scheme_name):
        game = TicTacToe()
        evaluator = UniformEvaluator()
        serial = SerialMCTS(evaluator, rng=0, tree_backend="array")
        expected = root_visits(
            serial.search(game.copy(), self.PLAYOUTS), game.action_size
        )
        scheme = self.factories(evaluator)[scheme_name]()
        try:
            root = scheme.search(game.copy(), self.PLAYOUTS)
        finally:
            scheme.close()
        actual = root_visits(root, game.action_size)
        np.testing.assert_array_equal(
            actual, expected,
            err_msg=f"{scheme_name} on the array backend diverged from serial",
        )


class TestReuseParity:
    def test_reuse_across_moves_identical(self):
        games = {b: TicTacToe() for b in ("node", "array")}
        agents = {
            b: TreeReuseMCTS(UniformEvaluator(), rng=1, tree_backend=b)
            for b in ("node", "array")
        }
        for _ in range(3):
            priors = {}
            for backend, agent in agents.items():
                priors[backend] = agent.get_action_prior(games[backend], 80)
            np.testing.assert_array_equal(priors["array"], priors["node"])
            move = int(np.argmax(priors["node"]))
            for backend, agent in agents.items():
                games[backend].step(move)
                agent.observe(move)
