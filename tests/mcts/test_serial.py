"""Tests for the serial DNN-MCTS engine."""

import numpy as np
import pytest

from repro.games import ConnectFour, Gomoku, TicTacToe
from repro.mcts.evaluation import RandomRolloutEvaluator, UniformEvaluator
from repro.mcts.serial import SerialMCTS


class TestBasics:
    def test_visits_equal_playouts(self):
        engine = SerialMCTS(UniformEvaluator(), rng=0)
        root = engine.search(TicTacToe(), 100)
        assert root.visit_count == 100

    def test_prior_is_distribution(self):
        engine = SerialMCTS(UniformEvaluator(), rng=1)
        prior = engine.get_action_prior(TicTacToe(), 64)
        assert np.isclose(prior.sum(), 1.0)
        assert np.all(prior >= 0)

    def test_invalid_args(self):
        engine = SerialMCTS(UniformEvaluator())
        with pytest.raises(ValueError):
            engine.search(TicTacToe(), 0)
        with pytest.raises(ValueError):
            SerialMCTS(UniformEvaluator(), c_puct=-1.0)

    def test_terminal_state_rejected(self):
        g = TicTacToe()
        for a in [0, 3, 1, 4, 2]:
            g.step(a)
        with pytest.raises(ValueError):
            SerialMCTS(UniformEvaluator()).search(g, 10)

    def test_does_not_mutate_input_game(self):
        g = TicTacToe()
        SerialMCTS(UniformEvaluator(), rng=2).search(g, 50)
        assert g.cells.sum() == 0
        assert not g.is_terminal

    def test_stats_collected(self):
        engine = SerialMCTS(UniformEvaluator(), rng=3)
        engine.search(TicTacToe(), 32)
        assert engine.stats.playouts == 32
        assert engine.stats.select.operations == 32
        assert engine.stats.mean_path_length > 0


class TestTacticalStrength:
    """The canonical MCTS correctness tests: find forced wins/blocks."""

    def test_takes_immediate_win(self):
        g = TicTacToe()
        for a in [0, 3, 1, 4]:  # X can win at 2
            g.step(a)
        engine = SerialMCTS(RandomRolloutEvaluator(rng=0), c_puct=1.5, rng=1)
        prior = engine.get_action_prior(g, 300)
        assert int(np.argmax(prior)) == 2

    def test_blocks_immediate_loss(self):
        g = TicTacToe()
        for a in [0, 4, 1]:  # X threatens 2; O must block
            g.step(a)
        engine = SerialMCTS(RandomRolloutEvaluator(rng=2), c_puct=1.5, rng=3)
        prior = engine.get_action_prior(g, 800)
        assert int(np.argmax(prior)) == 2

    def test_connect4_takes_win(self):
        g = ConnectFour()
        for a in [0, 1, 0, 1, 0, 1]:  # X wins dropping column 0
            g.step(a)
        engine = SerialMCTS(RandomRolloutEvaluator(rng=4), c_puct=1.5, rng=5)
        prior = engine.get_action_prior(g, 300)
        assert int(np.argmax(prior)) == 0

    def test_gomoku_takes_win(self):
        g = Gomoku(6, 4)
        for a in [0, 30, 1, 31, 2, 32]:  # X wins at 3
            g.step(a)
        engine = SerialMCTS(RandomRolloutEvaluator(rng=6), c_puct=1.5, rng=7)
        prior = engine.get_action_prior(g, 400)
        assert int(np.argmax(prior)) == 3


class TestDeterminism:
    def test_same_seed_same_prior(self):
        a = SerialMCTS(UniformEvaluator(), rng=42).get_action_prior(TicTacToe(), 60)
        b = SerialMCTS(UniformEvaluator(), rng=42).get_action_prior(TicTacToe(), 60)
        assert np.allclose(a, b)

    def test_dirichlet_noise_changes_search(self):
        base = SerialMCTS(UniformEvaluator(), rng=0).get_action_prior(TicTacToe(), 200)
        noisy = SerialMCTS(
            UniformEvaluator(), dirichlet_epsilon=0.5, rng=0
        ).get_action_prior(TicTacToe(), 200)
        assert not np.allclose(base, noisy)


class TestTreeInvariants:
    def test_parent_visits_bound_children(self):
        """N(parent) >= sum N(children) everywhere (root warm-up aside)."""
        engine = SerialMCTS(UniformEvaluator(), rng=8)
        root = engine.search(TicTacToe(), 150)
        for node in root.iter_subtree():
            if node.children:
                child_sum = sum(c.visit_count for c in node.children.values())
                assert node.visit_count >= child_sum

    def test_no_virtual_loss_residue(self):
        engine = SerialMCTS(UniformEvaluator(), rng=9)
        root = engine.search(TicTacToe(), 100)
        for node in root.iter_subtree():
            assert node.virtual_loss == 0.0

    def test_q_values_bounded(self):
        engine = SerialMCTS(RandomRolloutEvaluator(rng=10), rng=11)
        root = engine.search(TicTacToe(), 200)
        for node in root.iter_subtree():
            assert -1.0 - 1e-9 <= node.q <= 1.0 + 1e-9
