"""Tests for Equation-1 UCT scoring and selection."""

import math

import numpy as np
import pytest

from repro.mcts.node import Node
from repro.mcts.uct import select_child, uct_scores
from repro.mcts.virtual_loss import ConstantVirtualLoss


def make_parent(stats):
    """stats: list of (action, prior, visits, value_sum).

    Maintains the search invariant ``N(parent) == 1 + sum_b N(b)`` (the
    expansion playout plus one descent per child visit), which
    ``uct_scores`` relies on to derive the sqrt numerator from the
    parent's own counters.
    """
    root = Node()
    for action, prior, n, w in stats:
        c = root.add_child(action, prior)
        c.visit_count = n
        c.value_sum = w
    root.visit_count = 1 + sum(n for _, _, n, _ in stats)
    return root


class TestEquationOne:
    def test_matches_formula(self):
        root = make_parent([(0, 0.6, 3, 1.5), (1, 0.4, 1, -0.5)])
        c = 2.0
        actions, scores = uct_scores(root, c)
        total = 4
        expected0 = 1.5 / 3 + c * 0.6 * math.sqrt(total) / (1 + 3)
        expected1 = -0.5 / 1 + c * 0.4 * math.sqrt(total) / (1 + 1)
        assert np.isclose(scores[list(actions).index(0)], expected0)
        assert np.isclose(scores[list(actions).index(1)], expected1)

    def test_unvisited_uses_prior(self):
        root = make_parent([(0, 0.9, 0, 0.0), (1, 0.1, 0, 0.0)])
        chosen = select_child(root, 5.0)
        assert chosen.action == 0

    def test_exploitation_dominates_at_low_c(self):
        root = make_parent([(0, 0.5, 10, 9.0), (1, 0.5, 10, -9.0)])
        chosen = select_child(root, 0.01)
        assert chosen.action == 0

    def test_exploration_wins_at_high_c(self):
        # action 1 has high prior and low visits: exploration should pick it
        root = make_parent([(0, 0.1, 50, 25.0), (1, 0.9, 1, 0.0)])
        chosen = select_child(root, 50.0)
        assert chosen.action == 1

    def test_visit_count_suppresses(self):
        root = make_parent([(0, 0.5, 100, 0.0), (1, 0.5, 1, 0.0)])
        chosen = select_child(root, 1.0)
        assert chosen.action == 1

    def test_leaf_raises(self):
        with pytest.raises(ValueError):
            uct_scores(Node(), 1.0)

    def test_deterministic_tie_break(self):
        root = make_parent([(2, 0.5, 1, 0.0), (7, 0.5, 1, 0.0)])
        assert select_child(root, 1.0).action == 2


class TestVirtualLossInteraction:
    def test_virtual_loss_repels(self):
        vl = ConstantVirtualLoss(weight=3.0)
        root = make_parent([(0, 0.5, 5, 3.0), (1, 0.5, 5, 2.0)])
        assert select_child(root, 1.0).action == 0
        vl.on_descend(root.children[0])  # a worker is on path 0
        assert select_child(root, 1.0, vl).action == 1

    def test_scores_restore_after_backup(self):
        vl = ConstantVirtualLoss(weight=3.0)
        root = make_parent([(0, 0.5, 5, 3.0), (1, 0.5, 5, 2.0)])
        _, before = uct_scores(root, 1.0, vl)
        vl.on_descend(root.children[0])
        vl.on_backup(root.children[0])
        root.children[0].visit_count -= 0  # backup itself tested elsewhere
        _, after = uct_scores(root, 1.0, vl)
        assert np.allclose(before, after)
