"""Tests for search primitives: select_leaf, expand, backup, priors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games import TicTacToe
from repro.mcts.evaluation import Evaluation, UniformEvaluator
from repro.mcts.node import Node
from repro.mcts.search import (
    action_prior_from_root,
    add_dirichlet_noise,
    backup,
    expand,
    sample_action,
    select_leaf,
)
from repro.mcts.virtual_loss import ConstantVirtualLoss


class TestSelectLeaf:
    def test_fresh_root_is_leaf(self):
        root = Node()
        leaf, game, depth = select_leaf(root, TicTacToe(), 5.0, apply_virtual_loss=False)
        assert leaf is root
        assert depth == 0

    def test_descends_expanded_tree(self):
        g = TicTacToe()
        root = Node()
        ev = UniformEvaluator().evaluate(g)
        expand(root, g, ev)
        leaf, game, depth = select_leaf(root, g.copy(), 5.0, apply_virtual_loss=False)
        assert depth == 1
        assert leaf.parent is root
        assert game.last_action == leaf.action

    def test_virtual_loss_applied_on_path(self):
        g = TicTacToe()
        root = Node()
        expand(root, g, UniformEvaluator().evaluate(g))
        vl = ConstantVirtualLoss(weight=1.0)
        leaf, _, _ = select_leaf(root, g.copy(), 5.0, vl)
        assert root.virtual_loss == 1.0
        assert leaf.virtual_loss == 1.0

    def test_marks_terminal(self):
        g = TicTacToe()
        for a in [0, 3, 1, 4]:
            g.step(a)
        # X to move; X plays 2 and wins -- force the tree down that line
        root = Node()
        expand(root, g, UniformEvaluator().evaluate(g))
        root.children[2].prior = 1.0  # bias selection to the winning move
        leaf, game, _ = select_leaf(root, g.copy(), 5.0, apply_virtual_loss=False)
        assert game.is_terminal
        assert leaf.is_terminal


class TestExpand:
    def test_creates_children_for_legal_moves(self):
        g = TicTacToe()
        g.step(4)
        root = Node()
        value = expand(root, g, UniformEvaluator().evaluate(g))
        assert len(root.children) == 8
        assert 4 not in root.children
        assert value == 0.0

    def test_priors_copied(self):
        g = TicTacToe()
        priors = np.zeros(9)
        priors[3] = 0.75
        priors[5] = 0.25
        ev = Evaluation(priors=priors, value=0.5)
        root = Node()
        expand(root, g, ev)
        assert root.children[3].prior == 0.75

    def test_double_expand_tolerated(self):
        g = TicTacToe()
        root = Node()
        ev = UniformEvaluator().evaluate(g)
        expand(root, g, ev)
        n_children = len(root.children)
        value = expand(root, g, Evaluation(priors=np.full(9, 1 / 9), value=0.7))
        assert len(root.children) == n_children  # no duplicates
        assert value == 0.7

    def test_terminal_returns_outcome(self):
        g = TicTacToe()
        for a in [0, 3, 1, 4, 2]:
            g.step(a)
        node = Node()
        value = expand(node, g, UniformEvaluator.__new__(UniformEvaluator))
        assert value == -1.0  # mover (O) lost
        assert node.is_terminal


class TestBackup:
    def test_alternating_signs(self):
        root = Node()
        a = root.add_child(0, 1.0)
        b = a.add_child(0, 1.0)
        backup(b, 1.0)  # mover at b expects to win
        # edge into b belongs to the opponent of b's mover: worth -1
        assert b.value_sum == -1.0
        assert a.value_sum == 1.0
        assert root.value_sum == -1.0

    def test_visit_counts_increment_whole_path(self):
        root = Node()
        a = root.add_child(0, 1.0)
        b = a.add_child(1, 1.0)
        backup(b, 0.5)
        assert root.visit_count == a.visit_count == b.visit_count == 1

    def test_virtual_loss_recovered(self):
        vl = ConstantVirtualLoss(weight=2.0)
        root = Node()
        a = root.add_child(0, 1.0)
        vl.on_descend(root)
        vl.on_descend(a)
        backup(a, 0.0, vl)
        assert root.virtual_loss == 0.0
        assert a.virtual_loss == 0.0

    @given(values=st.lists(st.floats(-1, 1), min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_value_sum_bounded_by_visits(self, values):
        """|W| <= N after any backup sequence (values are in [-1, 1])."""
        root = Node()
        leaf = root.add_child(0, 1.0)
        for v in values:
            backup(leaf, v)
        for node in (root, leaf):
            assert abs(node.value_sum) <= node.visit_count + 1e-9
        assert leaf.visit_count == len(values)


class TestActionPrior:
    def test_proportional_to_visits(self):
        root = Node()
        for action, visits in [(0, 6), (4, 3), (8, 1)]:
            c = root.add_child(action, 1 / 3)
            c.visit_count = visits
        prior = action_prior_from_root(root, 9)
        assert np.isclose(prior[0], 0.6)
        assert np.isclose(prior[4], 0.3)
        assert np.isclose(prior[8], 0.1)
        assert prior[1] == 0.0

    def test_no_visits_raises(self):
        root = Node()
        root.add_child(0, 1.0)
        with pytest.raises(ValueError):
            action_prior_from_root(root, 9)


class TestDirichletNoise:
    def test_priors_remain_distribution(self):
        g = TicTacToe()
        root = Node()
        expand(root, g, UniformEvaluator().evaluate(g))
        add_dirichlet_noise(root, np.random.default_rng(0))
        total = sum(c.prior for c in root.children.values())
        assert np.isclose(total, 1.0)

    def test_epsilon_mixes(self):
        g = TicTacToe()
        root = Node()
        expand(root, g, UniformEvaluator().evaluate(g))
        before = {a: c.prior for a, c in root.children.items()}
        add_dirichlet_noise(root, np.random.default_rng(1), epsilon=0.5)
        after = {a: c.prior for a, c in root.children.items()}
        assert any(abs(before[a] - after[a]) > 1e-3 for a in before)

    def test_leaf_raises(self):
        with pytest.raises(ValueError):
            add_dirichlet_noise(Node(), np.random.default_rng(0))


class TestSampleAction:
    def test_zero_temperature_is_argmax(self):
        prior = np.array([0.1, 0.7, 0.2])
        rng = np.random.default_rng(0)
        assert sample_action(prior, rng, temperature=0.0) == 1

    def test_temperature_one_samples_proportionally(self):
        prior = np.array([0.8, 0.2])
        rng = np.random.default_rng(1)
        picks = [sample_action(prior, rng, 1.0) for _ in range(2000)]
        frac = np.mean(np.array(picks) == 0)
        assert 0.75 < frac < 0.85

    def test_low_temperature_sharpens(self):
        prior = np.array([0.6, 0.4])
        rng = np.random.default_rng(2)
        picks = [sample_action(prior, rng, 0.25) for _ in range(500)]
        assert np.mean(np.array(picks) == 0) > 0.75

    def test_negative_temperature_rejected(self):
        with pytest.raises(ValueError):
            sample_action(np.array([1.0]), np.random.default_rng(0), -1.0)
