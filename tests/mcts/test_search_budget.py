"""SearchBudget property suite: anytime search must be safe to deploy.

Two contracts guard the deadline plumbing threaded through every scheme:

(a) **Count parity.**  A budget whose deadline never fires is
    *bit-identical* to the historic integer-count API -- deadline checks
    read the clock but never consume RNG or reorder work.  Asserted for
    every scheme on both tree backends (worker counts chosen so the
    scheme itself is deterministic), plus a Hypothesis sweep over
    seeds/budgets/backends for the serial engine.

(b) **Anytime validity.**  However tight the deadline, search returns
    within budget + tolerance and still yields a valid normalised prior
    supported only on legal moves (the ``min_playouts`` floor).

A regression in either breaks the gateway's latency promise or silently
changes self-play data, so both are exact assertions, not approximate.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games import TicTacToe
from repro.mcts import SearchBudget, SerialMCTS, UniformEvaluator, as_budget
from repro.mcts.budget import BudgetClock
from repro.mcts.reuse import TreeReuseMCTS
from repro.utils.clock import VirtualClock
from repro.parallel import (
    LeafParallelMCTS,
    LocalTreeMCTS,
    LockFreeSharedTreeMCTS,
    RootParallelMCTS,
    SharedTreeMCTS,
    SpeculativeMCTS,
)

GENEROUS_MS = 120_000.0  # a deadline that can never fire in these tests

#: deterministic configuration per scheme: worker counts where the
#: scheme's transcript does not depend on thread interleaving (the same
#: degenerate-parity convention the scheme-equivalence suite uses)
SCHEME_FACTORIES = {
    "serial": lambda ev, rng, tb: SerialMCTS(ev, rng=rng, tree_backend=tb),
    "shared_tree": lambda ev, rng, tb: SharedTreeMCTS(
        ev, num_workers=1, rng=rng, tree_backend=tb
    ),
    "lock_free": lambda ev, rng, tb: LockFreeSharedTreeMCTS(
        ev, num_workers=1, rng=rng, tree_backend=tb
    ),
    "local_tree": lambda ev, rng, tb: LocalTreeMCTS(
        ev, num_workers=1, batch_size=1, rng=rng, tree_backend=tb
    ),
    "leaf_parallel": lambda ev, rng, tb: LeafParallelMCTS(
        ev, num_workers=2, rng=rng, tree_backend=tb
    ),
    "root_parallel": lambda ev, rng, tb: RootParallelMCTS(
        ev, num_workers=3, rng=rng, tree_backend=tb
    ),
    "speculative": lambda ev, rng, tb: SpeculativeMCTS(
        UniformEvaluator(), ev, num_workers=2, rng=rng, tree_backend=tb
    ),
}


def _close(scheme) -> None:
    close = getattr(scheme, "close", None)
    if close is not None:
        close()


def _assert_valid_prior(prior: np.ndarray, game) -> None:
    assert prior.shape == (game.action_size,)
    assert np.all(prior >= 0)
    assert prior.sum() == pytest.approx(1.0)
    legal = game.legal_mask()
    assert np.all(prior[~legal] == 0), "prior mass on illegal moves"


class TestBudgetValidation:
    def test_needs_at_least_one_bound(self):
        with pytest.raises(ValueError, match="num_playouts and/or"):
            SearchBudget()

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SearchBudget(num_playouts=0)
        with pytest.raises(ValueError):
            SearchBudget(time_budget_ms=-1.0)
        with pytest.raises(ValueError):
            SearchBudget(num_playouts=8, check_interval=0)
        with pytest.raises(ValueError):
            SearchBudget(num_playouts=8, min_playouts=0)

    def test_as_budget_coerces_ints(self):
        budget = as_budget(40)
        assert budget.num_playouts == 40 and budget.time_budget_ms is None
        assert as_budget(budget) is budget
        with pytest.raises(ValueError):
            as_budget(0)


class TestBudgetClock:
    def test_count_target_is_exact(self):
        clock = SearchBudget(num_playouts=5).start()
        for _ in range(4):
            clock.note()
            assert not clock.done()
        clock.note()
        assert clock.done()

    def test_try_claim_bounded_by_target(self):
        clock = SearchBudget(num_playouts=3).start()
        assert [clock.try_claim() for _ in range(5)] == [
            True, True, True, False, False,
        ]

    def test_expired_deadline_still_grants_min_playouts(self):
        clock = SearchBudget(time_budget_ms=0.0).start()
        time.sleep(0.001)
        assert clock.expired()
        grants = [clock.try_claim() for _ in range(5)]
        assert sum(grants) == SearchBudget(time_budget_ms=0.0).min_playouts

    def test_seed_raises_the_min_floor(self):
        clock = SearchBudget(time_budget_ms=0.0, min_playouts=1).start()
        clock.seed(1)  # e.g. a root expansion that left children unvisited
        time.sleep(0.001)
        # one genuine claim must still be granted beyond the seeded work
        assert clock.try_claim()
        assert not clock.try_claim()

    def test_split_shares_the_absolute_deadline(self):
        clock = SearchBudget(num_playouts=9, time_budget_ms=50.0).start()
        child = clock.split(3)
        assert child.deadline == clock.deadline
        assert child.target == 3 and clock.target == 9

    def test_done_without_deadline_never_time_gates(self):
        clock = SearchBudget(num_playouts=10).start()
        clock.note(9)
        assert not clock.done()


class _SteppingClock:
    """Adversarial clock: every ``perf_counter`` read jumps time forward.

    Models the worst case of the historic bug where ``remaining_ms()``
    and ``expired()`` each re-read the clock: with enough drift between
    two reads the pair could report "time remains" *and* "expired".
    """

    def __init__(self, step_s: float) -> None:
        self.t = 0.0
        self.step_s = step_s
        self.reads = 0

    def monotonic(self) -> float:
        return self.perf_counter()

    def perf_counter(self) -> float:
        self.reads += 1
        now = self.t
        self.t += self.step_s
        return now

    async def sleep(self, seconds: float) -> None:  # pragma: no cover
        raise NotImplementedError


class TestBudgetSnapshot:
    """Satellite regression: one clock read per deadline decision."""

    @settings(max_examples=100, deadline=None)
    @given(
        budget_ms=st.floats(0.0, 100.0),
        step_ms=st.floats(0.0, 50.0),
        stray_reads=st.integers(0, 8),
    )
    def test_one_snapshot_never_disagrees_with_itself(
        self, budget_ms, step_ms, stray_reads
    ):
        clock = _SteppingClock(step_s=step_ms / 1e3)
        bc = SearchBudget(time_budget_ms=budget_ms, clock=clock).start()
        for _ in range(stray_reads):
            bc.expired()  # stray checks drift the clock arbitrarily
        snap = bc.snapshot()
        if snap.remaining_ms > 0:
            assert not snap.expired
        else:
            assert snap.expired and snap.remaining_ms == 0.0

    def test_separate_calls_can_disagree_a_snapshot_cannot(self):
        """The hazard the snapshot API exists for, made concrete: 6 ms of
        drift per read against a 10 ms budget makes the *paired* calls
        contradict each other, while any single snapshot stays coherent."""
        clock = _SteppingClock(step_s=0.006)
        bc = SearchBudget(time_budget_ms=10.0, clock=clock).start()
        remaining = bc.remaining_ms()  # read at t=6ms -> 4ms left
        expired = bc.expired()  # read at t=12ms -> past the deadline
        assert remaining > 0 and expired, "the adversarial setup regressed"
        snap = bc.snapshot()
        assert snap.expired and snap.remaining_ms == 0.0

    def test_done_reads_the_clock_exactly_once_per_check(self):
        clock = _SteppingClock(step_s=0.0)
        bc = SearchBudget(
            num_playouts=100, time_budget_ms=50.0, clock=clock
        ).start()
        bc.note(bc.budget.min_playouts)  # past the floor, at a boundary
        before = clock.reads
        bc.done()
        assert clock.reads - before == 1

    def test_deadline_on_a_virtual_clock(self):
        clock = VirtualClock()
        bc = SearchBudget(time_budget_ms=25.0, clock=clock).start()
        assert not bc.expired()
        assert bc.remaining_ms() == pytest.approx(25.0)
        clock.advance(0.025)
        snap = bc.snapshot()
        assert snap.expired and snap.remaining_ms == 0.0


class TestCountParity:
    """(a): generous-deadline anytime search == count-budgeted search,
    for every scheme on both tree backends."""

    @pytest.mark.parametrize("backend", ["node", "array"])
    @pytest.mark.parametrize("name", sorted(SCHEME_FACTORIES))
    def test_scheme_parity(self, name, backend):
        make = SCHEME_FACTORIES[name]
        game = TicTacToe()
        counted = make(UniformEvaluator(), 123, backend)
        try:
            reference = counted.get_action_prior(game.copy(), 48)
        finally:
            _close(counted)
        anytime = make(UniformEvaluator(), 123, backend)
        try:
            budgeted = anytime.get_action_prior(
                game.copy(),
                SearchBudget(num_playouts=48, time_budget_ms=GENEROUS_MS),
            )
        finally:
            _close(anytime)
        np.testing.assert_array_equal(reference, budgeted)

    @pytest.mark.parametrize("backend", ["node", "array"])
    def test_tree_reuse_parity_across_moves(self, backend):
        """Reuse semantics (total-visit top-up) must survive budgeting:
        parity must hold move after move on the same warm tree."""
        counted = TreeReuseMCTS(UniformEvaluator(), rng=7, tree_backend=backend)
        budgeted = TreeReuseMCTS(UniformEvaluator(), rng=7, tree_backend=backend)
        game = TicTacToe()
        for _ in range(3):
            a = counted.get_action_prior(game.copy(), 40)
            b = budgeted.get_action_prior(
                game.copy(),
                SearchBudget(num_playouts=40, time_budget_ms=GENEROUS_MS),
            )
            np.testing.assert_array_equal(a, b)
            action = int(np.argmax(a))
            game.step(action)
            counted.observe(action)
            budgeted.observe(action)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        playouts=st.integers(2, 64),
        backend=st.sampled_from(["node", "array"]),
        check_interval=st.integers(1, 8),
    )
    def test_serial_parity_property(self, seed, playouts, backend, check_interval):
        game = TicTacToe()
        reference = SerialMCTS(
            UniformEvaluator(), rng=seed, tree_backend=backend
        ).get_action_prior(game.copy(), playouts)
        budgeted = SerialMCTS(
            UniformEvaluator(), rng=seed, tree_backend=backend
        ).get_action_prior(
            game.copy(),
            SearchBudget(
                num_playouts=playouts,
                time_budget_ms=GENEROUS_MS,
                check_interval=check_interval,
            ),
        )
        np.testing.assert_array_equal(reference, budgeted)


class TestAnytimeValidity:
    """(b): tight deadlines return promptly with a valid prior."""

    #: wall-clock tolerance beyond the budget (scheduler jitter + one
    #: playout's overshoot; generous for loaded CI boxes)
    TOLERANCE_S = 0.5

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        deadline_ms=st.floats(0.0, 5.0),
    )
    def test_serial_tight_deadline_property(self, seed, deadline_ms):
        game = TicTacToe()
        budget = SearchBudget(time_budget_ms=deadline_ms)
        t0 = time.perf_counter()
        prior = SerialMCTS(UniformEvaluator(), rng=seed).get_action_prior(
            game, budget
        )
        elapsed = time.perf_counter() - t0
        assert elapsed <= deadline_ms / 1e3 + self.TOLERANCE_S
        _assert_valid_prior(prior, game)

    @pytest.mark.parametrize("backend", ["node", "array"])
    @pytest.mark.parametrize("name", sorted(SCHEME_FACTORIES))
    def test_all_schemes_tight_deadline(self, name, backend):
        game = TicTacToe()
        budget = SearchBudget(time_budget_ms=1.0)
        scheme = SCHEME_FACTORIES[name](UniformEvaluator(), 5, backend)
        try:
            t0 = time.perf_counter()
            prior = scheme.get_action_prior(game, budget)
            elapsed = time.perf_counter() - t0
        finally:
            _close(scheme)
        assert elapsed <= 1.0 / 1e3 + self.TOLERANCE_S, name
        _assert_valid_prior(prior, game)

    @pytest.mark.parametrize("name", sorted(SCHEME_FACTORIES))
    def test_deadline_actually_binds(self, name):
        """A deadline far below the count bound must cut the search
        short: the root accumulates fewer visits than the cap."""
        game = TicTacToe()

        class SlowUniform(UniformEvaluator):
            def evaluate(self, g):
                time.sleep(0.002)
                return super().evaluate(g)

        budget = SearchBudget(num_playouts=100_000, time_budget_ms=25.0)
        scheme = SCHEME_FACTORIES[name](SlowUniform(), 5, "node")
        try:
            root = scheme.search(game.copy(), budget)
        finally:
            _close(scheme)
        assert 0 < root.visit_count < 100_000, name