"""Tests for the tree node structure."""

import pytest

from repro.mcts.node import Node


class TestStructure:
    def test_fresh_node_is_leaf_root(self):
        n = Node()
        assert n.is_leaf
        assert n.is_root
        assert not n.is_terminal
        assert n.q == 0.0

    def test_add_child_links(self):
        root = Node()
        child = root.add_child(3, 0.5)
        assert child.parent is root
        assert child.action == 3
        assert child.prior == 0.5
        assert not root.is_leaf

    def test_duplicate_child_rejected(self):
        root = Node()
        root.add_child(1, 0.5)
        with pytest.raises(ValueError):
            root.add_child(1, 0.5)

    def test_q_is_mean(self):
        n = Node()
        n.visit_count = 4
        n.value_sum = 2.0
        assert n.q == 0.5

    def test_terminal_flag(self):
        n = Node()
        n.terminal_value = -1.0
        assert n.is_terminal


class TestTraversal:
    def _chain(self, actions):
        root = Node()
        node = root
        for a in actions:
            node = node.add_child(a, 1.0)
        return root, node

    def test_path_from_root(self):
        root, leaf = self._chain([2, 5, 1])
        assert leaf.path_from_root() == [2, 5, 1]
        assert root.path_from_root() == []

    def test_depth(self):
        root, leaf = self._chain([0, 0, 0, 0])
        assert leaf.depth() == 4
        assert root.depth() == 0

    def test_subtree_size(self):
        root = Node()
        a = root.add_child(0, 0.5)
        root.add_child(1, 0.5)
        a.add_child(0, 1.0)
        assert root.subtree_size() == 4
        assert a.subtree_size() == 2

    def test_max_depth(self):
        root, _ = self._chain([0, 1, 2])
        root.add_child(9, 0.1)
        assert root.max_depth() == 3

    def test_iter_subtree_visits_all(self):
        root = Node()
        for a in range(3):
            c = root.add_child(a, 1 / 3)
            c.add_child(0, 1.0)
        assert sum(1 for _ in root.iter_subtree()) == 7
