"""Unit tests for the structure-of-arrays tree backend."""

import numpy as np
import pytest

from repro.games import TicTacToe
from repro.mcts.arraytree import ArrayNodeView, ArrayTree
from repro.mcts.backend import TreeBackend, capacity_hint, make_root, resolve_backend
from repro.mcts.evaluation import UniformEvaluator
from repro.mcts.node import Node
from repro.mcts.search import backup, expand
from repro.mcts.uct import select_child, uct_scores
from repro.mcts.virtual_loss import ConstantVirtualLoss, NoVirtualLoss


def expanded_root(tree: ArrayTree, actions, priors) -> int:
    root = tree.new_root()
    tree.expand(root, np.asarray(actions), np.asarray(priors, dtype=np.float64))
    return root


class TestStructure:
    def test_root_allocation(self):
        tree = ArrayTree(4)
        root = tree.new_root()
        assert root == 0
        assert tree.is_leaf(root)
        assert not tree.is_terminal(root)
        assert len(tree) == 1

    def test_expand_allocates_contiguous_slab(self):
        tree = ArrayTree(2)
        root = expanded_root(tree, [2, 5, 7], [0.2, 0.5, 0.3])
        sl = tree.children_slice(root)
        assert (sl.start, sl.stop) == (1, 4)
        np.testing.assert_array_equal(tree.child_actions(root), [2, 5, 7])
        np.testing.assert_array_equal(tree.parent[sl], [root] * 3)
        np.testing.assert_allclose(tree.prior[sl], [0.2, 0.5, 0.3])

    def test_growth_preserves_rows(self):
        tree = ArrayTree(2)  # forces several doublings
        root = expanded_root(tree, list(range(9)), [1 / 9] * 9)
        tree.visit_count[3] = 7
        child = tree.children_slice(root).start
        tree.expand(child, np.array([1, 2]), np.array([0.6, 0.4]))
        assert len(tree) == 12
        assert tree.visit_count[3] == 7  # survived the growth copy
        np.testing.assert_array_equal(tree.child_actions(child), [1, 2])

    def test_double_expand_raises(self):
        tree = ArrayTree(4)
        root = expanded_root(tree, [0, 1], [0.5, 0.5])
        with pytest.raises(ValueError):
            tree.expand(root, np.array([2]), np.array([1.0]))

    def test_detach_makes_row_a_root(self):
        tree = ArrayTree(4)
        root = expanded_root(tree, [0, 1], [0.5, 0.5])
        child = tree.children_slice(root).start
        tree.detach(child)
        assert tree.parent[child] == -1
        assert ArrayNodeView(tree, child).is_root

    def test_extract_subtree_compacts_and_preserves_stats(self):
        g = TicTacToe()
        ev = UniformEvaluator()
        from repro.mcts.serial import SerialMCTS

        root = SerialMCTS(ev, rng=0, tree_backend="array").search(g, 120)
        child = root.children[4]
        compact = ArrayNodeView(child.tree.extract_subtree(child.index), 0)
        assert compact.is_root
        assert len(compact.tree) == child.subtree_size()  # nothing orphaned
        assert len(compact.tree) < len(root.tree)
        assert compact.visit_count == child.visit_count
        assert compact.value_sum == child.value_sum
        # whole subtree matches: walk both in lockstep by action path
        def assert_same(a, b):
            assert a.visit_count == b.visit_count
            assert a.value_sum == b.value_sum
            assert a.prior == b.prior
            assert a.terminal_value == b.terminal_value
            ca, cb = a.children, b.children
            assert set(ca) == set(cb)
            for action in ca:
                assert_same(ca[action], cb[action])

        assert_same(compact, child)


class TestBackup:
    def test_alternating_signs(self):
        tree = ArrayTree(8)
        root = expanded_root(tree, [0], [1.0])
        a = tree.children_slice(root).start
        tree.expand(a, np.array([0]), np.array([1.0]))
        b = tree.children_slice(a).start
        tree.backup(b, 1.0)
        assert tree.value_sum[b] == -1.0
        assert tree.value_sum[a] == 1.0
        assert tree.value_sum[root] == -1.0
        np.testing.assert_array_equal(tree.visit_count[[root, a, b]], [1, 1, 1])

    def test_backup_stops_at_detached_root(self):
        tree = ArrayTree(8)
        root = expanded_root(tree, [0, 1], [0.5, 0.5])
        child = tree.children_slice(root).start
        tree.expand(child, np.array([3]), np.array([1.0]))
        grandchild = tree.children_slice(child).start
        tree.detach(child)
        tree.backup(grandchild, 0.5)
        assert tree.visit_count[root] == 0  # detached: old parent untouched
        assert tree.visit_count[child] == 1

    def test_strict_virtual_loss_residue_raises(self):
        tree = ArrayTree(8)
        root = expanded_root(tree, [0], [1.0])
        vl = ConstantVirtualLoss(weight=2.0, strict=True)
        # backup without a matching descend: the residue check must fire
        with pytest.raises(RuntimeError):
            tree.backup(root, 0.0, vl)

    def test_non_strict_clips_residue(self):
        tree = ArrayTree(8)
        root = expanded_root(tree, [0], [1.0])
        vl = ConstantVirtualLoss(weight=2.0, strict=False)
        tree.backup(root, 0.0, vl)
        assert tree.virtual_loss[root] == 0.0


class TestSelection:
    def test_uct_scores_match_node_backend(self):
        stats = [(0, 0.6, 3, 1.5), (4, 0.3, 1, -0.5), (7, 0.1, 0, 0.0)]
        node_root = Node()
        for action, prior, n, w in stats:
            c = node_root.add_child(action, prior)
            c.visit_count = n
            c.value_sum = w
        node_root.visit_count = 1 + sum(n for _, _, n, _ in stats)

        tree = ArrayTree(8)
        root = expanded_root(
            tree, [s[0] for s in stats], [s[1] for s in stats]
        )
        sl = tree.children_slice(root)
        tree.visit_count[sl] = [s[2] for s in stats]
        tree.value_sum[sl] = [s[3] for s in stats]
        tree.visit_count[root] = node_root.visit_count

        for vl in (None, NoVirtualLoss(), ConstantVirtualLoss(2.0)):
            a_node, s_node = uct_scores(node_root, 3.0, vl)
            a_arr, s_arr = uct_scores(ArrayNodeView(tree, root), 3.0, vl)
            np.testing.assert_array_equal(a_arr, a_node)
            np.testing.assert_array_equal(s_arr, s_node)  # bit-exact

    def test_select_child_returns_view(self):
        tree = ArrayTree(8)
        root = expanded_root(tree, [1, 3], [0.9, 0.1])
        tree.visit_count[root] = 1
        chosen = select_child(ArrayNodeView(tree, root), 5.0)
        assert isinstance(chosen, ArrayNodeView)
        assert chosen.action == 1  # higher prior, both unvisited

    def test_tie_break_lowest_action(self):
        tree = ArrayTree(8)
        root = expanded_root(tree, [2, 7], [0.5, 0.5])
        sl = tree.children_slice(root)
        tree.visit_count[sl] = 1
        tree.visit_count[root] = 3
        chosen = select_child(ArrayNodeView(tree, root), 1.0)
        assert chosen.action == 2

    def test_unexpanded_raises(self):
        tree = ArrayTree(4)
        root = tree.new_root()
        with pytest.raises(ValueError):
            uct_scores(ArrayNodeView(tree, root), 1.0)


class TestViewParity:
    """ArrayNodeView duck-types the Node read/write surface."""

    def make_pair(self):
        g = TicTacToe()
        ev = UniformEvaluator().evaluate(g)
        node_root = Node()
        expand(node_root, g, ev)
        backup(node_root.children[4], 0.5)
        view_root = make_root("array")
        expand(view_root, g, ev)
        backup(view_root.children[4], 0.5)
        return node_root, view_root

    def test_children_and_stats(self):
        node_root, view_root = self.make_pair()
        assert set(view_root.children) == set(node_root.children)
        for a in node_root.children:
            assert view_root.children[a].visit_count == node_root.children[a].visit_count
            assert view_root.children[a].q == node_root.children[a].q

    def test_traversal_helpers(self):
        node_root, view_root = self.make_pair()
        assert view_root.subtree_size() == node_root.subtree_size()
        assert view_root.max_depth() == node_root.max_depth()
        child = view_root.children[4]
        assert child.depth() == 1
        assert child.path_from_root() == [4]
        assert child.parent == view_root
        assert view_root.parent is None

    def test_mutation_via_view(self):
        _, view_root = self.make_pair()
        child = view_root.children[4]
        child.prior = 0.75
        child.value_sum += 1.0
        assert view_root.tree.prior[child.index] == 0.75
        assert view_root.children[4].value_sum == child.value_sum

    def test_terminal_marking(self):
        _, view_root = self.make_pair()
        child = view_root.children[0]
        assert child.terminal_value is None
        child.terminal_value = -1.0
        assert child.is_terminal
        assert view_root.children[0].terminal_value == -1.0

    def test_add_child_rejected(self):
        _, view_root = self.make_pair()
        with pytest.raises(TypeError):
            view_root.add_child(99, 0.1)


class TestBackendSeam:
    def test_resolve_backend(self):
        assert resolve_backend(None) is TreeBackend.ARRAY
        assert resolve_backend("node") is TreeBackend.NODE
        assert resolve_backend(TreeBackend.ARRAY) is TreeBackend.ARRAY
        with pytest.raises(ValueError):
            resolve_backend("linkedlist")

    def test_make_root_types(self):
        assert isinstance(make_root("node"), Node)
        assert isinstance(make_root("array"), ArrayNodeView)

    def test_capacity_hint_bounds(self):
        assert capacity_hint(9, 100) == 901
        assert capacity_hint(225, 10**9) == 1 << 20  # capped
