"""Tests for the two virtual-loss styles cited by the paper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mcts.node import Node
from repro.mcts.virtual_loss import (
    ConstantVirtualLoss,
    NoVirtualLoss,
    WUVirtualLoss,
)


class TestNoVirtualLoss:
    def test_identity(self):
        vl = NoVirtualLoss()
        n = Node()
        n.visit_count, n.value_sum = 4, 2.0
        vl.on_descend(n)
        assert n.virtual_loss == 0.0
        assert vl.effective_stats(n) == (4.0, 0.5)


class TestConstantVirtualLoss:
    def test_descend_deflates_q(self):
        vl = ConstantVirtualLoss(weight=2.0)
        n = Node()
        n.visit_count, n.value_sum = 4, 4.0  # Q = 1.0
        vl.on_descend(n)
        n_eff, q_eff = vl.effective_stats(n)
        assert n_eff == 6.0
        assert q_eff == (4.0 - 2.0) / 6.0  # pretended losses

    def test_backup_restores(self):
        vl = ConstantVirtualLoss(weight=2.0)
        n = Node()
        n.visit_count, n.value_sum = 4, 4.0
        vl.on_descend(n)
        vl.on_backup(n)
        assert vl.effective_stats(n) == (4.0, 1.0)

    def test_unbalanced_backup_raises(self):
        vl = ConstantVirtualLoss()
        n = Node()
        with pytest.raises(RuntimeError):
            vl.on_backup(n)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            ConstantVirtualLoss(weight=0.0)

    def test_unvisited_node_with_vl(self):
        vl = ConstantVirtualLoss(weight=1.0)
        n = Node()
        vl.on_descend(n)
        n_eff, q_eff = vl.effective_stats(n)
        assert n_eff == 1.0
        assert q_eff == -1.0  # pure pretended loss

    @given(depth=st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_nested_descends_balance(self, depth):
        vl = ConstantVirtualLoss(weight=3.0)
        n = Node()
        n.visit_count, n.value_sum = 10, 5.0
        for _ in range(depth):
            vl.on_descend(n)
        for _ in range(depth):
            vl.on_backup(n)
        assert n.virtual_loss == pytest.approx(0.0)


class TestWUVirtualLoss:
    def test_q_unaffected(self):
        """The defining WU-UCT property: unobserved samples count toward
        visit totals but never poison Q with fake losses."""
        vl = WUVirtualLoss()
        n = Node()
        n.visit_count, n.value_sum = 4, 4.0
        vl.on_descend(n)
        n_eff, q_eff = vl.effective_stats(n)
        assert n_eff == 5.0
        assert q_eff == 1.0  # unchanged

    def test_exploration_denominator_grows(self):
        vl = WUVirtualLoss()
        n = Node()
        n.visit_count = 2
        vl.on_descend(n)
        vl.on_descend(n)
        assert vl.effective_stats(n)[0] == 4.0

    def test_backup_recovers(self):
        vl = WUVirtualLoss()
        n = Node()
        vl.on_descend(n)
        vl.on_backup(n)
        assert n.virtual_loss == 0.0

    def test_unbalanced_raises(self):
        with pytest.raises(RuntimeError):
            WUVirtualLoss().on_backup(Node())


class TestPolicyComparison:
    def test_constant_repels_harder_than_wu(self):
        """Constant VL must produce a lower effective Q than WU-UCT for the
        same in-flight load (the paper's 'lower their weights' mechanism)."""
        n1, n2 = Node(), Node()
        for n in (n1, n2):
            n.visit_count, n.value_sum = 5, 3.0
        cvl, wu = ConstantVirtualLoss(weight=1.0), WUVirtualLoss()
        cvl.on_descend(n1)
        wu.on_descend(n2)
        _, q_const = cvl.effective_stats(n1)
        _, q_wu = wu.effective_stats(n2)
        assert q_const < q_wu
