"""Tests for subtree reuse across moves."""

import numpy as np
import pytest

from repro.games import TicTacToe
from repro.mcts.evaluation import RandomRolloutEvaluator, UniformEvaluator
from repro.mcts.reuse import TreeReuseMCTS


class TestTreeAdvance:
    def test_observe_advances_root(self):
        agent = TreeReuseMCTS(UniformEvaluator(), rng=0)
        g = TicTacToe()
        agent.get_action_prior(g, 100)
        root_before = agent._root
        child = root_before.children[4]
        agent.observe(4)
        # compare statistics, not identity: the array backend compacts the
        # kept subtree into a fresh tree on re-root
        assert agent._root.parent is None
        assert agent._root.visit_count == child.visit_count
        assert agent._root.value_sum == child.value_sum
        assert set(agent._root.children) == set(child.children)

    def test_observe_unknown_action_drops_tree(self):
        agent = TreeReuseMCTS(UniformEvaluator(), rng=1)
        g = TicTacToe()
        agent.get_action_prior(g, 20)
        # force a root whose children dict is partial by advancing twice
        agent.observe(0)
        agent.observe(1) if agent._root and 1 in agent._root.children else None
        agent._root = None if agent._root is None else agent._root
        agent.observe(99 % 9)  # may or may not exist; must not raise
        # explicit unknown action on a fresh tiny tree:
        agent.reset()
        agent.get_action_prior(TicTacToe(), 2)
        agent.observe(8)
        # after observing a barely-explored/unknown branch the agent
        # either advanced or dropped the tree -- both are legal
        assert agent._root is None or agent._root.parent is None

    def test_reset_drops_tree(self):
        agent = TreeReuseMCTS(UniformEvaluator(), rng=2)
        agent.get_action_prior(TicTacToe(), 50)
        agent.reset()
        assert agent._root is None


class TestReuseSavesWork:
    def test_second_search_tops_up_only(self):
        agent = TreeReuseMCTS(UniformEvaluator(), rng=3)
        g = TicTacToe()
        prior = agent.get_action_prior(g, 200)
        best = int(np.argmax(prior))
        reused_before = agent._root.children[best].visit_count
        g.step(best)
        agent.observe(best)
        agent.get_action_prior(g, 200)
        # the reused subtree contributed its visits toward the new budget
        assert agent.reused_visits >= reused_before
        assert agent._root.visit_count >= 200

    def test_reuse_matches_fresh_distribution(self):
        """Reused statistics must not bias the search on a symmetric
        position: total-variation distance to a fresh search stays small."""
        fresh = TreeReuseMCTS(UniformEvaluator(), rng=4)
        reuser = TreeReuseMCTS(UniformEvaluator(), rng=5)
        g = TicTacToe()
        reuser.get_action_prior(g, 150)  # warm tree at the root
        p_reuse = reuser.get_action_prior(g, 300)
        p_fresh = fresh.get_action_prior(g, 300)
        tv = 0.5 * np.abs(p_reuse - p_fresh).sum()
        assert tv < 0.25

    def test_tactical_strength_preserved_across_moves(self):
        agent = TreeReuseMCTS(RandomRolloutEvaluator(rng=0), c_puct=1.5, rng=6)
        g = TicTacToe()
        for a in [0, 3, 1]:  # play to a position; X threatens 2
            g.step(a)
            agent.observe(a)
        # O to move must block at 2
        prior = agent.get_action_prior(g, 600)
        assert int(np.argmax(prior)) == 2

    def test_invalid_playouts(self):
        with pytest.raises(ValueError):
            TreeReuseMCTS(UniformEvaluator()).search(TicTacToe(), 0)
