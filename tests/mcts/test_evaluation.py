"""Tests for leaf evaluators."""

import numpy as np
import pytest

from repro.games import TicTacToe, build_network_for
from repro.mcts.evaluation import (
    NetworkEvaluator,
    RandomRolloutEvaluator,
    UniformEvaluator,
    mask_and_normalize,
)


class TestMaskAndNormalize:
    def test_renormalises(self):
        probs = np.array([0.5, 0.3, 0.2])
        mask = np.array([True, False, True])
        out = mask_and_normalize(probs, mask)
        assert np.isclose(out.sum(), 1.0)
        assert out[1] == 0.0

    def test_uniform_fallback_when_all_illegal_mass(self):
        probs = np.array([0.0, 1.0, 0.0])
        mask = np.array([True, False, True])
        out = mask_and_normalize(probs, mask)
        assert np.allclose(out, [0.5, 0.0, 0.5])

    def test_no_legal_raises(self):
        with pytest.raises(ValueError):
            mask_and_normalize(np.ones(3), np.zeros(3, dtype=bool))


class TestUniformEvaluator:
    def test_uniform_over_legal(self):
        g = TicTacToe()
        g.step(4)
        ev = UniformEvaluator().evaluate(g)
        assert np.isclose(ev.priors.sum(), 1.0)
        assert ev.priors[4] == 0.0
        assert np.isclose(ev.priors[0], 1 / 8)
        assert ev.value == 0.0


class TestNetworkEvaluator:
    def test_masks_illegal(self):
        g = TicTacToe()
        g.step(0)
        net = build_network_for(g, channels=(2, 4, 4), rng=0)
        ev = NetworkEvaluator(net).evaluate(g)
        assert ev.priors[0] == 0.0
        assert np.isclose(ev.priors.sum(), 1.0)
        assert -1.0 <= ev.value <= 1.0

    def test_batch_matches_single(self):
        g1, g2 = TicTacToe(), TicTacToe()
        g2.step(4)
        net = build_network_for(g1, channels=(2, 4, 4), rng=1)
        evaluator = NetworkEvaluator(net)
        batch = evaluator.evaluate_batch([g1, g2])
        single1 = evaluator.evaluate(g1)
        single2 = evaluator.evaluate(g2)
        assert np.allclose(batch[0].priors, single1.priors)
        assert np.allclose(batch[1].priors, single2.priors)
        assert np.isclose(batch[0].value, single1.value)
        assert np.isclose(batch[1].value, single2.value)

    def test_empty_batch(self):
        net = build_network_for(TicTacToe(), channels=(2, 4, 4), rng=2)
        assert NetworkEvaluator(net).evaluate_batch([]) == []


class TestEvaluateEncoded:
    """The farm-facing pre-encoded surface must agree exactly with the
    in-process Game-object path -- the multiprocess determinism suite
    rests on this equality."""

    def games(self):
        g1, g2 = TicTacToe(), TicTacToe()
        g2.step(4)
        g2.step(0)
        return [g1, g2]

    def encode(self, games):
        states = np.stack([g.encode() for g in games])
        masks = np.stack([g.legal_mask() for g in games]).astype(np.float64)
        return states, masks

    def test_network_encoded_matches_batch(self):
        games = self.games()
        net = build_network_for(games[0], channels=(2, 4, 4), rng=3)
        evaluator = NetworkEvaluator(net)
        expected = evaluator.evaluate_batch(games)
        priors, values = evaluator.evaluate_encoded(*self.encode(games))
        for i, ev in enumerate(expected):
            np.testing.assert_array_equal(priors[i], ev.priors)
            assert float(values[i]) == ev.value

    def test_uniform_encoded_matches_single(self):
        games = self.games()
        evaluator = UniformEvaluator()
        priors, values = evaluator.evaluate_encoded(*self.encode(games))
        for i, g in enumerate(games):
            ev = evaluator.evaluate(g)
            np.testing.assert_array_equal(priors[i], ev.priors)
            assert float(values[i]) == ev.value == 0.0

    def test_all_illegal_row_tolerated(self):
        """Torn slab rows (killed-worker leftovers) may present an
        all-zero mask; the batch must not divide by zero -- the doomed
        row's output is discarded by the epoch fence anyway."""
        games = self.games()
        states, masks = self.encode(games)
        masks[1] = 0.0
        priors, values = UniformEvaluator().evaluate_encoded(states, masks)
        assert np.isfinite(priors).all() and np.isfinite(values).all()
        np.testing.assert_allclose(priors[1], 1.0 / 9.0)
        net = build_network_for(games[0], channels=(2, 4, 4), rng=4)
        priors, values = NetworkEvaluator(net).evaluate_encoded(states, masks)
        assert np.isfinite(priors).all() and np.isfinite(values).all()


class TestRandomRolloutEvaluator:
    def test_value_in_range(self):
        ev = RandomRolloutEvaluator(num_rollouts=4, rng=0)
        result = ev.evaluate(TicTacToe())
        assert -1.0 <= result.value <= 1.0

    def test_uniform_priors(self):
        ev = RandomRolloutEvaluator(rng=1)
        result = ev.evaluate(TicTacToe())
        assert np.allclose(result.priors, 1 / 9)

    def test_detects_immediate_loss(self):
        """From a position where the opponent wins at once from most
        rollouts, the value should be clearly negative."""
        g = TicTacToe()
        # X: 0, 1; O: 3, 4 -- O to move would win with 5... build a state
        # where the mover (O) is nearly lost: X has two open lines.
        for a in [0, 8, 1, 7]:  # X at 0,1 (needs 2); O at 8,7 (needs 6)
            g.step(a)
        # X to move: X wins immediately by playing 2 in many rollouts
        ev = RandomRolloutEvaluator(num_rollouts=64, rng=2)
        result = ev.evaluate(g)
        assert result.value > 0.0  # mover (X) is favoured

    def test_more_rollouts_reduce_variance(self):
        g = TicTacToe()
        few = [RandomRolloutEvaluator(1, rng=s).evaluate(g).value for s in range(40)]
        many = [RandomRolloutEvaluator(32, rng=s).evaluate(g).value for s in range(40)]
        assert np.std(many) < np.std(few)

    def test_invalid_rollouts(self):
        with pytest.raises(ValueError):
            RandomRolloutEvaluator(0)
