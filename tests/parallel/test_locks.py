"""Tests for the striped lock table."""

import pytest

from repro.mcts.node import Node
from repro.parallel.locks import StripedLockTable


class TestStripedLockTable:
    def test_same_node_same_lock(self):
        table = StripedLockTable(64)
        n = Node()
        assert table.lock_for(n) is table.lock_for(n)

    def test_locks_spread_across_stripes(self):
        table = StripedLockTable(256)
        nodes = [Node() for _ in range(200)]
        distinct = {id(table.lock_for(n)) for n in nodes}
        assert len(distinct) > 50  # good dispersion, not all one stripe

    def test_lock_is_usable(self):
        table = StripedLockTable(4)
        n = Node()
        lock = table.lock_for(n)
        assert lock.acquire(blocking=False)
        lock.release()

    def test_invalid_stripes(self):
        with pytest.raises(ValueError):
            StripedLockTable(0)

    def test_len(self):
        assert len(StripedLockTable(16)) == 16
