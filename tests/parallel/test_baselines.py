"""Tests for the leaf-parallel and root-parallel baselines (Section 2.2)."""

import numpy as np
import pytest

from repro.games import TicTacToe
from repro.mcts.evaluation import RandomRolloutEvaluator, UniformEvaluator
from repro.parallel import LeafParallelMCTS, RootParallelMCTS
from repro.parallel.base import SchemeName


class TestLeafParallel:
    def test_playout_budget(self):
        with LeafParallelMCTS(UniformEvaluator(), num_workers=4, rng=0) as s:
            root = s.search(TicTacToe(), 60)
        assert root.visit_count == 60

    def test_name(self):
        assert LeafParallelMCTS(UniformEvaluator()).name == SchemeName.LEAF_PARALLEL

    def test_finds_win(self):
        g = TicTacToe()
        for a in [0, 3, 1, 4]:
            g.step(a)
        with LeafParallelMCTS(RandomRolloutEvaluator(rng=0), num_workers=4, c_puct=1.5, rng=1) as s:
            prior = s.get_action_prior(g, 150)
        assert int(np.argmax(prior)) == 2

    def test_averaging_reduces_variance_vs_serial(self):
        """Leaf-parallel's only benefit: lower-variance leaf values."""
        g = TicTacToe()
        values = []
        for seed in range(10):
            with LeafParallelMCTS(
                RandomRolloutEvaluator(rng=seed), num_workers=8, rng=seed
            ) as s:
                root = s.search(g, 40)
                values.append(root.children[4].q)
        serial_values = []
        from repro.mcts.serial import SerialMCTS

        for seed in range(10):
            engine = SerialMCTS(RandomRolloutEvaluator(rng=seed), rng=seed)
            root = engine.search(g, 40)
            serial_values.append(root.children[4].q)
        # not a strict guarantee per-seed, but the spread should not blow up
        assert np.std(values) <= np.std(serial_values) * 1.5

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            LeafParallelMCTS(UniformEvaluator(), num_workers=0)


class TestRootParallel:
    def test_total_budget_split(self):
        with RootParallelMCTS(UniformEvaluator(), num_workers=4, rng=0) as s:
            root = s.search(TicTacToe(), 101)
        # merged root visits = sum of ensemble totals
        assert root.visit_count == 101

    def test_independent_trees_kept(self):
        with RootParallelMCTS(UniformEvaluator(), num_workers=3, rng=1) as s:
            s.search(TicTacToe(), 90)
            assert len(s.last_roots) == 3
            for r in s.last_roots:
                assert r.visit_count == 30

    def test_more_workers_than_playouts(self):
        with RootParallelMCTS(UniformEvaluator(), num_workers=8, rng=2) as s:
            root = s.search(TicTacToe(), 3)
        assert root.visit_count == 3
        assert len(s.last_roots) == 3  # empty budgets dropped

    def test_prior_distribution(self):
        with RootParallelMCTS(UniformEvaluator(), num_workers=4, rng=3) as s:
            prior = s.get_action_prior(TicTacToe(), 100)
        assert np.isclose(prior.sum(), 1.0)

    def test_finds_win(self):
        g = TicTacToe()
        for a in [0, 3, 1, 4]:
            g.step(a)
        with RootParallelMCTS(
            RandomRolloutEvaluator(rng=0), num_workers=4, c_puct=1.5, rng=4
        ) as s:
            prior = s.get_action_prior(g, 400)
        assert int(np.argmax(prior)) == 2

    def test_merge_accumulates_stats(self):
        from repro.mcts.node import Node

        r1, r2 = Node(), Node()
        for r, visits in ((r1, 5), (r2, 7)):
            c = r.add_child(0, 1.0)
            c.visit_count = visits
            c.value_sum = visits * 0.5
            r.visit_count = visits
        merged = RootParallelMCTS._merge_roots([r1, r2])
        assert merged.children[0].visit_count == 12
        assert merged.children[0].value_sum == 6.0
