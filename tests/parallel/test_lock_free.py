"""Tests for the lock-free shared-tree variant [Mirsoleimani 2018]."""

import numpy as np
import pytest

from repro.games import TicTacToe
from repro.mcts.evaluation import RandomRolloutEvaluator, UniformEvaluator
from repro.parallel import LockFreeSharedTreeMCTS


class TestLockFree:
    def test_prior_is_distribution(self):
        with LockFreeSharedTreeMCTS(UniformEvaluator(), num_workers=8, rng=0) as s:
            prior = s.get_action_prior(TicTacToe(), 200)
        assert np.isclose(prior.sum(), 1.0)

    def test_visit_total_near_budget(self):
        """Racy increments may lose a handful of counts, never gain."""
        with LockFreeSharedTreeMCTS(UniformEvaluator(), num_workers=8, rng=1) as s:
            root = s.search(TicTacToe(), 300)
        assert 0.95 * 300 <= root.visit_count <= 300

    def test_finds_winning_move(self):
        g = TicTacToe()
        for a in [0, 3, 1, 4]:
            g.step(a)
        with LockFreeSharedTreeMCTS(
            RandomRolloutEvaluator(rng=0), num_workers=4, c_puct=1.5, rng=2
        ) as s:
            prior = s.get_action_prior(g, 400)
        assert int(np.argmax(prior)) == 2

    def test_no_crash_under_heavy_contention(self):
        with LockFreeSharedTreeMCTS(UniformEvaluator(), num_workers=16, rng=3) as s:
            root = s.search(TicTacToe(), 500)
        # tree must stay structurally sound: q bounded, counts positive
        for node in root.iter_subtree():
            assert node.visit_count >= 0
            assert -1.5 <= node.q <= 1.5  # racy sums get slack

    def test_default_vl_policy_non_strict(self):
        s = LockFreeSharedTreeMCTS(UniformEvaluator())
        assert s.vl_policy.strict is False

    def test_race_counter_observable(self):
        with LockFreeSharedTreeMCTS(UniformEvaluator(), num_workers=8, rng=4) as s:
            s.search(TicTacToe(), 200)
        assert s.expansion_races >= 0  # counted, not raised

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            LockFreeSharedTreeMCTS(UniformEvaluator(), num_workers=0)
