"""Tests for speculative DNN-MCTS (SpecMCTS, Section 2.2)."""

import numpy as np
import pytest

from repro.games import TicTacToe, build_network_for
from repro.mcts.evaluation import (
    Evaluation,
    Evaluator,
    NetworkEvaluator,
    RandomRolloutEvaluator,
    UniformEvaluator,
)
from repro.mcts.serial import SerialMCTS
from repro.parallel import SpeculativeMCTS


class BiasedUniform(Evaluator):
    """Uniform priors but a fixed (wrong) value -- a bad draft model."""

    def __init__(self, value: float) -> None:
        self.value = value

    def evaluate(self, game):
        mask = game.legal_mask()
        priors = mask.astype(np.float64) / mask.sum()
        return Evaluation(priors=priors, value=self.value)


class TestQualityPreservation:
    def test_identical_models_match_serial_exactly(self):
        """With draft == main, the corrected tree must equal the serial
        main-only tree node for node (SpecMCTS's defining property)."""
        main = UniformEvaluator()
        spec = SpeculativeMCTS(main, main, num_workers=4, rng=0)
        serial = SerialMCTS(main, rng=1)
        with spec:
            root_spec = spec.search(TicTacToe(), 200)
        root_serial = serial.search(TicTacToe(), 200)

        def stats(root):
            return sorted(
                (tuple(n.path_from_root()), n.visit_count, round(n.value_sum, 9))
                for n in root.iter_subtree()
            )

        assert stats(root_spec) == stats(root_serial)

    def test_corrections_fix_biased_draft_values(self):
        """A draft model with a constant wrong value: after corrections,
        every value_sum must match the main-only serial result *given the
        same node sequence*.  With a constant draft bias the selected
        sequence itself stays identical (UCT sees the same relative Qs
        plus a constant), so the whole tree must match."""
        main = UniformEvaluator()  # value 0.0
        draft = BiasedUniform(value=0.0)  # same priors, same value
        spec = SpeculativeMCTS(main, draft, num_workers=2, rng=2)
        with spec:
            root = spec.search(TicTacToe(), 150)
        assert spec.corrections == spec.speculations
        # with equal values, deltas are zero -> value sums bounded by visits
        for node in root.iter_subtree():
            assert abs(node.value_sum) <= node.visit_count + 1e-9

    def test_visit_counts_unchanged_by_corrections(self):
        main = BiasedUniform(value=0.5)
        draft = BiasedUniform(value=-0.5)
        spec = SpeculativeMCTS(main, draft, num_workers=2, rng=3)
        with spec:
            root = spec.search(TicTacToe(), 100)
        assert root.visit_count == 100

    def test_corrected_values_reflect_main_model(self):
        """Draft says losing (-0.9), main says neutral (0.0): after the
        corrections the root children's Q must be near the main value,
        not the draft's."""
        main = BiasedUniform(value=0.0)
        draft = BiasedUniform(value=-0.9)
        spec = SpeculativeMCTS(main, draft, num_workers=4, rng=4)
        with spec:
            root = spec.search(TicTacToe(), 300)
        qs = [c.q for c in root.children.values() if c.visit_count > 5]
        assert qs
        # q for the mover's edges ~ -v(main at child) = 0, never ~ +0.9
        assert all(abs(q) < 0.4 for q in qs)


class TestBasics:
    def test_tactical_strength(self):
        g = TicTacToe()
        for a in [0, 3, 1, 4]:
            g.step(a)
        main = RandomRolloutEvaluator(num_rollouts=2, rng=0)
        draft = UniformEvaluator()
        with SpeculativeMCTS(main, draft, num_workers=4, c_puct=1.5, rng=5) as spec:
            prior = spec.get_action_prior(g, 400)
        assert int(np.argmax(prior)) == 2

    def test_network_draft_pair(self):
        """Typical deployment: big main net, slim draft net."""
        game = TicTacToe()
        main = NetworkEvaluator(build_network_for(game, channels=(8, 16, 16), rng=0))
        draft = NetworkEvaluator(build_network_for(game, channels=(2, 4, 4), rng=1))
        with SpeculativeMCTS(main, draft, num_workers=4, rng=6) as spec:
            prior = spec.get_action_prior(game, 80)
        assert np.isclose(prior.sum(), 1.0)
        assert spec.corrections == spec.speculations

    def test_bounded_speculation(self):
        with SpeculativeMCTS(
            UniformEvaluator(), UniformEvaluator(), num_workers=2, rng=7
        ) as spec:
            spec.search(TicTacToe(), 60)
        assert spec.speculations <= 60

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SpeculativeMCTS(UniformEvaluator(), UniformEvaluator(), num_workers=0)
        spec = SpeculativeMCTS(UniformEvaluator(), UniformEvaluator())
        with pytest.raises(ValueError):
            spec.search(TicTacToe(), 0)
