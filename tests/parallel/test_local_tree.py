"""Tests for the real-thread local-tree scheme (Algorithm 3)."""

import numpy as np
import pytest

from repro.games import TicTacToe, build_network_for
from repro.mcts.evaluation import NetworkEvaluator, RandomRolloutEvaluator, UniformEvaluator
from repro.parallel import LocalTreeMCTS
from repro.parallel.base import SchemeName


class TestBasics:
    def test_playout_budget_respected(self):
        with LocalTreeMCTS(UniformEvaluator(), num_workers=4, rng=0) as scheme:
            root = scheme.search(TicTacToe(), 120)
        assert root.visit_count == 120

    def test_prior_is_distribution(self):
        with LocalTreeMCTS(UniformEvaluator(), num_workers=4, rng=1) as scheme:
            prior = scheme.get_action_prior(TicTacToe(), 80)
        assert np.isclose(prior.sum(), 1.0)

    def test_scheme_name(self):
        assert LocalTreeMCTS(UniformEvaluator()).name == SchemeName.LOCAL_TREE

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            LocalTreeMCTS(UniformEvaluator(), num_workers=4, batch_size=5)
        with pytest.raises(ValueError):
            LocalTreeMCTS(UniformEvaluator(), num_workers=4, batch_size=0)

    @pytest.mark.parametrize("batch_size", [1, 2, 4])
    def test_all_batch_sizes_complete(self, batch_size):
        with LocalTreeMCTS(
            UniformEvaluator(), num_workers=4, batch_size=batch_size, rng=2
        ) as scheme:
            root = scheme.search(TicTacToe(), 100)
        assert root.visit_count == 100

    def test_no_virtual_loss_residue(self):
        with LocalTreeMCTS(UniformEvaluator(), num_workers=8, rng=3) as scheme:
            root = scheme.search(TicTacToe(), 200)
        for node in root.iter_subtree():
            assert node.virtual_loss == pytest.approx(0.0)

    def test_small_playout_count_with_many_workers(self):
        """Fewer playouts than workers: the tail-flush path must not hang."""
        with LocalTreeMCTS(UniformEvaluator(), num_workers=16, batch_size=8, rng=4) as s:
            root = s.search(TicTacToe(), 5)
        assert root.visit_count == 5


class TestBatchedInference:
    def test_network_evaluator_batched(self):
        net = build_network_for(TicTacToe(), channels=(2, 4, 4), rng=0)
        with LocalTreeMCTS(
            NetworkEvaluator(net), num_workers=8, batch_size=4, rng=5
        ) as scheme:
            prior = scheme.get_action_prior(TicTacToe(), 60)
        assert np.isclose(prior.sum(), 1.0)

    def test_batched_matches_unbatched_visit_total(self):
        for b in (1, 4):
            with LocalTreeMCTS(
                UniformEvaluator(), num_workers=4, batch_size=b, rng=6
            ) as scheme:
                root = scheme.search(TicTacToe(), 80)
            assert root.visit_count == 80


class TestTacticalStrength:
    def test_finds_winning_move(self):
        g = TicTacToe()
        for a in [0, 3, 1, 4]:
            g.step(a)
        with LocalTreeMCTS(
            RandomRolloutEvaluator(rng=0), num_workers=4, c_puct=1.5, rng=7
        ) as scheme:
            prior = scheme.get_action_prior(g, 400)
        assert int(np.argmax(prior)) == 2

    def test_blocks_loss(self):
        g = TicTacToe()
        for a in [0, 4, 1]:
            g.step(a)
        with LocalTreeMCTS(
            RandomRolloutEvaluator(rng=1), num_workers=4, c_puct=1.5, rng=8
        ) as scheme:
            prior = scheme.get_action_prior(g, 800)
        assert int(np.argmax(prior)) == 2


class TestMasterThreadOwnership:
    def test_tree_consistent_after_search(self):
        with LocalTreeMCTS(UniformEvaluator(), num_workers=8, batch_size=4, rng=9) as s:
            root = s.search(TicTacToe(), 300)
        for node in root.iter_subtree():
            if node.children:
                child_sum = sum(c.visit_count for c in node.children.values())
                assert node.visit_count >= child_sum
            assert -1.0 - 1e-9 <= node.q <= 1.0 + 1e-9
