"""Concurrency stress tests for the accelerator queue (Section 3.3).

The queue is the serving layer's single point of convergence: every
worker of every concurrent game blocks on it.  These tests hammer it from
many threads with batch sizes that never divide the request count evenly,
so correctness depends on the linger-timeout partial flush (no request may
be stranded at a move tail) and on the statistics counters being updated
under the lock (unsynchronised ``+=`` loses increments when flushes run
concurrently on producer threads -- the race the counters assertion
guards).
"""

import threading
import time

import pytest

from repro.games import TicTacToe
from repro.mcts.evaluation import UniformEvaluator
from repro.parallel.evaluator import AcceleratorQueue


class SlowEvaluator(UniformEvaluator):
    """Uniform evaluator with a deliberate stall inside evaluate_batch to
    widen race windows between concurrent flushers."""

    def __init__(self, delay: float = 0.0005) -> None:
        self.delay = delay
        self.calls = 0
        self._lock = threading.Lock()

    def evaluate_batch(self, games):
        with self._lock:
            self.calls += 1
        time.sleep(self.delay)
        return super().evaluate_batch(games)


def hammer(queue: AcceleratorQueue, num_threads: int, per_thread: int) -> list:
    """Drive evaluate_blocking from *num_threads* producers; returns all
    evaluations.  Joins with a timeout so a deadlock fails the test instead
    of hanging the suite."""
    results: list = []
    errors: list = []
    lock = threading.Lock()

    def producer():
        for _ in range(per_thread):
            try:
                ev = queue.evaluate_blocking(TicTacToe())
            except Exception as err:  # pragma: no cover - failure path
                with lock:
                    errors.append(err)
                return
            with lock:
                results.append(ev)

    threads = [threading.Thread(target=producer) for _ in range(num_threads)]
    for t in threads:
        t.start()
    deadline = time.monotonic() + 60.0
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
    assert not any(t.is_alive() for t in threads), "queue deadlocked"
    assert not errors, errors
    return results


class TestQueueStress:
    def test_sixteen_producers_indivisible_batch(self):
        """16 threads x 25 requests with threshold 7 (400 % 7 != 0): every
        future resolves and the counters account for every request."""
        evaluator = SlowEvaluator()
        q = AcceleratorQueue(evaluator, batch_size=7, linger=0.002)
        results = hammer(q, num_threads=16, per_thread=25)
        total = 16 * 25
        assert len(results) == total
        assert q.requests_served == total  # exact: counters are lock-guarded
        assert q.batches_flushed == evaluator.calls
        assert q.pending_count == 0
        assert q.batches_flushed >= total // 7

    def test_move_tail_resolves_via_linger(self):
        """Fewer producers than the threshold: only the linger flush can
        ever resolve them -- the move-tail no-deadlock property."""
        q = AcceleratorQueue(UniformEvaluator(), batch_size=64, linger=0.005)
        results = hammer(q, num_threads=3, per_thread=2)
        assert len(results) == 6
        assert q.requests_served == 6
        assert q.partial_flushes >= 1  # the tail went out below threshold

    def test_partial_flush_counter_on_uneven_tail(self):
        q = AcceleratorQueue(UniformEvaluator(), batch_size=4, linger=0.002)
        hammer(q, num_threads=2, per_thread=3)  # 6 = 4 + tail of 2
        assert q.requests_served == 6
        assert q.partial_flushes >= 1

    def test_concurrent_shrink_while_hammering(self):
        """set_batch_size during traffic (the engine's end-of-round shrink)
        must neither strand nor double-serve requests."""
        evaluator = SlowEvaluator()
        q = AcceleratorQueue(evaluator, batch_size=8, linger=0.002)
        stop = threading.Event()

        def shrinker():
            size = 8
            while not stop.is_set():
                size = 2 if size == 8 else 8
                q.set_batch_size(size)
                time.sleep(0.001)

        t = threading.Thread(target=shrinker)
        t.start()
        try:
            results = hammer(q, num_threads=8, per_thread=20)
        finally:
            stop.set()
            t.join(timeout=10.0)
        assert len(results) == 160
        assert q.requests_served == 160

    def test_shrink_is_monotone_and_commutative(self):
        """Out-of-order shrinks (two games finishing near-simultaneously)
        may only lower the threshold, so the tail can never be stranded
        waiting on more producers than remain."""
        q = AcceleratorQueue(UniformEvaluator(), batch_size=8, linger=0.002)
        q.shrink_batch_size(2)  # "later" shrink lands first
        q.shrink_batch_size(5)  # stale earlier value must not raise it back
        assert q.batch_size == 2
        fut_a = q.submit(TicTacToe())
        fut_b = q.submit(TicTacToe())  # second submit meets threshold 2
        assert fut_a.done() and fut_b.done()
        q.set_batch_size(8)  # explicit reset is still allowed to raise
        assert q.batch_size == 8
        with pytest.raises(ValueError):
            q.shrink_batch_size(0)

    def test_shrink_flushes_meeting_backlog(self):
        q = AcceleratorQueue(UniformEvaluator(), batch_size=8, linger=0.002)
        futures = [q.submit(TicTacToe()) for _ in range(3)]
        assert not any(f.done() for f in futures)
        q.shrink_batch_size(3)  # backlog now meets the threshold
        assert all(f.done() for f in futures)

    def test_exception_during_storm_reaches_every_waiter(self):
        class Flaky(UniformEvaluator):
            def evaluate_batch(self, games):
                raise RuntimeError("device lost")

        q = AcceleratorQueue(Flaky(), batch_size=3, linger=0.002)
        errors = []
        lock = threading.Lock()

        def producer():
            try:
                q.evaluate_blocking(TicTacToe())
            except RuntimeError as err:
                with lock:
                    errors.append(err)

        threads = [threading.Thread(target=producer) for _ in range(9)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)
        assert len(errors) == 9

    def test_set_batch_size_growth_regression(self):
        """Raising the threshold must take effect exactly -- an early
        version min-clamped growth away, so a gateway could never widen
        its batches as sessions joined."""
        q = AcceleratorQueue(UniformEvaluator(), batch_size=2, linger=0.5)
        q.set_batch_size(4)
        assert q.batch_size == 4
        futures = [q.submit(TicTacToe()) for _ in range(3)]
        # under the old clamp the threshold would still be 2 and the
        # second submit would already have flushed
        assert not any(f.done() for f in futures)
        futures.append(q.submit(TicTacToe()))  # 4th meets the new threshold
        assert all(f.done() for f in futures)
        assert q.mean_batch_occupancy == 4.0

    def test_linger_window_not_shattered_by_parked_waiters(self):
        """The thundering-herd regression, pinned deterministically.

        Six staggered producers fill the first threshold batch and then
        park on its (slow) evaluation.  Historically each parked waiter
        kept running a private ``linger`` timer and called ``flush()``
        unconditionally on expiry, so the timers carpeted the timeline
        and any *fresh* arrival during the in-flight evaluation was
        flushed within milliseconds -- long before its own linger window
        -- shattering D and E below into two singleton batches.  The
        fixed queue arms one window from the oldest pending entry: D
        (arriving 100 ms in) waits out its full 50 ms linger, E (30 ms
        later) rides along, and the two fuse into one batch.
        """
        delay = 0.4  # first-batch evaluation: the window the herd spams
        evaluator = SlowEvaluator(delay=delay)
        batches: list[list[int]] = []
        rec_lock = threading.Lock()
        original = evaluator.evaluate_batch

        def recording(games):
            with rec_lock:
                batches.append([id(g) for g in games])
            return original(games)

        evaluator.evaluate_batch = recording
        q = AcceleratorQueue(evaluator, batch_size=6, linger=0.05)
        game_ids: dict[str, int] = {}

        def blocking(name: str, offset: float) -> None:
            time.sleep(offset)
            g = TicTacToe()
            game_ids[name] = id(g)
            q.evaluate_blocking(g)

        specs = [(f"s{i}", 0.008 * i) for i in range(6)]
        specs += [("D", 0.100), ("E", 0.130)]
        threads = [
            threading.Thread(target=blocking, args=spec) for spec in specs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads), "queue deadlocked"
        assert any(
            game_ids["D"] in b and game_ids["E"] in b for b in batches
        ), f"herd shattered D and E into separate flushes: {batches}"
        # [6, 2], never the herd's [6, 1, 1]
        assert min(len(b) for b in batches) >= 2
        assert q.mean_batch_occupancy >= 3.5
        assert q.linger_flushes >= 1

    @pytest.mark.slow
    def test_sustained_storm_nightly(self):
        """Nightly-lane scale: more threads, more rounds, slower device."""
        evaluator = SlowEvaluator(delay=0.001)
        q = AcceleratorQueue(evaluator, batch_size=13, linger=0.002)
        results = hammer(q, num_threads=24, per_thread=50)
        total = 24 * 50
        assert len(results) == total
        assert q.requests_served == total
        assert q.batches_flushed == evaluator.calls
        assert q.mean_batch_occupancy > 1.0
