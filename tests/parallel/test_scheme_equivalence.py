"""Section-3.2 program-template invariant: serial parity of every scheme.

"A single program template that allows compile-time adaptive selection of
parallel implementations" only works if every parallel scheme runs the
*same algorithm* as the serial baseline and differs purely in scheduling.
Degenerate the scheduling away -- one worker, no virtual loss, a fixed
RNG seed, no root noise -- and every scheme in :mod:`repro.parallel` must
produce root visit counts *identical* to :class:`repro.mcts.serial.SerialMCTS`.

This pins the invariant down before further refactors of the search
layers; any divergence here means a scheme silently changed the algorithm,
not just its parallel schedule.
"""

import numpy as np
import pytest

from repro.games import SyntheticTreeGame, TicTacToe, build_network_for
from repro.mcts.evaluation import NetworkEvaluator, UniformEvaluator
from repro.mcts.node import Node
from repro.mcts.serial import SerialMCTS
from repro.mcts.virtual_loss import NoVirtualLoss
from repro.parallel import (
    LeafParallelMCTS,
    LocalTreeMCTS,
    LockFreeSharedTreeMCTS,
    RootParallelMCTS,
    SharedTreeMCTS,
    SpeculativeMCTS,
)

PLAYOUTS = 60
C_PUCT = 5.0


def make_games():
    return {
        "tictactoe": lambda: TicTacToe(),
        "synthetic": lambda: SyntheticTreeGame(
            fanout=4, depth_limit=6, board_size=5, seed=7
        ),
    }


def scheme_factories(evaluator):
    """Every parallel scheme, degenerated to serial scheduling: 1 worker,
    no virtual loss, dirichlet off (the default), fixed seed."""
    no_vl = NoVirtualLoss()
    return {
        "shared_tree": lambda: SharedTreeMCTS(
            evaluator, num_workers=1, c_puct=C_PUCT, vl_policy=no_vl, rng=0
        ),
        "lock_free": lambda: LockFreeSharedTreeMCTS(
            evaluator, num_workers=1, c_puct=C_PUCT, vl_policy=no_vl, rng=0
        ),
        "local_tree": lambda: LocalTreeMCTS(
            evaluator, num_workers=1, batch_size=1, c_puct=C_PUCT,
            vl_policy=no_vl, rng=0,
        ),
        "leaf_parallel": lambda: LeafParallelMCTS(
            evaluator, num_workers=1, c_puct=C_PUCT, rng=0
        ),
        "root_parallel": lambda: RootParallelMCTS(
            evaluator, num_workers=1, c_puct=C_PUCT, rng=0
        ),
        # draft == main: speculation corrections are exact no-ops, so the
        # sequential in-tree semantics must reduce to serial exactly
        "speculative": lambda: SpeculativeMCTS(
            evaluator, evaluator, num_workers=1, c_puct=C_PUCT, rng=0
        ),
    }


def root_visits(root: Node, action_size: int) -> np.ndarray:
    visits = np.zeros(action_size, dtype=np.int64)
    for action, child in root.children.items():
        visits[action] = child.visit_count
    return visits


def serial_reference(game, evaluator) -> np.ndarray:
    engine = SerialMCTS(evaluator, c_puct=C_PUCT, rng=0)
    root = engine.search(game.copy(), PLAYOUTS)
    return root_visits(root, game.action_size)


@pytest.mark.parametrize("game_name", sorted(make_games()))
@pytest.mark.parametrize("scheme_name", sorted(scheme_factories(None)))
def test_scheme_matches_serial_visit_counts(game_name, scheme_name):
    game = make_games()[game_name]()
    evaluator = UniformEvaluator()
    expected = serial_reference(game, evaluator)

    scheme = scheme_factories(evaluator)[scheme_name]()
    try:
        root = scheme.search(game.copy(), PLAYOUTS)
    finally:
        scheme.close()
    actual = root_visits(root, game.action_size)
    np.testing.assert_array_equal(
        actual, expected,
        err_msg=f"{scheme_name} diverged from serial on {game_name}",
    )


@pytest.mark.parametrize("scheme_name", sorted(scheme_factories(None)))
def test_scheme_matches_serial_action_prior_with_network(scheme_name):
    """Same invariant through a real (deterministic) DNN evaluator, checked
    on the get_action_prior surface the training loop consumes."""
    game = TicTacToe()
    net = build_network_for(game, channels=(2, 4, 4), rng=3)
    evaluator = NetworkEvaluator(net)
    expected = SerialMCTS(evaluator, c_puct=C_PUCT, rng=0).get_action_prior(
        game.copy(), PLAYOUTS
    )

    scheme = scheme_factories(evaluator)[scheme_name]()
    try:
        prior = scheme.get_action_prior(game.copy(), PLAYOUTS)
    finally:
        scheme.close()
    np.testing.assert_allclose(prior, expected, atol=1e-12)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_engine_backend_matches_serial_episodes(backend):
    """The same invariant across the *process* boundary: an engine round
    (thread pool or multiprocess farm) must reproduce a sequential loop
    of serial searches over the same spawned seeds exactly -- shared
    caches, cross-game/cross-process batching and shared-memory transport
    change where evaluations run, never their results."""
    from repro.serving import MultiGameSelfPlayEngine
    from repro.training.selfplay import play_episode
    from repro.utils.rng import new_rng, spawn_rngs

    game = TicTacToe()
    evaluator = UniformEvaluator()
    kwargs = {"num_workers": 2} if backend == "process" else {}
    with MultiGameSelfPlayEngine(
        game, evaluator, num_games=4, num_playouts=10, rng=0,
        backend=backend, **kwargs,
    ) as engine:
        results, _ = engine.play_round()

    for got, game_rng in zip(results, spawn_rngs(new_rng(0), 4)):
        expected = play_episode(
            game, SerialMCTS(evaluator, rng=game_rng), 10, rng=game_rng
        )
        assert got.winner == expected.winner
        assert got.moves == expected.moves
        for ge, ee in zip(got.examples, expected.examples):
            np.testing.assert_array_equal(ge.policy, ee.policy)
            np.testing.assert_array_equal(ge.planes, ee.planes)
            assert ge.value == ee.value
