"""Tests for the real-thread shared-tree scheme (Algorithm 2)."""

import numpy as np
import pytest

from repro.games import ConnectFour, TicTacToe
from repro.mcts.evaluation import RandomRolloutEvaluator, UniformEvaluator
from repro.mcts.virtual_loss import WUVirtualLoss
from repro.parallel import SharedTreeMCTS
from repro.parallel.base import SchemeName


class TestBasics:
    def test_playout_budget_respected(self):
        with SharedTreeMCTS(UniformEvaluator(), num_workers=4, rng=0) as scheme:
            root = scheme.search(TicTacToe(), 120)
        assert root.visit_count == 120

    def test_prior_is_distribution(self):
        with SharedTreeMCTS(UniformEvaluator(), num_workers=4, rng=1) as scheme:
            prior = scheme.get_action_prior(TicTacToe(), 80)
        assert np.isclose(prior.sum(), 1.0)

    def test_scheme_name(self):
        assert SharedTreeMCTS(UniformEvaluator()).name == SchemeName.SHARED_TREE

    def test_input_game_not_mutated(self):
        g = TicTacToe()
        with SharedTreeMCTS(UniformEvaluator(), num_workers=4, rng=2) as scheme:
            scheme.search(g, 60)
        assert g.cells.sum() == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SharedTreeMCTS(UniformEvaluator(), num_workers=0)
        with pytest.raises(ValueError):
            SharedTreeMCTS(UniformEvaluator(), c_puct=0.0)
        scheme = SharedTreeMCTS(UniformEvaluator())
        with pytest.raises(ValueError):
            scheme.search(TicTacToe(), 0)

    def test_single_worker_degenerates_gracefully(self):
        with SharedTreeMCTS(UniformEvaluator(), num_workers=1, rng=3) as scheme:
            root = scheme.search(TicTacToe(), 50)
        assert root.visit_count == 50


class TestConcurrencyInvariants:
    def test_no_virtual_loss_residue(self):
        """Every descend must be matched by a backup, across all workers."""
        with SharedTreeMCTS(UniformEvaluator(), num_workers=8, rng=4) as scheme:
            root = scheme.search(TicTacToe(), 200)
        for node in root.iter_subtree():
            assert node.virtual_loss == pytest.approx(0.0)

    def test_visit_conservation(self):
        with SharedTreeMCTS(UniformEvaluator(), num_workers=8, rng=5) as scheme:
            root = scheme.search(TicTacToe(), 300)
        for node in root.iter_subtree():
            if node.children:
                child_sum = sum(c.visit_count for c in node.children.values())
                # parent counts its own evaluation visit(s) too
                assert node.visit_count >= child_sum

    def test_wu_uct_policy_works(self):
        with SharedTreeMCTS(
            UniformEvaluator(), num_workers=4, vl_policy=WUVirtualLoss(), rng=6
        ) as scheme:
            root = scheme.search(TicTacToe(), 150)
        assert root.visit_count == 150
        for node in root.iter_subtree():
            assert node.virtual_loss == pytest.approx(0.0)

    def test_worker_exception_propagates(self):
        class Boom(UniformEvaluator):
            def evaluate(self, game):
                if game.move_count if hasattr(game, "move_count") else 0:
                    raise RuntimeError("boom")
                return super().evaluate(game)

        class AlwaysBoom(UniformEvaluator):
            calls = 0

            def evaluate(self, game):
                AlwaysBoom.calls += 1
                if AlwaysBoom.calls > 1:  # let the root warm-up succeed
                    raise RuntimeError("boom")
                return super().evaluate(game)

        with SharedTreeMCTS(AlwaysBoom(), num_workers=2, rng=7) as scheme:
            with pytest.raises(RuntimeError, match="boom"):
                scheme.search(TicTacToe(), 20)


class TestTacticalStrength:
    def test_finds_winning_move_under_parallelism(self):
        g = TicTacToe()
        for a in [0, 3, 1, 4]:
            g.step(a)
        with SharedTreeMCTS(
            RandomRolloutEvaluator(rng=0), num_workers=4, c_puct=1.5, rng=8
        ) as scheme:
            prior = scheme.get_action_prior(g, 400)
        assert int(np.argmax(prior)) == 2

    def test_connect4_block(self):
        g = ConnectFour()
        for a in [3, 0, 3, 1, 3]:  # X threatens column 3; O must block
            g.step(a)
        with SharedTreeMCTS(
            RandomRolloutEvaluator(rng=1), num_workers=4, c_puct=1.5, rng=9
        ) as scheme:
            prior = scheme.get_action_prior(g, 500)
        assert int(np.argmax(prior)) == 3


class TestAgainstSerial:
    def test_similar_distribution_to_serial(self):
        """Parallel search explores differently (obsolete information), but
        on a simple position the visit distribution should broadly agree
        with serial search -- the paper's Section 5.5 claim."""
        from repro.mcts.serial import SerialMCTS

        serial = SerialMCTS(UniformEvaluator(), rng=10).get_action_prior(
            TicTacToe(), 400
        )
        with SharedTreeMCTS(UniformEvaluator(), num_workers=4, rng=11) as scheme:
            parallel = scheme.get_action_prior(TicTacToe(), 400)
        # total variation distance should be modest
        tv = 0.5 * np.abs(serial - parallel).sum()
        assert tv < 0.25
