"""Tests for the accelerator queue and batching evaluator (Section 3.3)."""

import threading

import numpy as np
import pytest

from repro.games import TicTacToe, build_network_for
from repro.mcts.evaluation import NetworkEvaluator, UniformEvaluator
from repro.parallel import BatchingEvaluator, SharedTreeMCTS
from repro.parallel.evaluator import AcceleratorQueue


class TestAcceleratorQueue:
    def test_flush_at_threshold(self):
        q = AcceleratorQueue(UniformEvaluator(), batch_size=3)
        futures = [q.submit(TicTacToe()) for _ in range(3)]
        # third submit triggers the flush inline
        assert all(f.done() for f in futures)
        assert q.batches_flushed == 1
        assert q.requests_served == 3

    def test_partial_batch_waits(self):
        q = AcceleratorQueue(UniformEvaluator(), batch_size=4)
        fut = q.submit(TicTacToe())
        assert not fut.done()
        assert q.pending_count == 1

    def test_manual_flush(self):
        q = AcceleratorQueue(UniformEvaluator(), batch_size=4)
        fut = q.submit(TicTacToe())
        flushed = q.flush()
        assert flushed == 1
        assert fut.done()

    def test_evaluate_blocking_linger_flush(self):
        q = AcceleratorQueue(UniformEvaluator(), batch_size=8, linger=0.01)
        ev = q.evaluate_blocking(TicTacToe())
        assert np.isclose(ev.priors.sum(), 1.0)

    def test_results_match_request_order(self):
        g1, g2 = TicTacToe(), TicTacToe()
        g2.step(0)
        q = AcceleratorQueue(UniformEvaluator(), batch_size=2)
        f1 = q.submit(g1)
        f2 = q.submit(g2)
        assert f1.result().priors[0] > 0  # g1: cell 0 legal
        assert f2.result().priors[0] == 0  # g2: cell 0 taken

    def test_exception_propagates_to_all(self):
        class Broken(UniformEvaluator):
            def evaluate_batch(self, games):
                raise RuntimeError("device lost")

        q = AcceleratorQueue(Broken(), batch_size=2)
        f1 = q.submit(TicTacToe())
        f2 = q.submit(TicTacToe())
        for f in (f1, f2):
            with pytest.raises(RuntimeError, match="device lost"):
                f.result()

    def test_concurrent_producers(self):
        q = AcceleratorQueue(UniformEvaluator(), batch_size=4, linger=0.01)
        results = []
        lock = threading.Lock()

        def producer():
            ev = q.evaluate_blocking(TicTacToe())
            with lock:
                results.append(ev)

        threads = [threading.Thread(target=producer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        assert q.requests_served == 8

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            AcceleratorQueue(UniformEvaluator(), batch_size=0)
        with pytest.raises(ValueError):
            AcceleratorQueue(UniformEvaluator(), batch_size=1, linger=0.0)


class TestBatchingEvaluator:
    def test_through_shared_tree(self):
        """The paper's shared-tree + GPU configuration: N workers, full
        -batched inference through the accelerator queue."""
        net = build_network_for(TicTacToe(), channels=(2, 4, 4), rng=0)
        bev = BatchingEvaluator(NetworkEvaluator(net), batch_size=4, linger=0.01)
        with SharedTreeMCTS(bev, num_workers=4, rng=0) as scheme:
            prior = scheme.get_action_prior(TicTacToe(), 60)
        assert np.isclose(prior.sum(), 1.0)
        assert bev.queue.requests_served >= 59  # root eval bypasses the queue
        # batching actually happened (not all singleton flushes)
        assert bev.queue.batches_flushed < bev.queue.requests_served

    def test_evaluate_batch_bypasses_queue(self):
        bev = BatchingEvaluator(UniformEvaluator(), batch_size=8)
        evs = bev.evaluate_batch([TicTacToe(), TicTacToe()])
        assert len(evs) == 2
        assert bev.queue.pending_count == 0
