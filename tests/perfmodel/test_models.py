"""Tests for the Equation 3-6 performance models."""

import numpy as np
import pytest

from repro.perfmodel.models import (
    PerformanceModel,
    ProfiledLatencies,
    local_tree_cpu_latency,
    local_tree_gpu_latency,
    shared_tree_cpu_latency,
    shared_tree_gpu_latency,
)
from repro.simulator.hardware import GPUSpec


@pytest.fixture
def profile():
    return ProfiledLatencies(
        t_select_shared=90e-6,
        t_backup_shared=8e-6,
        t_select_local=16e-6,
        t_backup_local=2e-6,
        t_dnn_cpu=800e-6,
        t_access=2.6e-6,
    )


@pytest.fixture
def gpu():
    return GPUSpec()


class TestEquation3:
    def test_formula(self, profile):
        n = 8
        expected = (
            profile.t_access * n
            + profile.in_tree_shared
            + profile.t_dnn_cpu
        ) / n
        assert shared_tree_cpu_latency(profile, n) == pytest.approx(expected)

    def test_access_term_floors_scaling(self, profile):
        """As N grows, per-iteration latency approaches T_access, never 0."""
        lat = shared_tree_cpu_latency(profile, 100_000)
        assert lat == pytest.approx(profile.t_access, rel=0.01)

    def test_invalid_workers(self, profile):
        with pytest.raises(ValueError):
            shared_tree_cpu_latency(profile, 0)


class TestEquation5:
    def test_dnn_bound_at_small_n(self, profile):
        assert local_tree_cpu_latency(profile, 2) == pytest.approx(
            profile.t_dnn_cpu / 2
        )

    def test_master_bound_at_large_n(self, profile):
        assert local_tree_cpu_latency(profile, 1000) == pytest.approx(
            profile.in_tree_local
        )

    def test_max_semantics(self, profile):
        crossover_n = profile.t_dnn_cpu / profile.in_tree_local
        below = local_tree_cpu_latency(profile, int(crossover_n // 2))
        above = local_tree_cpu_latency(profile, int(crossover_n * 2))
        assert below > profile.in_tree_local
        assert above == pytest.approx(profile.in_tree_local)


class TestEquation4:
    def test_batched_inference_amortises(self, profile, gpu):
        """Equation 4 with growing N amortises the kernel base."""
        l8 = shared_tree_gpu_latency(profile, 8, gpu)
        l64 = shared_tree_gpu_latency(profile, 64, gpu)
        assert l64 < l8

    def test_gpu_beats_cpu_at_scale(self, profile, gpu):
        assert shared_tree_gpu_latency(profile, 32, gpu) < shared_tree_cpu_latency(
            profile, 32
        )


class TestEquation6:
    def test_v_sequence_property(self, profile, gpu):
        """The batch-latency sequence must be (approximately) a V: it never
        rises then falls again by more than the kink tolerance."""
        model = PerformanceModel(profile, gpu)
        for n in (16, 32, 64):
            seq = model.batch_latency_sequence(n)
            min_idx = int(np.argmin(seq))
            # non-increasing up to the min, non-decreasing after (allow the
            # single overlap-kink discontinuity at N/2)
            descending = seq[: min_idx + 1]
            assert all(a >= b - 1e-12 for a, b in zip(descending, descending[1:]))

    def test_batch_one_dominated_by_launches(self, profile, gpu):
        lat = local_tree_gpu_latency(profile, 16, gpu, 1)
        assert lat > gpu.launch_latency  # every sample pays a launch

    def test_overlap_kink_at_half(self, profile, gpu):
        """Crossing B = N/2 loses overlap and must not get cheaper."""
        n = 32
        just_below = local_tree_gpu_latency(profile, n, gpu, n // 2)
        just_above = local_tree_gpu_latency(profile, n, gpu, n // 2 + 1)
        assert just_above >= just_below

    def test_invalid_batch(self, profile, gpu):
        with pytest.raises(ValueError):
            local_tree_gpu_latency(profile, 8, gpu, 0)
        with pytest.raises(ValueError):
            local_tree_gpu_latency(profile, 8, gpu, 9)


class TestProfiledLatencies:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ProfiledLatencies(
                t_select_shared=-1,
                t_backup_shared=0,
                t_select_local=0,
                t_backup_local=0,
                t_dnn_cpu=0,
                t_access=0,
            )

    def test_in_tree_totals(self, profile):
        assert profile.in_tree_shared == pytest.approx(98e-6)
        assert profile.in_tree_local == pytest.approx(18e-6)


class TestModelMirrorsPaperFigures:
    """The analytic models alone must reproduce the qualitative figure
    claims (the DES benchmarks check the executed versions)."""

    def test_fig4_crossover_exists(self, profile):
        model = PerformanceModel(profile)
        winners = {
            n: "shared" if model.shared_cpu(n) < model.local_cpu(n) else "local"
            for n in (1, 4, 16, 64)
        }
        assert winners[4] == "local"
        assert winners[64] == "shared"

    def test_fig5_local_bstar_wins_at_large_n(self, profile, gpu):
        model = PerformanceModel(profile, gpu)
        for n in (32, 64):
            best_local = min(model.batch_latency_sequence(n))
            assert best_local < model.shared_gpu(n)

    def test_fig3_optimum_matches_paper_at_16(self, profile, gpu):
        model = PerformanceModel(profile, gpu)
        seq = model.batch_latency_sequence(16)
        assert int(np.argmin(seq)) + 1 == 8  # the paper's B*=8 at N=16
