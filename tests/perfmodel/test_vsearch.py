"""Tests for Algorithm 4 (V-sequence minimum search)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel.vsearch import find_v_minimum


def from_list(values):
    """1-indexed evaluate callable over a list."""
    return lambda b: values[b - 1]


class TestCorrectness:
    def test_simple_v(self):
        values = [9, 5, 3, 2, 4, 7, 11]
        trace = find_v_minimum(from_list(values), 1, len(values))
        assert trace.best_batch == 4
        assert trace.best_latency == 2

    def test_monotone_decreasing(self):
        values = [10, 8, 6, 4, 2]
        trace = find_v_minimum(from_list(values), 1, 5)
        assert trace.best_batch == 5

    def test_monotone_increasing(self):
        values = [1, 3, 5, 7]
        trace = find_v_minimum(from_list(values), 1, 4)
        assert trace.best_batch == 1

    def test_single_element(self):
        trace = find_v_minimum(from_list([42]), 1, 1)
        assert trace.best_batch == 1
        assert trace.best_latency == 42

    def test_flat_plateau(self):
        values = [5, 3, 3, 3, 6]
        trace = find_v_minimum(from_list(values), 1, 5)
        assert trace.best_latency == 3

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            find_v_minimum(from_list([1]), 0, 1)
        with pytest.raises(ValueError):
            find_v_minimum(from_list([1]), 2, 1)

    @given(
        left=st.integers(0, 30),
        right=st.integers(0, 30),
        depth=st.floats(0.1, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_random_v_sequences(self, left, right, depth):
        """Any strictly-V sequence: FindMin locates the exact minimum."""
        down = [depth + (left - i) for i in range(left)]
        up = [depth + (i + 1) for i in range(right)]
        values = down + [depth] + up
        trace = find_v_minimum(from_list(values), 1, len(values))
        assert trace.best_latency == depth
        assert trace.best_batch == left + 1


class TestComplexity:
    @pytest.mark.parametrize("n", [16, 64, 256, 1024])
    def test_logarithmic_test_runs(self, n):
        """Section 4.2's claim: O(log N) test runs instead of N."""
        values = [abs(i - n // 3) + 1.0 for i in range(n)]
        trace = find_v_minimum(from_list(values), 1, n)
        assert trace.test_runs <= 2 * math.ceil(math.log2(n)) + 2
        assert trace.best_batch == n // 3 + 1

    def test_memoisation_counts_unique_probes(self):
        calls = []

        def evaluate(b):
            calls.append(b)
            return abs(b - 5) + 1.0

        trace = find_v_minimum(evaluate, 1, 16)
        assert len(calls) == len(set(calls))  # never re-evaluates
        assert trace.test_runs == len(calls)
