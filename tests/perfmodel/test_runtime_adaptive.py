"""Tests for runtime adaptive switching and accelerator presets."""

import numpy as np
import pytest

from repro.games import Gomoku, TicTacToe
from repro.mcts.evaluation import UniformEvaluator
from repro.perfmodel import DesignConfigurator, profile_virtual
from repro.perfmodel.runtime import AutoSwitchingScheme
from repro.simulator import paper_platform
from repro.simulator.hardware import fpga_like_accelerator, tpu_like_accelerator

PLAT = paper_platform()


class TestAutoSwitchingScheme:
    def test_plays_moves(self):
        scheme = AutoSwitchingScheme(
            UniformEvaluator(), PLAT, num_workers=4,
            reprofile_every=2, profile_playouts=50, rng=0,
        )
        g = Gomoku(6, 4)
        for _ in range(4):
            prior = scheme.get_action_prior(g, 50)
            assert np.isclose(prior.sum(), 1.0)
            g.step(int(np.argmax(prior)))
        scheme.close()
        assert scheme.decisions  # at least the initial selection

    def test_initial_decision_recorded(self):
        scheme = AutoSwitchingScheme(
            UniformEvaluator(), PLAT, num_workers=8, profile_playouts=40, rng=1
        )
        scheme.get_action_prior(TicTacToe(), 30)
        scheme.close()
        move, name, batch = scheme.decisions[0]
        assert move == 0
        assert name in ("shared_tree", "local_tree")

    def test_reprofiling_cadence(self):
        scheme = AutoSwitchingScheme(
            UniformEvaluator(), PLAT, num_workers=4,
            reprofile_every=3, profile_playouts=30, rng=2,
        )
        g = TicTacToe()
        for _ in range(4):
            prior = scheme.get_action_prior(g, 20)
            g.step(int(np.argmax(prior)))
            if g.is_terminal:
                break
        scheme.close()
        # decisions only ever appended on change; cadence respected means
        # no more decisions than ceil(moves / reprofile_every) + 1
        assert len(scheme.decisions) <= 3

    def test_config_exposed(self):
        scheme = AutoSwitchingScheme(
            UniformEvaluator(), PLAT, num_workers=16, profile_playouts=40, rng=3
        )
        scheme.get_action_prior(TicTacToe(), 20)
        assert scheme.active_config is not None
        assert scheme.active_config.num_workers == 16
        scheme.close()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            AutoSwitchingScheme(UniformEvaluator(), PLAT, num_workers=0)
        with pytest.raises(ValueError):
            AutoSwitchingScheme(UniformEvaluator(), PLAT, 4, reprofile_every=0)
        with pytest.raises(ValueError):
            AutoSwitchingScheme(
                UniformEvaluator(), paper_platform(with_gpu=False), 4, use_gpu=True
            )


class TestAcceleratorPresets:
    @pytest.fixture(scope="class")
    def profile(self):
        return profile_virtual(Gomoku(15, 5), PLAT, num_playouts=200)

    def test_presets_are_valid_specs(self):
        for spec in (tpu_like_accelerator(), fpga_like_accelerator()):
            assert spec.compute_time(16) > spec.compute_time(1) * 0  # monotone...
            assert spec.compute_time(16) > 0
            assert spec.transfer_time(16) > 0

    def test_workflow_generalises_across_accelerators(self, profile):
        """The paper's conclusion: 'our method and performance models are
        general and can also be adopted in the context of many other types
        of accelerators'.  The workflow must yield a (possibly different)
        valid configuration for every preset."""
        for spec in (PLAT.gpu, tpu_like_accelerator(), fpga_like_accelerator()):
            cfg = DesignConfigurator(profile, spec).configure_gpu(32)
            assert 1 <= cfg.batch_size <= 32
            assert cfg.predicted_latency > 0

    def test_tpu_prefers_bigger_batches_than_fpga(self, profile):
        """High-launch-latency accelerators amortise over larger batches."""
        tpu_cfg = DesignConfigurator(profile, tpu_like_accelerator()).configure_gpu(64)
        fpga_cfg = DesignConfigurator(profile, fpga_like_accelerator()).configure_gpu(64)
        assert tpu_cfg.batch_size >= fpga_cfg.batch_size

    def test_scheme_choice_can_differ_across_accelerators(self, profile):
        choices = {
            spec.name: DesignConfigurator(profile, spec).configure_gpu(32).scheme.value
            for spec in (PLAT.gpu, tpu_like_accelerator(), fpga_like_accelerator())
        }
        assert len(set(choices.values())) >= 1  # recorded; may legitimately tie
