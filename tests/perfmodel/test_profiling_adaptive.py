"""Tests for design-time profiling and the adaptive configurator."""

import numpy as np
import pytest

from repro.games import Gomoku, SyntheticTreeGame, TicTacToe
from repro.mcts.evaluation import UniformEvaluator
from repro.parallel.base import SchemeName
from repro.perfmodel import (
    DesignConfigurator,
    profile_virtual,
    profile_wallclock,
)
from repro.simulator import LocalTreeSimulation, SharedTreeSimulation, paper_platform

PLAT = paper_platform()


class TestProfileWallclock:
    def test_measures_positive_latencies(self):
        prof = profile_wallclock(TicTacToe(), UniformEvaluator(), num_playouts=50)
        assert prof.t_select_local > 0
        assert prof.t_dnn_cpu > 0

    def test_ddr_scaling_applied(self):
        prof = profile_wallclock(
            TicTacToe(), UniformEvaluator(), num_playouts=50, ddr_cache_ratio=4.0
        )
        assert prof.t_select_shared == pytest.approx(4.0 * prof.t_select_local)

    def test_synthetic_tree_profiling(self):
        """Section 4.2's procedure: profile on a synthetic tree emulating
        the application's fanout and depth limit."""
        game = SyntheticTreeGame(fanout=8, depth_limit=10, board_size=5)
        prof = profile_wallclock(game, UniformEvaluator(), num_playouts=100)
        assert prof.t_select_local > 0


class TestProfileVirtual:
    def test_shared_regime_costs_more(self):
        prof = profile_virtual(Gomoku(9, 5), PLAT, num_playouts=100)
        assert prof.t_select_shared > prof.t_select_local
        assert prof.t_backup_shared > prof.t_backup_local

    def test_dnn_latency_from_spec(self):
        prof = profile_virtual(TicTacToe(), PLAT, num_playouts=30)
        assert prof.t_dnn_cpu == PLAT.cpu.dnn_latency

    def test_fanout_recorded(self):
        prof = profile_virtual(Gomoku(9, 5), PLAT, num_playouts=60)
        assert 60 < prof.mean_expand_children <= 81

    def test_deterministic(self):
        a = profile_virtual(TicTacToe(), PLAT, num_playouts=50)
        b = profile_virtual(TicTacToe(), PLAT, num_playouts=50)
        assert a.t_select_shared == b.t_select_shared


class TestDesignConfigurator:
    @pytest.fixture
    def configurator(self):
        prof = profile_virtual(Gomoku(15, 5), PLAT, num_playouts=300)
        return DesignConfigurator(prof, PLAT.gpu)

    def test_cpu_choice_matches_simulator(self, configurator):
        """The headline claim: the model-guided choice is the actually
        -faster scheme on the (simulated) platform, for every N."""
        game = Gomoku(15, 5)
        ev = UniformEvaluator()
        for n in (1, 4, 16, 64):
            cfg = configurator.configure_cpu(n)
            rs = SharedTreeSimulation(game, ev, PLAT, num_workers=n).run(300)
            rl = LocalTreeSimulation(game, ev, PLAT, num_workers=n).run(300)
            actual = (
                SchemeName.SHARED_TREE
                if rs.per_iteration < rl.per_iteration
                else SchemeName.LOCAL_TREE
            )
            assert cfg.scheme == actual, f"N={n}"

    def test_gpu_batch_search_is_logarithmic(self, configurator):
        cfg = configurator.configure_gpu(64)
        assert cfg.batch_search is not None
        assert cfg.batch_search.test_runs <= 14  # ~2 log2(64) + endpoint

    def test_gpu_choice_structure(self, configurator):
        cfg16 = configurator.configure_gpu(16)
        cfg64 = configurator.configure_gpu(64)
        # large N must prefer the sub-batched local tree (Figure 5)
        assert cfg64.scheme == SchemeName.LOCAL_TREE
        assert cfg64.batch_size < 64
        # candidates recorded for reporting
        assert "shared_tree" in cfg16.candidates

    def test_speedup_vs_worst_nonnegative(self, configurator):
        cfg = configurator.configure_gpu(32)
        assert cfg.speedup_vs_worst >= 1.0

    def test_measured_mode_requires_shared_measurement(self, configurator):
        with pytest.raises(ValueError):
            configurator.configure_gpu(8, measure=lambda b: 1.0)

    def test_measured_mode(self, configurator):
        game = Gomoku(9, 5)
        ev = UniformEvaluator()

        def measure(b):
            return (
                LocalTreeSimulation(game, ev, PLAT, 16, batch_size=b, use_gpu=True)
                .run(150)
                .per_iteration
            )

        shared = SharedTreeSimulation(game, ev, PLAT, 16, use_gpu=True).run(150)
        cfg = configurator.configure_gpu(
            16, measure=measure, measured_shared=shared.per_iteration
        )
        assert cfg.scheme in (SchemeName.SHARED_TREE, SchemeName.LOCAL_TREE)
        assert cfg.predicted_latency <= max(cfg.candidates.values())

    def test_gpu_without_spec_raises(self):
        prof = profile_virtual(TicTacToe(), PLAT, num_playouts=30)
        cfg = DesignConfigurator(prof, gpu=None)
        with pytest.raises(ValueError):
            cfg.configure_gpu(8)

    def test_configure_dispatch(self, configurator):
        assert configurator.configure(8, use_gpu=False).use_gpu is False
        assert configurator.configure(8, use_gpu=True).use_gpu is True
