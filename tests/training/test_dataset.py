"""Tests for the replay buffer and training examples."""

import numpy as np
import pytest

from repro.games import Gomoku, TicTacToe
from repro.training.dataset import ReplayBuffer, TrainingExample


def example(value=0.5, seed=0, size=3):
    rng = np.random.default_rng(seed)
    return TrainingExample(
        planes=rng.random((4, size, size)),
        policy=rng.dirichlet(np.ones(size * size)),
        value=value,
    )


class TestTrainingExample:
    def test_value_range_enforced(self):
        with pytest.raises(ValueError):
            example(value=2.0)

    def test_valid_bounds(self):
        example(value=1.0)
        example(value=-1.0)


class TestReplayBuffer:
    def test_add_and_len(self):
        buf = ReplayBuffer(capacity=10, rng=0)
        buf.add(example())
        assert len(buf) == 1
        assert buf.total_added == 1

    def test_capacity_evicts_oldest(self):
        buf = ReplayBuffer(capacity=3, rng=0)
        for i in range(5):
            buf.add(example(value=i / 10))
        assert len(buf) == 3
        states, _, values = buf.sample(100)
        assert set(np.round(values, 1)) <= {0.2, 0.3, 0.4}

    def test_sample_shapes(self):
        buf = ReplayBuffer(rng=0)
        for i in range(4):
            buf.add(example(seed=i))
        states, policies, values = buf.sample(8)
        assert states.shape == (8, 4, 3, 3)
        assert policies.shape == (8, 9)
        assert values.shape == (8,)

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            ReplayBuffer(rng=0).sample(1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)
        buf = ReplayBuffer(rng=0)
        buf.add(example())
        with pytest.raises(ValueError):
            buf.sample(0)

    def test_deterministic_sampling(self):
        def build():
            buf = ReplayBuffer(rng=7)
            for i in range(10):
                buf.add(example(seed=i, value=i / 10))
            return buf.sample(5)[2]

        assert np.allclose(build(), build())


class TestSymmetryAugmentation:
    def test_gomoku_eightfold(self):
        buf = ReplayBuffer(rng=0)
        g = Gomoku(5, 4)
        ex = TrainingExample(
            planes=g.encode(),
            policy=np.full(25, 1 / 25),
            value=0.0,
        )
        count = buf.add_with_symmetries(g, ex)
        assert count == 8
        assert len(buf) == 8

    def test_augmented_values_identical(self):
        buf = ReplayBuffer(rng=0)
        g = TicTacToe()
        ex = TrainingExample(planes=g.encode(), policy=np.full(9, 1 / 9), value=0.75)
        buf.add_with_symmetries(g, ex)
        _, _, values = buf.sample(20)
        assert np.allclose(values, 0.75)

    def test_policies_stay_normalised(self):
        buf = ReplayBuffer(rng=1)
        g = Gomoku(4, 3)
        rng = np.random.default_rng(2)
        ex = TrainingExample(
            planes=g.encode(), policy=rng.dirichlet(np.ones(16)), value=0.0
        )
        buf.add_with_symmetries(g, ex)
        _, policies, _ = buf.sample(16)
        assert np.allclose(policies.sum(axis=1), 1.0)
