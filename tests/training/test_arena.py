"""Tests for the agent arena and Elo ratings."""

import numpy as np
import pytest

from repro.games import TicTacToe
from repro.mcts.evaluation import RandomRolloutEvaluator, UniformEvaluator
from repro.mcts.serial import SerialMCTS
from repro.training.arena import Arena, ArenaResult, MatchRecord, elo_ratings


class RandomAgent:
    """Uniform-random mover with the scheme interface."""

    def __init__(self, seed=0):
        self.rng = np.random.default_rng(seed)

    def get_action_prior(self, game, num_playouts):
        prior = np.zeros(game.action_size)
        legal = game.legal_actions()
        prior[legal] = 1.0 / len(legal)
        return prior


class TestMatchRecord:
    def test_score_convention(self):
        r = MatchRecord(first="a", second="b", winner=1, moves=5)
        assert r.score_for("a") == 1.0
        assert r.score_for("b") == 0.0

    def test_draw(self):
        r = MatchRecord(first="a", second="b", winner=0, moves=9)
        assert r.score_for("a") == 0.5
        assert r.score_for("b") == 0.5

    def test_second_player_win(self):
        r = MatchRecord(first="a", second="b", winner=-1, moves=6)
        assert r.score_for("b") == 1.0


class TestArena:
    def test_round_robin_counts(self):
        arena = Arena(TicTacToe, num_playouts=10, rng=0)
        agents = {"r1": RandomAgent(1), "r2": RandomAgent(2)}
        result = arena.round_robin(agents, games_per_pair=3)
        assert len(result.records) == 6  # 2 ordered pairs x 3
        assert result.games_played("r1") == 6

    def test_scores_conserve(self):
        arena = Arena(TicTacToe, num_playouts=10, rng=1)
        agents = {"a": RandomAgent(3), "b": RandomAgent(4), "c": RandomAgent(5)}
        result = arena.round_robin(agents, games_per_pair=1)
        total = sum(result.score(n) for n in agents)
        assert total == pytest.approx(len(result.records))

    def test_stronger_agent_scores_higher(self):
        """An MCTS agent must dominate a uniform-random mover."""
        arena = Arena(TicTacToe, num_playouts=100, opening_random_moves=1, rng=2)
        agents = {
            "mcts": SerialMCTS(RandomRolloutEvaluator(rng=0), c_puct=1.5, rng=3),
            "random": RandomAgent(6),
        }
        result = arena.round_robin(agents, games_per_pair=4)
        assert result.score("mcts") > result.score("random")

    def test_invalid_args(self):
        arena = Arena(TicTacToe, rng=0)
        with pytest.raises(ValueError):
            arena.round_robin({"only": RandomAgent()}, 1)
        with pytest.raises(ValueError):
            arena.round_robin({"a": RandomAgent(), "b": RandomAgent()}, 0)
        with pytest.raises(ValueError):
            Arena(TicTacToe, num_playouts=0)


class TestReplayability:
    """The seed-ladder contract: tournaments reproduce exactly, and any
    single match replays from its recorded seed alone."""

    @staticmethod
    def _agents():
        # SerialMCTS with dirichlet_epsilon=0 never consumes its own rng,
        # so all randomness flows through the arena's per-match streams
        return {
            "a": SerialMCTS(UniformEvaluator(), rng=0),
            "b": SerialMCTS(UniformEvaluator(), c_puct=2.0, rng=0),
        }

    def test_round_robin_reproduces_exactly(self):
        results = [
            Arena(
                TicTacToe, num_playouts=20, temperature=1.0,
                opening_random_moves=2, seed_ladder=42,
            ).round_robin(self._agents(), games_per_pair=3)
            for _ in range(2)
        ]
        assert results[0].records == results[1].records

    def test_records_carry_their_seed(self):
        arena = Arena(TicTacToe, num_playouts=10, seed_ladder=7)
        result = arena.round_robin(self._agents(), games_per_pair=2)
        seeds = [r.seed for r in result.records]
        assert all(s is not None for s in seeds)
        assert len(set(seeds)) == len(seeds)  # one independent stream each

    def test_single_match_replays_from_recorded_seed(self):
        arena = Arena(
            TicTacToe, num_playouts=20, temperature=1.0,
            opening_random_moves=2, seed_ladder=99,
        )
        agents = self._agents()
        record = arena.round_robin(agents, games_per_pair=1).records[0]
        replay = arena.play_game(
            agents[record.first], agents[record.second],
            record.first, record.second, seed=record.seed,
        )
        assert replay == record

    def test_different_ladders_differ(self):
        plays = [
            Arena(
                TicTacToe, num_playouts=10, temperature=1.0,
                opening_random_moves=2, seed_ladder=root,
            ).round_robin(self._agents(), games_per_pair=4)
            for root in (0, 1)
        ]
        assert plays[0].records != plays[1].records

    def test_unseeded_arena_keeps_legacy_behaviour(self):
        arena = Arena(TicTacToe, num_playouts=10, rng=0)
        result = arena.round_robin(self._agents(), games_per_pair=1)
        assert all(r.seed is None for r in result.records)


class TestElo:
    def _records(self, wins_ab, wins_ba, draws=0):
        recs = []
        recs += [MatchRecord("a", "b", 1, 5)] * wins_ab
        recs += [MatchRecord("a", "b", -1, 5)] * wins_ba
        recs += [MatchRecord("a", "b", 0, 9)] * draws
        return recs

    def test_dominant_player_rated_higher(self):
        ratings = elo_ratings(self._records(wins_ab=8, wins_ba=2))
        assert ratings["a"] > ratings["b"]

    def test_even_results_equal_ratings(self):
        ratings = elo_ratings(self._records(wins_ab=5, wins_ba=5))
        assert abs(ratings["a"] - ratings["b"]) < 1.0

    def test_anchor_mean(self):
        ratings = elo_ratings(self._records(6, 4), anchor=1500.0)
        assert np.isclose(np.mean(list(ratings.values())), 1500.0)

    def test_rating_gap_grows_with_dominance(self):
        mild = elo_ratings(self._records(6, 4))
        strong = elo_ratings(self._records(10, 0))
        assert (strong["a"] - strong["b"]) > (mild["a"] - mild["b"])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            elo_ratings([])

    def test_arena_result_elo(self):
        result = ArenaResult(records=self._records(7, 3))
        ratings = result.elo()
        assert ratings["a"] > ratings["b"]
