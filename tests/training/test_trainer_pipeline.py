"""Tests for the Trainer, clocks, metrics, and the Algorithm-1 pipeline."""

import numpy as np
import pytest

from repro.games import TicTacToe, build_network_for
from repro.mcts.evaluation import NetworkEvaluator, UniformEvaluator
from repro.mcts.serial import SerialMCTS
from repro.nn import SGD, AlphaZeroLoss
from repro.training import (
    ReplayBuffer,
    Trainer,
    TrainingPipeline,
    VirtualClock,
    WallClock,
)


def make_trainer(seed=0, lr=0.02):
    net = build_network_for(TicTacToe(), channels=(4, 8, 8), rng=seed)
    return net, Trainer(net, SGD(net.parameters(), lr=lr, momentum=0.9), AlphaZeroLoss(1e-4))


def random_batch(n=16, seed=0):
    rng = np.random.default_rng(seed)
    states = rng.random((n, 4, 3, 3))
    policies = rng.dirichlet(np.ones(9), size=n)
    values = rng.uniform(-1, 1, n)
    return states, policies, values


class TestTrainer:
    def test_step_returns_loss(self):
        _, trainer = make_trainer()
        loss = trainer.train_step(*random_batch())
        assert loss.total > 0
        assert trainer.steps == 1

    def test_overfits_fixed_batch(self):
        _, trainer = make_trainer(1)
        batch = random_batch(8, seed=1)
        first = trainer.train_step(*batch).total
        for _ in range(60):
            last = trainer.train_step(*batch).total
        assert last < first

    def test_evaluate_loss_no_step(self):
        _, trainer = make_trainer(2)
        batch = random_batch(seed=2)
        loss1 = trainer.evaluate_loss(*batch)
        loss2 = trainer.evaluate_loss(*batch)
        assert trainer.steps == 0
        assert np.isclose(loss1.total, loss2.total)

    def test_batch_mismatch_rejected(self):
        _, trainer = make_trainer(3)
        states, policies, values = random_batch()
        with pytest.raises(ValueError):
            trainer.train_step(states[:4], policies, values)

    def test_bad_state_shape_rejected(self):
        _, trainer = make_trainer(4)
        with pytest.raises(ValueError):
            trainer.train_step(np.zeros((4, 9)), np.zeros((4, 9)), np.zeros(4))


class TestClocks:
    def test_virtual_clock_search_charge(self):
        clock = VirtualClock(per_iteration=10e-6, per_train_batch=1e-3)
        dt = clock.charge_search(1600)
        assert dt == pytest.approx(0.016)
        assert clock.now == pytest.approx(0.016)

    def test_virtual_clock_train_charge(self):
        clock = VirtualClock(per_iteration=10e-6, per_train_batch=2e-3)
        clock.charge_train(5)
        assert clock.now == pytest.approx(0.01)

    def test_overlapped_training_hidden(self):
        """Section 5.4: GPU training hides under the search time."""
        clock = VirtualClock(1e-3, 1e-3, train_overlapped=True)
        clock.charge_search(100)  # 0.1 s
        visible = clock.charge_train(50)  # 0.05 s < search: fully hidden
        assert visible == 0.0
        visible = clock.charge_train(50)
        assert visible == 0.0  # still within the last search window

    def test_overlapped_excess_visible(self):
        clock = VirtualClock(1e-3, 1e-3, train_overlapped=True)
        clock.charge_search(10)  # 0.01 s
        visible = clock.charge_train(50)  # 0.05 s: 0.04 visible
        assert visible == pytest.approx(0.04)

    def test_wall_clock_monotone(self):
        clock = WallClock()
        a = clock.now
        b = clock.now
        assert b >= a

    def test_invalid_latencies(self):
        with pytest.raises(ValueError):
            VirtualClock(-1, 0)


class TestPipeline:
    def _pipeline(self, episodes=4, **kwargs):
        net = build_network_for(TicTacToe(), channels=(4, 8, 8), rng=0)
        scheme = SerialMCTS(NetworkEvaluator(net), rng=1, dirichlet_epsilon=0.25)
        trainer = Trainer(net, SGD(net.parameters(), lr=0.02, momentum=0.9), AlphaZeroLoss())
        defaults = dict(
            num_playouts=15, sgd_iterations=2, batch_size=16,
            clock=VirtualClock(50e-6, 1e-3), rng=2,
        )
        defaults.update(kwargs)
        pipe = TrainingPipeline(TicTacToe(), scheme, trainer, **defaults)
        pipe.run(episodes)
        return pipe

    def test_metrics_populated(self):
        pipe = self._pipeline(3)
        m = pipe.metrics
        assert m.episodes == 3
        assert m.samples_produced > 0
        assert m.search_time > 0
        assert m.train_time > 0
        assert len(m.loss_history) == 3 * 2

    def test_throughput_definition(self):
        pipe = self._pipeline(2)
        m = pipe.metrics
        assert m.throughput == pytest.approx(
            m.samples_produced / (m.search_time + m.train_time)
        )

    def test_buffer_grows_with_symmetries(self):
        pipe = self._pipeline(1)
        assert len(pipe.buffer) == pipe.metrics.samples_produced * 8

    def test_no_augmentation_mode(self):
        pipe = self._pipeline(1, augment_symmetries=False)
        assert len(pipe.buffer) == pipe.metrics.samples_produced

    def test_loss_times_monotone(self):
        pipe = self._pipeline(3)
        times = [p.time for p in pipe.metrics.loss_history]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_on_episode_callback(self):
        seen = []
        net = build_network_for(TicTacToe(), channels=(2, 4, 4), rng=3)
        scheme = SerialMCTS(UniformEvaluator(), rng=4)
        trainer = Trainer(net, SGD(net.parameters(), lr=0.01), AlphaZeroLoss())
        pipe = TrainingPipeline(
            TicTacToe(), scheme, trainer, num_playouts=10, sgd_iterations=1,
            batch_size=8, rng=5,
        )
        pipe.run(2, on_episode=lambda i, m: seen.append(i))
        assert seen == [0, 1]

    def test_invalid_args(self):
        net = build_network_for(TicTacToe(), channels=(2, 4, 4), rng=6)
        scheme = SerialMCTS(UniformEvaluator())
        trainer = Trainer(net, SGD(net.parameters(), lr=0.01), AlphaZeroLoss())
        with pytest.raises(ValueError):
            TrainingPipeline(TicTacToe(), scheme, trainer, sgd_iterations=-1)
        pipe = TrainingPipeline(TicTacToe(), scheme, trainer)
        with pytest.raises(ValueError):
            pipe.run(0)


class TestMetrics:
    def test_smoothed_losses(self):
        from repro.training.metrics import TrainingMetrics

        m = TrainingMetrics()
        for i, total in enumerate([4.0, 2.0, 0.0]):
            m.record_loss(float(i), 0, i, total, 0.0, total)
        assert m.smoothed_losses(window=2) == [4.0, 3.0, 1.0]
        assert m.final_loss == 0.0

    def test_final_loss_empty_raises(self):
        from repro.training.metrics import TrainingMetrics

        with pytest.raises(ValueError):
            _ = TrainingMetrics().final_loss
