"""Tests for the self-play episode runner."""

import numpy as np
import pytest

from repro.games import TicTacToe
from repro.mcts.evaluation import RandomRolloutEvaluator, UniformEvaluator
from repro.mcts.serial import SerialMCTS
from repro.parallel import SharedTreeMCTS
from repro.training.selfplay import play_episode


class TestEpisodeStructure:
    def test_one_example_per_move(self):
        engine = SerialMCTS(UniformEvaluator(), rng=0)
        result = play_episode(TicTacToe(), engine, num_playouts=20, rng=1)
        assert len(result.examples) == result.moves
        assert result.total_playouts == result.moves * 20

    def test_episode_terminates(self):
        engine = SerialMCTS(UniformEvaluator(), rng=2)
        result = play_episode(TicTacToe(), engine, num_playouts=15, rng=3)
        assert 5 <= result.moves <= 9
        assert result.winner in (1, -1, 0)

    def test_outcome_backfill_perspective(self):
        """z must be +1 for the winner's moves, -1 for the loser's."""
        engine = SerialMCTS(RandomRolloutEvaluator(rng=0), rng=4)
        result = play_episode(
            TicTacToe(), engine, num_playouts=60, temperature_moves=2, rng=5
        )
        if result.winner != 0:
            # mover alternates starting with player 1
            for i, ex in enumerate(result.examples):
                mover = 1 if i % 2 == 0 else -1
                expected = 1.0 if mover == result.winner else -1.0
                assert ex.value == expected
        else:
            assert all(ex.value == 0.0 for ex in result.examples)

    def test_policies_are_distributions(self):
        engine = SerialMCTS(UniformEvaluator(), rng=6)
        result = play_episode(TicTacToe(), engine, num_playouts=25, rng=7)
        for ex in result.examples:
            assert np.isclose(ex.policy.sum(), 1.0)

    def test_max_moves_cap(self):
        engine = SerialMCTS(UniformEvaluator(), rng=8)
        result = play_episode(TicTacToe(), engine, num_playouts=10, max_moves=3, rng=9)
        assert result.moves == 3
        assert result.winner == 0  # unfinished = treated as draw

    def test_input_game_unchanged(self):
        g = TicTacToe()
        engine = SerialMCTS(UniformEvaluator(), rng=10)
        play_episode(g, engine, num_playouts=10, rng=11)
        assert g.cells.sum() == 0

    def test_invalid_playouts(self):
        engine = SerialMCTS(UniformEvaluator())
        with pytest.raises(ValueError):
            play_episode(TicTacToe(), engine, num_playouts=0)


class TestSchemeInterchangeability:
    def test_parallel_scheme_plugs_in(self):
        """Algorithm 1's flag-switched schemes: any ParallelScheme works."""
        with SharedTreeMCTS(UniformEvaluator(), num_workers=4, rng=0) as scheme:
            result = play_episode(TicTacToe(), scheme, num_playouts=40, rng=1)
        assert result.moves > 0
        assert len(result.examples) == result.moves

    def test_determinism_same_seed(self):
        def run(seed):
            engine = SerialMCTS(UniformEvaluator(), rng=100)
            return play_episode(TicTacToe(), engine, num_playouts=20, rng=seed).moves

        assert run(5) == run(5)
