"""Determinism test subsystem: farm rounds are transcript-exact.

The farm's seeding contract: episode *i* of a round is driven by
generator *i* of a ladder spawned from one root ``SeedSequence``
(:func:`repro.utils.rng.seed_ladder`), and an episode's transcript
depends only on its own generator -- never on which worker process runs
it, how evaluation batches compose, or what the shared cache happens to
contain (evaluations are pure functions of the state, stored at full
float64 precision).  Consequence: a multiprocess farm round must
reproduce a plain serial loop over the same ladder *exactly* -- same
moves, same winners, same policy targets, same encoded planes.
"""

import numpy as np
import pytest

from repro.farm import SelfPlayFarm
from repro.games import ConnectFour, TicTacToe
from repro.mcts.evaluation import UniformEvaluator
from repro.mcts.serial import SerialMCTS
from repro.training.selfplay import play_episode
from repro.utils.rng import seed_ladder

EPISODES = 4
SEED = 11

GAMES = {
    "tictactoe": (TicTacToe, 12, None),
    "connect4": (ConnectFour, 8, 16),  # (factory, playouts, max_moves)
}


def serial_transcripts(game, playouts, max_moves, seed):
    """The reference: a sequential loop over the same seed ladder."""
    episodes = []
    for rng in seed_ladder(seed, EPISODES):
        episodes.append(
            play_episode(
                game,
                SerialMCTS(UniformEvaluator(), rng=rng),
                playouts,
                max_moves=max_moves,
                rng=rng,
            )
        )
    return episodes


def assert_transcripts_equal(got, expected):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert g.winner == e.winner
        assert g.moves == e.moves
        assert g.total_playouts == e.total_playouts
        assert len(g.examples) == len(e.examples)
        for ge, ee in zip(g.examples, e.examples):
            np.testing.assert_array_equal(ge.planes, ee.planes)
            np.testing.assert_array_equal(ge.policy, ee.policy)
            assert ge.value == ee.value


@pytest.mark.parametrize("name", sorted(GAMES))
def test_two_worker_farm_reproduces_serial_run(name):
    factory, playouts, max_moves = GAMES[name]
    game = factory()
    expected = serial_transcripts(game, playouts, max_moves, SEED)
    with SelfPlayFarm(
        game,
        UniformEvaluator(),
        num_workers=2,
        num_playouts=playouts,
        max_moves=max_moves,
    ) as farm:
        got, stats = farm.run_round(seed_ladder(SEED, EPISODES))
    assert_transcripts_equal(got, expected)
    assert stats.games == EPISODES
    assert stats.worker_restarts == 0


def test_farm_round_is_repeatable_across_farms_and_rounds():
    """Same ladder -> same transcripts, run to run -- including a second
    round on the *same* farm, where the shared cache is already warm (a
    hit must be bit-identical to the evaluation it replaced)."""
    game = TicTacToe()
    with SelfPlayFarm(
        game, UniformEvaluator(), num_workers=2, num_playouts=10
    ) as farm:
        first, first_stats = farm.run_round(seed_ladder(SEED, EPISODES))
        second, second_stats = farm.run_round(seed_ladder(SEED, EPISODES))
    assert_transcripts_equal(second, first)
    # round 2 replays round 1's states against the warm shared cache
    assert second_stats.cache_hit_rate >= first_stats.cache_hit_rate


def test_count_and_seed_form_matches_explicit_ladder():
    game = TicTacToe()
    with SelfPlayFarm(
        game, UniformEvaluator(), num_workers=2, num_playouts=8
    ) as farm:
        implicit, _ = farm.run_round(3, seed=SEED)
    with SelfPlayFarm(
        game, UniformEvaluator(), num_workers=2, num_playouts=8
    ) as farm:
        explicit, _ = farm.run_round(seed_ladder(SEED, 3))
    assert_transcripts_equal(implicit, explicit)


def test_seed_ladder_is_deterministic_and_per_episode():
    a = seed_ladder(SEED, 5)
    b = seed_ladder(SEED, 5)
    for ga, gb in zip(a, b):
        np.testing.assert_array_equal(
            ga.integers(0, 1 << 30, 16), gb.integers(0, 1 << 30, 16)
        )
    # distinct rungs are distinct streams
    c = seed_ladder(SEED, 2)
    assert not np.array_equal(
        c[0].integers(0, 1 << 30, 16), c[1].integers(0, 1 << 30, 16)
    )


def test_more_workers_than_episodes_still_exact():
    """Scheduling degeneracy: idle workers must not perturb transcripts."""
    game = TicTacToe()
    expected = serial_transcripts(game, 10, None, SEED)[:2]
    with SelfPlayFarm(
        game, UniformEvaluator(), num_workers=4, num_playouts=10
    ) as farm:
        got, _ = farm.run_round(seed_ladder(SEED, 2))
    assert_transcripts_equal(got, expected)


def test_cache_disabled_farm_still_exact():
    game = TicTacToe()
    expected = serial_transcripts(game, 10, None, SEED)
    with SelfPlayFarm(
        game, UniformEvaluator(), num_workers=2, num_playouts=10,
        cache_capacity=0,
    ) as farm:
        got, stats = farm.run_round(seed_ladder(SEED, EPISODES))
    assert_transcripts_equal(got, expected)
    assert stats.cache_hits == 0 and stats.cache_misses == 0
