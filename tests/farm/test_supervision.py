"""Fault-injection suite: the farm survives SIGKILLed workers.

Worker processes are killed *from inside* a search scheme (deterministic
placement: mid-episode, after the first move completed), which exercises
the full supervision path -- sentinel detection, episode requeue under
the same generator, worker respawn with an epoch-fenced doorbell -- and
the shared-memory hygiene the :class:`~repro.farm.shm.SegmentRegistry`
guarantees: every segment the farm created is unlinked from ``/dev/shm``
on close, crash or no crash.

Marked ``slow``: each test forks a process tree and at least one test
deliberately burns the retry budget.
"""

import multiprocessing as mp
import os
import signal

import numpy as np
import pytest

from repro.farm import FarmError, SelfPlayFarm
from repro.games import TicTacToe
from repro.mcts.evaluation import UniformEvaluator
from repro.mcts.serial import SerialMCTS
from repro.training.selfplay import play_episode
from repro.utils.rng import seed_ladder

pytestmark = pytest.mark.slow

EPISODES = 6
PLAYOUTS = 10
SEED = 7


class KamikazeOnce:
    """Scheme wrapper that SIGKILLs its own process once, fleet-wide, on
    the second move of whatever episode gets there first.

    The kill flag is tested-and-set under its lock but the kill itself
    happens *outside* the critical section -- dying while holding a shared
    lock would wedge every later acquirer, which is a property of POSIX
    semaphores, not of the farm.
    """

    def __init__(self, inner, flag):
        self.inner = inner
        self.flag = flag
        self.calls = 0

    def get_action_prior(self, game, num_playouts):
        self.calls += 1
        if self.calls == 2:
            with self.flag.get_lock():
                shoot = self.flag.value == 0
                if shoot:
                    self.flag.value = 1
            if shoot:
                os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.get_action_prior(game, num_playouts)


class AlwaysKill:
    """Scheme whose every episode attempt dies immediately."""

    def __init__(self, inner):
        self.inner = inner

    def get_action_prior(self, game, num_playouts):
        os.kill(os.getpid(), signal.SIGKILL)


def make_kamikaze_farm(flag, **kwargs):
    return SelfPlayFarm(
        TicTacToe(),
        UniformEvaluator(),
        num_workers=2,
        num_playouts=PLAYOUTS,
        scheme_factory=lambda ev, rng: KamikazeOnce(SerialMCTS(ev, rng=rng), flag),
        **kwargs,
    )


class TestSigkillRequeue:
    def test_killed_worker_is_requeued_and_round_completes(self):
        flag = mp.get_context("fork").Value("i", 0)
        with make_kamikaze_farm(flag) as farm:
            results, stats = farm.run_round(seed_ladder(SEED, EPISODES))
        assert flag.value == 1  # the kill actually fired
        assert stats.games == EPISODES
        assert stats.worker_restarts == 1
        assert stats.episodes_requeued == 1

    def test_transcripts_survive_the_crash(self):
        """The requeued episode re-runs under the same generator, so the
        round is still transcript-identical to the serial reference."""
        flag = mp.get_context("fork").Value("i", 0)
        with make_kamikaze_farm(flag) as farm:
            results, _ = farm.run_round(seed_ladder(SEED, EPISODES))
        for got, rng in zip(results, seed_ladder(SEED, EPISODES)):
            expected = play_episode(
                TicTacToe(),
                SerialMCTS(UniformEvaluator(), rng=rng),
                PLAYOUTS,
                rng=rng,
            )
            assert got.winner == expected.winner
            assert got.moves == expected.moves
            for ge, ee in zip(got.examples, expected.examples):
                np.testing.assert_array_equal(ge.policy, ee.policy)
                assert ge.value == ee.value

    def test_stats_stay_consistent_after_requeue(self):
        flag = mp.get_context("fork").Value("i", 0)
        with make_kamikaze_farm(flag) as farm:
            results, stats = farm.run_round(seed_ladder(SEED, EPISODES))
        assert stats.moves == sum(r.moves for r in results)
        assert stats.playouts == sum(r.total_playouts for r in results)
        assert stats.eval_requests > 0
        assert stats.eval_batches > 0
        # every served request was a cache miss first; a killed worker may
        # count a miss whose doorbell never lands, never the reverse
        assert stats.eval_requests <= stats.cache_misses
        assert stats.games_per_sec > 0


class TestSharedMemoryHygiene:
    def test_segments_unlinked_on_close(self):
        farm = SelfPlayFarm(
            TicTacToe(), UniformEvaluator(), num_workers=2, num_playouts=8
        )
        names = farm.registry.names()
        assert names  # slabs + cache actually live in /dev/shm
        for name in names:
            assert os.path.exists(f"/dev/shm/{name}")
        farm.run_round(seed_ladder(SEED, 2))
        farm.close()
        leaked = [n for n in names if os.path.exists(f"/dev/shm/{n}")]
        assert not leaked, f"leaked shared-memory segments: {leaked}"
        farm.close()  # idempotent

    def test_segments_unlinked_even_after_worker_kills(self):
        flag = mp.get_context("fork").Value("i", 0)
        farm = make_kamikaze_farm(flag)
        names = farm.registry.names()
        try:
            farm.run_round(seed_ladder(SEED, EPISODES))
        finally:
            farm.close()
        leaked = [n for n in names if os.path.exists(f"/dev/shm/{n}")]
        assert not leaked, f"leaked shared-memory segments: {leaked}"


class TestRetryBudget:
    def test_budget_exhaustion_raises_farm_error(self):
        farm = SelfPlayFarm(
            TicTacToe(),
            UniformEvaluator(),
            num_workers=2,
            num_playouts=PLAYOUTS,
            max_retries=1,
            scheme_factory=lambda ev, rng: AlwaysKill(SerialMCTS(ev, rng=rng)),
        )
        names = farm.registry.names()
        try:
            with pytest.raises(FarmError, match="retry budget"):
                farm.run_round(seed_ladder(SEED, 3))
        finally:
            farm.close()
        leaked = [n for n in names if os.path.exists(f"/dev/shm/{n}")]
        assert not leaked, f"leaked shared-memory segments: {leaked}"

    def test_evaluator_death_is_fatal(self):
        farm = SelfPlayFarm(
            TicTacToe(), UniformEvaluator(), num_workers=2, num_playouts=8
        )
        try:
            farm.start()
            os.kill(farm.evaluator_pid, signal.SIGKILL)
            with pytest.raises(FarmError, match="evaluator"):
                farm.run_round(seed_ladder(SEED, 4))
        finally:
            farm.close()
