"""SharedEvaluationCache: striped shared-memory semantics, plus the
SegmentRegistry it allocates through."""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.farm import SegmentRegistry, SharedEvaluationCache, alloc_array
from repro.games import TicTacToe
from repro.mcts.evaluation import Evaluation, UniformEvaluator


def distinct_states(n):
    """n TicTacToe states with distinct canonical keys."""
    states = [TicTacToe()]
    frontier = [TicTacToe()]
    while len(states) < n:
        nxt = []
        for g in frontier:
            for a in g.legal_actions():
                child = g.copy()
                child.step(int(a))
                if child.is_terminal:
                    continue
                states.append(child)
                nxt.append(child)
                if len(states) >= n:
                    return states[:n]
        frontier = nxt
    return states[:n]


def make_cache(**kwargs):
    game = TicTacToe()
    kwargs.setdefault("capacity", 64)
    kwargs.setdefault("stripes", 4)
    return SharedEvaluationCache(game.action_size, **kwargs)


class TestRoundTrip:
    def test_put_get_exact(self):
        cache = make_cache()
        game = TicTacToe()
        ev = UniformEvaluator().evaluate(game)
        assert cache.get(game) is None
        cache.put(game, ev)
        got = cache.get(game)
        assert got is not None
        np.testing.assert_array_equal(got.priors, ev.priors)
        assert got.value == ev.value
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_distinct_states_do_not_collide(self):
        cache = make_cache(capacity=256)
        states = distinct_states(40)
        for i, g in enumerate(states):
            cache.put(g, Evaluation(priors=np.full(9, float(i)), value=float(i)))
        for i, g in enumerate(states):
            got = cache.get(g)
            assert got is not None
            assert got.value == float(i)
            np.testing.assert_array_equal(got.priors, np.full(9, float(i)))

    def test_refresh_in_place(self):
        cache = make_cache()
        game = TicTacToe()
        cache.put(game, Evaluation(priors=np.zeros(9), value=0.0))
        cache.put(game, Evaluation(priors=np.ones(9), value=1.0))
        got = cache.get(game)
        assert got.value == 1.0
        assert len(cache) == 1

    def test_priors_shape_validated(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.put(TicTacToe(), Evaluation(priors=np.zeros(5), value=0.0))


class TestEvictionAndClear:
    def test_overwrite_eviction_respects_capacity(self):
        cache = make_cache(capacity=8, stripes=2)
        states = distinct_states(40)
        for i, g in enumerate(states):
            cache.put(g, Evaluation(priors=np.full(9, float(i)), value=float(i)))
        assert len(cache) <= cache.capacity
        assert cache.evictions > 0
        # survivors still return their own record, never someone else's
        for i, g in enumerate(states):
            got = cache.get(g)
            if got is not None:
                assert got.value == float(i)

    def test_clear_drops_entries_keeps_counters(self):
        cache = make_cache()
        game = TicTacToe()
        cache.put(game, UniformEvaluator().evaluate(game))
        cache.get(game)
        hits_before = cache.hits
        cache.clear()
        assert len(cache) == 0
        assert cache.get(game) is None
        assert cache.hits == hits_before

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SharedEvaluationCache(0)
        with pytest.raises(ValueError):
            SharedEvaluationCache(9, capacity=0)
        with pytest.raises(ValueError):
            SharedEvaluationCache(9, stripes=0)


def _insert_worker(cache, states, value_base):
    for i, g in enumerate(states):
        cache.put(g, Evaluation(priors=np.full(9, value_base + i), value=value_base + i))


class TestCrossProcess:
    def test_concurrent_inserts_from_forked_processes(self):
        ctx = mp.get_context("fork")
        cache = make_cache(capacity=512, stripes=8)
        states = distinct_states(30)
        procs = [
            ctx.Process(target=_insert_worker, args=(cache, states[i::3], 100.0 * i))
            for i in range(3)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        for i, g in enumerate(states):
            got = cache.get(g)
            assert got is not None
            expected = 100.0 * (i % 3) + i // 3
            assert got.value == expected


class TestSegmentRegistry:
    def test_alloc_and_unlink(self):
        registry = SegmentRegistry()
        arr = alloc_array(registry, (4, 4), np.float64)
        arr[:] = 7.0
        names = registry.names()
        assert len(names) == 1
        assert os.path.exists(f"/dev/shm/{names[0]}")
        registry.close()
        assert not os.path.exists(f"/dev/shm/{names[0]}")
        registry.close()  # idempotent

    def test_close_tolerates_live_views(self):
        """Unlink must succeed even while a NumPy view pins the mapping
        (a SIGKILLed worker never drops its views)."""
        registry = SegmentRegistry()
        arr = alloc_array(registry, (16,), np.int64)
        name = registry.names()[0]
        registry.close()
        assert not os.path.exists(f"/dev/shm/{name}")
        arr[0] = 42  # the mapping itself is still valid locally
        assert arr[0] == 42

    def test_create_after_close_rejected(self):
        registry = SegmentRegistry()
        registry.close()
        with pytest.raises(RuntimeError):
            registry.create(64)
