"""SelfPlayFarm surface: validation, lifecycle, stats shape."""

import numpy as np
import pytest

from repro.farm import FarmStats, SelfPlayFarm
from repro.games import TicTacToe
from repro.mcts.evaluation import RandomRolloutEvaluator, UniformEvaluator
from repro.utils.rng import seed_ladder


class TestValidation:
    def test_rollout_evaluator_rejected(self):
        """Rollout evaluation needs to *step* live Game objects; the farm
        only ships encoded planes, so it must refuse up front rather than
        fail inside a worker."""
        with pytest.raises(TypeError, match="evaluate_encoded"):
            SelfPlayFarm(TicTacToe(), RandomRolloutEvaluator())

    def test_invalid_args(self):
        game, ev = TicTacToe(), UniformEvaluator()
        with pytest.raises(ValueError):
            SelfPlayFarm(game, ev, num_workers=0)
        with pytest.raises(ValueError):
            SelfPlayFarm(game, ev, num_playouts=0)
        with pytest.raises(ValueError):
            SelfPlayFarm(game, ev, max_retries=-1)

    def test_empty_round_rejected(self):
        with SelfPlayFarm(TicTacToe(), UniformEvaluator()) as farm:
            with pytest.raises(ValueError):
                farm.run_round([])


class TestLifecycle:
    def test_start_is_idempotent_and_close_is_final(self):
        farm = SelfPlayFarm(
            TicTacToe(), UniformEvaluator(), num_workers=2, num_playouts=6
        )
        farm.start()
        pids = farm.worker_pids
        farm.start()
        assert farm.worker_pids == pids
        farm.close()
        farm.close()
        with pytest.raises(RuntimeError):
            farm.start()

    def test_sync_weights_is_noop_before_start(self):
        farm = SelfPlayFarm(
            TicTacToe(), UniformEvaluator(), num_workers=1, num_playouts=4
        )
        farm.sync_weights({})  # forked evaluator will inherit anyway
        farm.close()


class TestFarmStats:
    def test_superset_of_serving_stats(self):
        from repro.serving import ServingStats

        assert issubclass(FarmStats, ServingStats)
        with SelfPlayFarm(
            TicTacToe(), UniformEvaluator(), num_workers=2, num_playouts=6
        ) as farm:
            _, stats = farm.run_round(seed_ladder(0, 3))
        d = stats.as_dict()
        for key in (
            "games", "moves", "playouts", "eval_requests", "eval_batches",
            "partial_flushes", "cache_hits", "cache_misses",
            "num_workers", "worker_restarts", "episodes_requeued",
            "sims_per_sec",
        ):
            assert key in d
        assert stats.sims_per_sec == pytest.approx(
            stats.playouts / stats.wall_time
        )
        assert stats.games == 3
        total = stats.cache_hits + stats.cache_misses
        assert stats.cache_hit_rate == pytest.approx(
            stats.cache_hits / total if total else 0.0
        )
        assert np.isfinite(stats.mean_batch_occupancy)
