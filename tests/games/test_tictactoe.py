"""Tests for the TicTacToe environment."""

import numpy as np
import pytest

from repro.games import TicTacToe


class TestRules:
    def test_row_win(self):
        g = TicTacToe()
        for a in [0, 3, 1, 4, 2]:
            g.step(a)
        assert g.winner == 1

    def test_column_win(self):
        g = TicTacToe()
        for a in [0, 1, 3, 2, 6]:
            g.step(a)
        assert g.winner == 1

    def test_diagonal_win(self):
        g = TicTacToe()
        for a in [0, 1, 4, 2, 8]:
            g.step(a)
        assert g.winner == 1

    def test_o_wins(self):
        g = TicTacToe()
        for a in [0, 3, 1, 4, 8, 5]:
            g.step(a)
        assert g.winner == -1

    def test_draw(self):
        g = TicTacToe()
        for a in [0, 4, 8, 1, 7, 6, 2, 5, 3]:
            g.step(a)
        assert g.is_terminal
        assert g.winner == 0

    def test_illegal_moves(self):
        g = TicTacToe()
        g.step(4)
        with pytest.raises(ValueError):
            g.step(4)
        with pytest.raises(ValueError):
            g.step(9)

    def test_no_moves_after_terminal(self):
        g = TicTacToe()
        for a in [0, 3, 1, 4, 2]:
            g.step(a)
        with pytest.raises(ValueError):
            g.step(5)


class TestInterface:
    def test_shapes(self):
        g = TicTacToe()
        assert g.board_shape == (3, 3)
        assert g.action_size == 9
        assert g.encode().shape == (4, 3, 3)

    def test_copy_independence(self):
        g = TicTacToe()
        g.step(0)
        c = g.copy()
        c.step(1)
        assert g.cells[1] == 0

    def test_terminal_value(self):
        g = TicTacToe()
        for a in [0, 3, 1, 4, 2]:
            g.step(a)
        assert g.terminal_value == -1.0  # O to move after X won

    def test_symmetry_orbit(self):
        g = TicTacToe()
        orbit = g.symmetries(g.encode(), np.full(9, 1 / 9))
        assert len(orbit) == 8

    def test_encoding_matches_gomoku_convention(self):
        from repro.games import Gomoku

        t = TicTacToe()
        gm = Gomoku(3, 3)
        for a in (4, 0, 8):
            t.step(a)
            gm.step(a)
        assert np.allclose(t.encode(), gm.encode())


class TestCrossImplementation:
    """TicTacToe vs Gomoku(3,3): independent implementations, same game."""

    def test_random_playthroughs_agree(self):
        from repro.games import Gomoku

        rng = np.random.default_rng(0)
        for trial in range(30):
            t = TicTacToe()
            gm = Gomoku(3, 3)
            while not t.is_terminal:
                legal_t = t.legal_actions()
                legal_g = gm.legal_actions()
                assert np.array_equal(np.sort(legal_t), np.sort(legal_g))
                a = int(rng.choice(legal_t))
                t.step(a)
                gm.step(a)
            assert gm.is_terminal
            assert t.winner == gm.winner
