"""Tests for the synthetic profiling game (Section 4.2)."""

import numpy as np
import pytest

from repro.games import SyntheticTreeGame


class TestStructure:
    def test_uniform_fanout(self):
        g = SyntheticTreeGame(fanout=5, depth_limit=4)
        assert g.action_size == 5
        assert len(g.legal_actions()) == 5
        g.step(2)
        assert len(g.legal_actions()) == 5

    def test_terminates_at_depth_limit(self):
        g = SyntheticTreeGame(fanout=3, depth_limit=4)
        for _ in range(4):
            assert not g.is_terminal
            g.step(0)
        assert g.is_terminal
        assert g.winner is not None

    def test_step_after_terminal_rejected(self):
        g = SyntheticTreeGame(fanout=2, depth_limit=1)
        g.step(0)
        with pytest.raises(ValueError):
            g.step(0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SyntheticTreeGame(fanout=0)
        with pytest.raises(ValueError):
            SyntheticTreeGame(depth_limit=0)


class TestDeterminism:
    def test_same_path_same_outcome(self):
        a = SyntheticTreeGame(fanout=3, depth_limit=5, seed=1)
        b = SyntheticTreeGame(fanout=3, depth_limit=5, seed=1)
        for move in [0, 2, 1, 2, 0]:
            a.step(move)
            b.step(move)
        assert a.winner == b.winner

    def test_different_paths_vary(self):
        outcomes = set()
        for first in range(4):
            g = SyntheticTreeGame(fanout=4, depth_limit=5, seed=0)
            g.step(first)
            for _ in range(4):
                g.step(0)
            outcomes.add(g.winner)
        assert len(outcomes) > 1  # outcome depends on the path

    def test_seed_perturbs_outcomes(self):
        wins = []
        for seed in range(20):
            g = SyntheticTreeGame(fanout=2, depth_limit=3, seed=seed)
            for _ in range(3):
                g.step(0)
            wins.append(g.winner)
        assert len(set(wins)) > 1

    def test_encode_deterministic(self):
        a = SyntheticTreeGame(fanout=2, depth_limit=4, board_size=4, seed=3)
        b = SyntheticTreeGame(fanout=2, depth_limit=4, board_size=4, seed=3)
        a.step(1)
        b.step(1)
        assert np.allclose(a.encode(), b.encode())

    def test_copy_preserves_hash_state(self):
        g = SyntheticTreeGame(fanout=2, depth_limit=4, seed=5)
        g.step(1)
        c = g.copy()
        for m in (0, 1, 0):
            g.step(m)
            c.step(m)
        assert g.winner == c.winner


class TestOutcomeDistribution:
    def test_roughly_balanced(self):
        """~45/45/10 win/loss/draw split over many random paths."""
        rng = np.random.default_rng(0)
        results = {1: 0, -1: 0, 0: 0}
        for seed in range(300):
            g = SyntheticTreeGame(fanout=3, depth_limit=4, seed=seed)
            while not g.is_terminal:
                g.step(int(rng.integers(3)))
            results[g.winner] += 1
        assert results[1] > 80
        assert results[-1] > 80
        assert results[0] > 5
