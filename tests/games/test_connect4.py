"""Tests for the Connect-Four environment."""

import numpy as np
import pytest

from repro.games import ConnectFour


class TestGravity:
    def test_stones_stack(self):
        g = ConnectFour()
        g.step(3)
        g.step(3)
        assert g.board[0, 3] == 1
        assert g.board[1, 3] == -1
        assert g.heights[3] == 2

    def test_full_column_rejected(self):
        g = ConnectFour(rows=4, cols=4)
        for _ in range(4):
            g.step(0)
        with pytest.raises(ValueError):
            g.step(0)

    def test_full_column_not_legal(self):
        g = ConnectFour(rows=4, cols=5)
        for _ in range(4):
            g.step(2)
        assert 2 not in g.legal_actions()


class TestWins:
    def test_vertical(self):
        g = ConnectFour()
        for a in [0, 1, 0, 1, 0, 1, 0]:
            g.step(a)
        assert g.winner == 1

    def test_horizontal(self):
        g = ConnectFour()
        for a in [0, 0, 1, 1, 2, 2, 3]:
            g.step(a)
        assert g.winner == 1

    def test_diagonal(self):
        g = ConnectFour()
        # build a / diagonal for X at (0,0),(1,1),(2,2),(3,3)
        moves = [0, 1, 1, 2, 2, 3, 2, 3, 3, 6, 3]
        for a in moves:
            g.step(a)
        assert g.winner == 1

    def test_draw(self):
        g = ConnectFour(rows=4, cols=4, n_in_row=4)
        # fills the board with rows X O X O / X O X O / O X O X / O X O X
        # and columns X X O O etc. -- no 4-line anywhere
        for a in [0, 1, 0, 1, 2, 3, 2, 3, 1, 0, 1, 0, 3, 2, 3, 2]:
            g.step(a)
        assert g.is_terminal
        assert g.winner == 0


class TestInterface:
    def test_action_space_is_columns(self):
        g = ConnectFour()
        assert g.action_size == 7
        assert g.board_shape == (6, 7)

    def test_encoding_shape(self):
        assert ConnectFour().encode().shape == (4, 6, 7)

    def test_last_move_plane(self):
        g = ConnectFour()
        g.step(4)
        planes = g.encode()
        assert planes[2][0, 4] == 1.0

    def test_copy_independence(self):
        g = ConnectFour()
        g.step(0)
        c = g.copy()
        c.step(0)
        assert g.heights[0] == 1
        assert c.heights[0] == 2

    def test_mirror_symmetry_only(self):
        g = ConnectFour()
        pol = np.zeros(7)
        pol[0] = 1.0
        orbit = g.symmetries(g.encode(), pol)
        assert len(orbit) == 2
        _, mirrored = orbit[1]
        assert mirrored[6] == 1.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ConnectFour(rows=2, cols=2, n_in_row=4)

    def test_render_shows_column_indices(self):
        text = ConnectFour().render()
        assert "0 1 2 3 4 5 6" in text
