"""Tests for the Gomoku environment (the paper's benchmark game)."""

import numpy as np
import pytest

from repro.games import Gomoku


class TestConstruction:
    def test_paper_configuration(self):
        g = Gomoku()  # defaults are the paper's 15x15, five-in-a-row
        assert g.board_shape == (15, 15)
        assert g.action_size == 225
        assert g.n_in_row == 5

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Gomoku(size=2)
        with pytest.raises(ValueError):
            Gomoku(size=5, n_in_row=6)
        with pytest.raises(ValueError):
            Gomoku(size=5, n_in_row=2)


class TestRules:
    def test_players_alternate(self):
        g = Gomoku(6, 4)
        assert g.current_player == 1
        g.step(0)
        assert g.current_player == -1
        g.step(1)
        assert g.current_player == 1

    def test_occupied_cell_rejected(self):
        g = Gomoku(6, 4)
        g.step(7)
        with pytest.raises(ValueError):
            g.step(7)

    def test_out_of_range_rejected(self):
        g = Gomoku(6, 4)
        with pytest.raises(ValueError):
            g.step(36)
        with pytest.raises(ValueError):
            g.step(-1)

    def test_horizontal_win(self):
        g = Gomoku(6, 4)
        for a in [0, 6, 1, 7, 2, 8, 3]:  # X plays 0,1,2,3 on row 0
            g.step(a)
        assert g.winner == 1
        assert g.is_terminal

    def test_vertical_win(self):
        g = Gomoku(6, 4)
        for a in [0, 1, 6, 7, 12, 13, 18]:  # X: column 0
            g.step(a)
        assert g.winner == 1

    def test_diagonal_win(self):
        g = Gomoku(6, 4)
        for a in [0, 1, 7, 2, 14, 3, 21]:  # X: 0,7,14,21 = main diagonal
            g.step(a)
        assert g.winner == 1

    def test_anti_diagonal_win(self):
        g = Gomoku(6, 4)
        for a in [3, 0, 8, 1, 13, 2, 18]:  # X: 3,8,13,18
            g.step(a)
        assert g.winner == 1

    def test_second_player_can_win(self):
        g = Gomoku(6, 4)
        for a in [0, 30, 1, 31, 2, 32, 35, 33]:  # O plays 30,31,32,33
            g.step(a)
        assert g.winner == -1

    def test_win_in_middle_of_line(self):
        """Completing a line from the middle (not the end) must count."""
        g = Gomoku(6, 4)
        # X places 0, 1, 3 then fills the gap at 2
        for a in [0, 30, 1, 31, 3, 32, 2]:
            g.step(a)
        assert g.winner == 1

    def test_no_win_with_gap(self):
        g = Gomoku(6, 4)
        for a in [0, 30, 1, 31, 3, 32]:
            g.step(a)
        assert g.winner is None

    def test_draw_on_full_board(self):
        g = Gomoku(4, 4)
        # fill a 4x4 board in a pattern with no 4-in-a-row:
        # X O X O / X O X O / O X O X / O X O X
        order = [0, 1, 2, 3, 4, 5, 6, 7, 9, 8, 11, 10, 13, 12, 15, 14]
        for a in order:
            if g.is_terminal:
                break
            g.step(a)
        assert g.is_terminal
        assert g.winner == 0

    def test_moves_after_end_rejected(self):
        g = Gomoku(6, 4)
        for a in [0, 6, 1, 7, 2, 8, 3]:
            g.step(a)
        with pytest.raises(ValueError):
            g.step(20)

    def test_n_in_row_longer_than_needed(self):
        """More than n stones in a row still wins (overline allowed)."""
        g = Gomoku(7, 4)
        # X: 0,1,2,4 then plays 3, making five contiguous on row 0;
        # O's replies are scattered so O never lines up first.
        for a in [0, 14, 1, 20, 2, 26, 4, 40, 3]:
            g.step(a)
        assert g.winner == 1


class TestStateAccessors:
    def test_legal_actions_shrink(self):
        g = Gomoku(5, 4)
        assert len(g.legal_actions()) == 25
        g.step(12)
        legal = g.legal_actions()
        assert len(legal) == 24
        assert 12 not in legal

    def test_terminal_value_perspective(self):
        g = Gomoku(6, 4)
        for a in [0, 6, 1, 7, 2, 8, 3]:
            g.step(a)
        # X (player 1) won; it is now O's turn, so mover-perspective is -1
        assert g.current_player == -1
        assert g.terminal_value == -1.0

    def test_terminal_value_requires_terminal(self):
        with pytest.raises(ValueError):
            _ = Gomoku(6, 4).terminal_value

    def test_copy_independence(self):
        g = Gomoku(6, 4)
        g.step(0)
        c = g.copy()
        c.step(1)
        assert g.board[0, 1] == 0
        assert g.move_count == 1
        assert c.move_count == 2

    def test_legal_mask(self):
        g = Gomoku(5, 4)
        g.step(3)
        mask = g.legal_mask()
        assert mask.sum() == 24
        assert not mask[3]


class TestEncoding:
    def test_plane_shapes(self):
        g = Gomoku(6, 4)
        assert g.encode().shape == (4, 6, 6)

    def test_perspective_flips(self):
        g = Gomoku(6, 4)
        g.step(0)
        planes = g.encode()  # O to move: plane 0 = O stones (none)
        assert planes[0].sum() == 0
        assert planes[1].sum() == 1
        assert planes[1][0, 0] == 1

    def test_last_move_plane(self):
        g = Gomoku(6, 4)
        g.step(8)
        planes = g.encode()
        assert planes[2][1, 2] == 1
        assert planes[2].sum() == 1

    def test_colour_plane(self):
        g = Gomoku(6, 4)
        assert np.all(g.encode()[3] == 1.0)  # first player to move
        g.step(0)
        assert np.all(g.encode()[3] == 0.0)

    def test_empty_board_no_last_move(self):
        assert Gomoku(6, 4).encode()[2].sum() == 0


class TestSymmetries:
    def test_orbit_size_is_8(self):
        g = Gomoku(5, 4)
        orbit = g.symmetries(g.encode(), np.full(25, 1 / 25))
        assert len(orbit) == 8

    def test_policy_mass_preserved(self):
        g = Gomoku(5, 4)
        rng = np.random.default_rng(0)
        pol = rng.dirichlet(np.ones(25))
        for planes, p in g.symmetries(g.encode(), pol):
            assert np.isclose(p.sum(), 1.0)
            assert planes.shape == (4, 5, 5)

    def test_rotation_moves_corner_policy(self):
        g = Gomoku(3, 3)
        pol = np.zeros(9)
        pol[0] = 1.0  # top-left corner
        orbit = g.symmetries(g.encode(), pol)
        corners = {0, 2, 6, 8}
        for _, p in orbit:
            assert int(np.argmax(p)) in corners

    def test_stone_and_policy_transform_together(self):
        g = Gomoku(3, 3)
        g.step(0)  # stone at top-left
        pol = np.zeros(9)
        pol[0] = 1.0
        for planes, p in g.symmetries(g.encode(), pol):
            stone_at = np.argwhere(planes[1] == 1)[0]
            pol_at = divmod(int(np.argmax(p)), 3)
            assert tuple(stone_at) == pol_at


class TestRender:
    def test_render_contains_stones(self):
        g = Gomoku(5, 4)
        g.step(0)
        g.step(1)
        text = g.render()
        assert "X" in text and "O" in text
