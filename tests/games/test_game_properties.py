"""Property-based tests: invariants every Game implementation must hold."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games import ConnectFour, Gomoku, SyntheticTreeGame, TicTacToe

GAME_FACTORIES = [
    ("tictactoe", TicTacToe),
    ("gomoku6", lambda: Gomoku(6, 4)),
    ("connect4", ConnectFour),
    ("synthetic", lambda: SyntheticTreeGame(fanout=4, depth_limit=6, board_size=4)),
]


def random_playthrough(factory, seed, max_moves=200):
    """Play random legal moves; return the move-by-move snapshots."""
    rng = np.random.default_rng(seed)
    game = factory()
    snapshots = []
    for _ in range(max_moves):
        if game.is_terminal:
            break
        legal = game.legal_actions()
        snapshots.append((game.current_player, len(legal)))
        game.step(int(rng.choice(legal)))
    return game, snapshots


@pytest.mark.parametrize("name,factory", GAME_FACTORIES)
class TestUniversalInvariants:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_players_strictly_alternate(self, name, factory, seed):
        _, snapshots = random_playthrough(factory, seed)
        movers = [m for m, _ in snapshots]
        for a, b in zip(movers, movers[1:]):
            assert a == -b

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_games_terminate(self, name, factory, seed):
        game, _ = random_playthrough(factory, seed)
        assert game.is_terminal
        assert game.winner in (1, -1, 0)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_terminal_has_no_legal_actions(self, name, factory, seed):
        game, _ = random_playthrough(factory, seed)
        assert len(game.legal_actions()) == 0

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_encode_shape_and_dtype_stable(self, name, factory, seed):
        rng = np.random.default_rng(seed)
        game = factory()
        expected = (game.num_planes, *game.board_shape)
        while not game.is_terminal:
            planes = game.encode()
            assert planes.shape == expected
            assert np.all(np.isfinite(planes))
            game.step(int(rng.choice(game.legal_actions())))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_copy_semantics(self, name, factory, seed):
        """Stepping a copy never perturbs the original's observable state."""
        rng = np.random.default_rng(seed)
        game = factory()
        for _ in range(3):
            if game.is_terminal:
                break
            before = game.encode().copy()
            legal_before = game.legal_actions().copy()
            clone = game.copy()
            clone.step(int(rng.choice(clone.legal_actions())))
            assert np.allclose(game.encode(), before)
            assert np.array_equal(game.legal_actions(), legal_before)
            game.step(int(rng.choice(game.legal_actions())))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_legal_mask_consistent_with_legal_actions(self, name, factory, seed):
        rng = np.random.default_rng(seed)
        game = factory()
        while not game.is_terminal:
            mask = game.legal_mask()
            legal = game.legal_actions()
            assert mask.sum() == len(legal)
            assert np.all(mask[legal])
            game.step(int(rng.choice(legal)))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_symmetries_preserve_policy_mass(self, name, factory, seed):
        rng = np.random.default_rng(seed)
        game = factory()
        pol = rng.dirichlet(np.ones(game.action_size))
        for planes, p in game.symmetries(game.encode(), pol):
            assert np.isclose(p.sum(), 1.0)
            assert planes.shape == game.encode().shape

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_terminal_value_antisymmetric_with_winner(self, name, factory, seed):
        game, _ = random_playthrough(factory, seed)
        w = game.winner
        tv = game.terminal_value
        if w == 0:
            assert tv == 0.0
        elif w == game.current_player:
            assert tv == 1.0
        else:
            assert tv == -1.0
