"""Cross-module integration tests: the full system working together."""

import numpy as np
import pytest

from repro.games import Gomoku, TicTacToe, build_network_for
from repro.mcts import NetworkEvaluator, RandomRolloutEvaluator, SerialMCTS, UniformEvaluator
from repro.nn import SGD, AlphaZeroLoss
from repro.parallel import (
    LeafParallelMCTS,
    LocalTreeMCTS,
    RootParallelMCTS,
    SharedTreeMCTS,
)
from repro.perfmodel import DesignConfigurator, profile_virtual
from repro.parallel.base import SchemeName
from repro.simulator import LocalTreeSimulation, SharedTreeSimulation, paper_platform
from repro.training import Trainer, TrainingPipeline, VirtualClock

ALL_SCHEMES = [
    lambda ev, rng: SharedTreeMCTS(ev, num_workers=4, rng=rng),
    lambda ev, rng: LocalTreeMCTS(ev, num_workers=4, batch_size=2, rng=rng),
    lambda ev, rng: LeafParallelMCTS(ev, num_workers=4, rng=rng),
    lambda ev, rng: RootParallelMCTS(ev, num_workers=4, rng=rng),
]


class TestAllSchemesTactical:
    """Every parallel scheme must solve the same tactical position --
    the paper's program-template interchangeability, checked end to end."""

    @pytest.mark.parametrize("factory", ALL_SCHEMES)
    def test_finds_winning_move(self, factory):
        g = TicTacToe()
        for a in [0, 3, 1, 4]:  # X wins at 2
            g.step(a)
        with factory(RandomRolloutEvaluator(rng=0), 42) as scheme:
            prior = scheme.get_action_prior(g, 400)
        assert int(np.argmax(prior)) == 2, scheme.name

    @pytest.mark.parametrize("factory", ALL_SCHEMES)
    def test_network_evaluator_integration(self, factory):
        net = build_network_for(TicTacToe(), channels=(2, 4, 4), rng=0)
        with factory(NetworkEvaluator(net), 43) as scheme:
            prior = scheme.get_action_prior(TicTacToe(), 60)
        assert np.isclose(prior.sum(), 1.0)


class TestTrainingImprovesPlay:
    def test_trained_net_beats_untrained(self):
        """Short training on TicTacToe must beat an untrained opponent
        head-to-head (both using small serial searches)."""
        trained = build_network_for(TicTacToe(), channels=(4, 8, 8), rng=0)
        frozen = build_network_for(TicTacToe(), channels=(4, 8, 8), rng=0)
        scheme = SerialMCTS(NetworkEvaluator(trained), rng=1, dirichlet_epsilon=0.25)
        trainer = Trainer(
            trained, SGD(trained.parameters(), lr=0.05, momentum=0.9), AlphaZeroLoss(1e-4)
        )
        pipe = TrainingPipeline(
            TicTacToe(), scheme, trainer, num_playouts=25, sgd_iterations=6,
            batch_size=64, rng=2,
        )
        pipe.run(12)
        first = pipe.metrics.loss_history[0].total
        last = np.mean([p.total for p in pipe.metrics.loss_history[-6:]])
        assert last < first  # learning happened

        # head-to-head: trained vs untrained, alternate colours
        wins, losses = 0, 0
        rng = np.random.default_rng(3)
        for game_idx in range(6):
            g = TicTacToe()
            trained_engine = SerialMCTS(NetworkEvaluator(trained), rng=rng)
            frozen_engine = SerialMCTS(NetworkEvaluator(frozen), rng=rng)
            trained_is_x = game_idx % 2 == 0
            while not g.is_terminal:
                is_x_turn = g.current_player == 1
                engine = trained_engine if (is_x_turn == trained_is_x) else frozen_engine
                prior = engine.get_action_prior(g, 30)
                g.step(int(np.argmax(prior)))
            if g.winner == 0:
                continue
            trained_won = (g.winner == 1) == trained_is_x
            wins += trained_won
            losses += not trained_won
        assert wins >= losses  # trained agent at least holds its own


class TestAdaptiveWorkflowEndToEnd:
    def test_configure_then_instantiate_and_run(self):
        """Full Section-4.2 workflow: profile -> model -> configure ->
        instantiate the chosen real scheme -> search."""
        plat = paper_platform()
        prof = profile_virtual(Gomoku(9, 5), plat, num_playouts=200)
        cfg = DesignConfigurator(prof, plat.gpu).configure(num_workers=8, use_gpu=False)
        ev = UniformEvaluator()
        if cfg.scheme == SchemeName.SHARED_TREE:
            scheme = SharedTreeMCTS(ev, num_workers=8, rng=0)
        else:
            scheme = LocalTreeMCTS(ev, num_workers=8, rng=0)
        with scheme:
            prior = scheme.get_action_prior(Gomoku(9, 5), 100)
        assert np.isclose(prior.sum(), 1.0)

    def test_adaptive_never_worse_than_both_fixed(self):
        """The core paper claim, measured on the DES at several N."""
        plat = paper_platform()
        game = Gomoku(15, 5)
        ev = UniformEvaluator()
        prof = profile_virtual(game, plat, num_playouts=300)
        cfg = DesignConfigurator(prof, plat.gpu)
        for n in (4, 16, 64):
            choice = cfg.configure_cpu(n)
            rs = SharedTreeSimulation(game, ev, plat, num_workers=n).run(300)
            rl = LocalTreeSimulation(game, ev, plat, num_workers=n).run(300)
            measured = {
                SchemeName.SHARED_TREE: rs.per_iteration,
                SchemeName.LOCAL_TREE: rl.per_iteration,
            }
            adaptive = measured[choice.scheme]
            assert adaptive <= min(measured.values()) * 1.05  # within 5%


class TestSimulatedVsRealSchemesAgree:
    def test_visit_distributions_similar(self):
        """The DES executes the same algorithm as the threaded code: root
        visit distributions over the same budget should be close."""
        game = TicTacToe()
        ev = UniformEvaluator()
        plat = paper_platform()
        sim = SharedTreeSimulation(game, ev, plat, num_workers=4).run(400)
        sim_prior = np.zeros(9)
        for a, c in sim.root.children.items():
            sim_prior[a] = c.visit_count
        sim_prior /= sim_prior.sum()
        with SharedTreeMCTS(ev, num_workers=4, rng=0) as scheme:
            real_prior = scheme.get_action_prior(game, 400)
        tv = 0.5 * np.abs(sim_prior - real_prior).sum()
        assert tv < 0.25
