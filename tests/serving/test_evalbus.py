"""Cross-session evaluation bus: fusion, urgency, degradation, wiring.

The bus is the gateway's convergence point for leaf evaluations from
*all* live sessions, so these tests cover its three promises separately:

- **Fusion** -- leaves from distinct searches fuse into one accelerator
  batch once every busy search has one pending (the busy-headcount
  threshold), with the single armed linger window as the stall bound.
- **Urgency** -- a session inside its ``deadline_lead_ms`` horizon never
  lingers, and when the backlog exceeds ``max_batch`` the closest
  deadlines ship first.
- **Degradation** -- with the bus off the gateway serves exactly as
  before (per-session evaluation), and with it on, generous deadlines
  produce the identical game transcript (batched rows are value-equal
  to singleton evaluations).
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.games import TicTacToe
from repro.mcts import SerialMCTS, UniformEvaluator
from repro.mcts.budget import BudgetClock, SearchBudget, active_budget_snapshot
from repro.serving import BusEvaluator, EvaluationBus, MatchGateway
from repro.serving.evalbus import BusClosed
from repro.utils.clock import VirtualClock


class RecordingEvaluator(UniformEvaluator):
    """Uniform evaluator that records every batch it is handed."""

    def __init__(self, delay: float = 0.0) -> None:
        self.delay = delay
        self.batches: list[list] = []
        self._lock = threading.Lock()

    def evaluate_batch(self, games):
        with self._lock:
            self.batches.append(list(games))
        if self.delay:
            time.sleep(self.delay)
        return super().evaluate_batch(games)


class TestFusion:
    def test_threshold_flush_at_busy_headcount(self):
        """N busy searches, N submissions -> exactly one fused batch."""
        rec = RecordingEvaluator()
        bus = EvaluationBus(rec, linger=0.5)  # linger generous: must not fire
        for _ in range(4):
            bus.begin_search()
        results: list = []
        lock = threading.Lock()

        def worker():
            ev = bus.evaluate(TicTacToe())
            with lock:
                results.append(ev)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        t0 = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads)
        assert time.monotonic() - t0 < 0.4, "waited for linger, not threshold"
        assert len(results) == 4
        assert [len(b) for b in rec.batches] == [4]
        stats = bus.stats()
        assert stats.threshold_flushes == 1
        assert stats.mean_occupancy == 4.0
        bus.close()

    def test_straggler_resolves_via_linger(self):
        """Fewer pending leaves than busy searches: only the linger window
        may flush them (the cache-hit / select-phase stall bound)."""
        bus = EvaluationBus(UniformEvaluator(), linger=0.01)
        bus.begin_search()
        bus.begin_search()  # second search busy but never submits
        ev = bus.evaluate(TicTacToe())
        assert ev is not None
        assert bus.stats().linger_flushes == 1
        bus.close()

    def test_end_search_lowers_threshold_and_flushes(self):
        """A search finishing mid-window releases waiters whose backlog
        now meets the lowered headcount."""
        rec = RecordingEvaluator()
        bus = EvaluationBus(rec, linger=10.0)  # effectively never
        bus.begin_search()
        bus.begin_search()
        done = threading.Event()

        def worker():
            bus.evaluate(TicTacToe())
            done.set()

        t = threading.Thread(target=worker)
        t.start()
        time.sleep(0.05)
        assert not done.is_set()  # 1 pending < 2 busy: still lingering
        bus.end_search()  # headcount drops to 1 = backlog
        assert done.wait(timeout=5.0)
        t.join(timeout=5.0)
        bus.end_search()
        bus.close()

    def test_evaluate_batch_bypasses_accumulation(self):
        rec = RecordingEvaluator()
        bus = EvaluationBus(rec, linger=0.5)
        facade = BusEvaluator(bus)
        games = [TicTacToe() for _ in range(3)]
        out = facade.evaluate_batch(games)
        assert len(out) == 3
        assert [len(b) for b in rec.batches] == [3]
        assert bus.stats().requests == 0  # never entered the bus
        bus.close()

    def test_closed_bus_refuses_and_drains(self):
        bus = EvaluationBus(UniformEvaluator(), linger=0.01)
        bus.close()
        bus.close()  # idempotent
        with pytest.raises(BusClosed):
            bus.evaluate(TicTacToe())


class TestUrgency:
    def _snapshot(self, clock: VirtualClock, remaining_ms: float):
        budget = SearchBudget(time_budget_ms=remaining_ms, clock=clock)
        return BudgetClock(budget, None).snapshot()

    def test_deadline_inside_lead_flushes_immediately(self):
        """A leaf whose session has <= deadline_lead_ms left must not
        linger, however generous the window."""
        clock = VirtualClock()
        rec = RecordingEvaluator()
        bus = EvaluationBus(
            rec, linger=10.0, deadline_lead_ms=5.0, clock=clock
        )
        bus.begin_search()
        bus.begin_search()  # threshold 2: a lone submit cannot flush by count
        ev = bus.evaluate(TicTacToe(), snapshot=self._snapshot(clock, 3.0))
        assert ev is not None
        stats = bus.stats()
        assert stats.deadline_flushes == 1
        assert stats.linger_flushes == 0
        bus.close()

    def test_urgent_sessions_ship_first_when_overloaded(self):
        """Backlog beyond max_batch: the fused batch is the most-urgent
        slice, not arrival order."""
        clock = VirtualClock()
        rec = RecordingEvaluator()
        bus = EvaluationBus(
            rec, max_batch=4, linger=10.0, deadline_lead_ms=0.0, clock=clock
        )
        # inline mode (virtual clock): submissions accumulate until an
        # explicit flush, so ordering is fully deterministic
        lax = TicTacToe()
        mid = TicTacToe()
        hot = TicTacToe()
        bus.begin_search()
        bus.begin_search()
        bus.begin_search()
        bus.begin_search()  # threshold 4 > 3 pending: no count flush
        f_lax = bus.submit(lax, snapshot=self._snapshot(clock, 500.0))
        f_mid = bus.submit(mid, snapshot=self._snapshot(clock, 80.0))
        f_hot = bus.submit(hot, snapshot=self._snapshot(clock, 20.0))
        # the device cap drops below the backlog (in production the
        # backlog overruns max_batch by accumulating during an in-flight
        # evaluation); the fused batch must be the most-urgent slice
        bus.max_batch = 2
        bus.flush()
        # the most urgent two ship together (batch keeps arrival order
        # internally -- composition, not position, is what urgency buys)
        assert {id(g) for g in rec.batches[0]} == {id(hot), id(mid)}
        assert f_hot.done() and f_mid.done() and not f_lax.done()
        bus.flush()
        assert [id(g) for g in rec.batches[1]] == [id(lax)]
        assert f_lax.done()
        bus.close()

    def test_budget_seam_publishes_inside_search(self):
        """SerialMCTS under a deadline budget publishes its clock to the
        evaluator seam; the probe sees a live remaining_ms."""
        seen: list = []

        class Probe(UniformEvaluator):
            def evaluate(self, game):
                seen.append(active_budget_snapshot())
                return super().evaluate(game)

        agent = SerialMCTS(Probe(), rng=0)
        agent.search(
            TicTacToe(),
            SearchBudget(num_playouts=8, time_budget_ms=10_000.0),
        )
        assert seen, "no leaf evaluations happened"
        assert all(s is not None for s in seen)
        assert all(0.0 < s.remaining_ms <= 10_000.0 for s in seen)
        # count-only budgets publish nothing: no urgency to report
        seen.clear()
        agent.search(TicTacToe(), 8)
        assert seen and all(s is None for s in seen)


class TestGatewayWiring:
    def test_thread_backend_defaults_bus_on(self):
        async def run():
            async with MatchGateway(
                UniformEvaluator(), backend="thread", workers=2, num_playouts=8
            ) as gw:
                session = await gw.create_session("tictactoe")
                await gw.play_move(session)
                return gw.stats()

        stats = asyncio.run(run())
        assert stats.bus_enabled
        assert stats.bus_requests > 0
        assert stats.as_dict()["bus_enabled"] is True

    def test_evalbus_off_degrades_to_per_session(self):
        async def run():
            async with MatchGateway(
                UniformEvaluator(),
                backend="thread",
                workers=2,
                num_playouts=8,
                evalbus=False,
            ) as gw:
                session = await gw.create_session("tictactoe")
                reply = await gw.play_move(session)
                return reply, gw.stats()

        reply, stats = asyncio.run(run())
        assert reply.engine_action is not None
        assert not stats.bus_enabled
        assert stats.bus_requests == 0

    def test_process_backend_rejects_explicit_bus(self):
        with pytest.raises(ValueError, match="thread-backend"):
            MatchGateway(
                UniformEvaluator(), backend="process", evalbus=True
            )

    def test_bus_on_off_transcripts_identical_under_generous_deadline(self):
        """Same seed, generous deadline: the bus must not change a single
        move (batched evaluation rows are value-equal to singletons, and
        deadline checks read the clock without consuming RNG)."""

        async def transcript(evalbus: bool):
            moves = []
            async with MatchGateway(
                UniformEvaluator(),
                backend="thread",
                workers=2,
                deadline_ms=10_000.0,
                num_playouts=24,
                seed=7,
                evalbus=evalbus,
            ) as gw:
                session = await gw.create_session("tictactoe")
                done = False
                while not done:
                    reply = await gw.play_move(session)
                    moves.append(reply.engine_action)
                    done = reply.done
            return moves

        on = asyncio.run(transcript(True))
        off = asyncio.run(transcript(False))
        assert on == off

    def test_concurrent_sessions_fuse_across_the_bus(self):
        """The tentpole end to end: concurrent sessions' leaves actually
        share batches (occupancy > 1 is impossible without cross-session
        fusion -- each session submits one leaf at a time)."""

        async def run():
            async with MatchGateway(
                UniformEvaluator(),
                backend="thread",
                workers=8,
                max_inflight=8,
                deadline_ms=2_000.0,
                num_playouts=32,
                seed=3,
                cache_capacity=1,  # force every leaf through the bus
                bus_linger_ms=4.0,
            ) as gw:
                sessions = [
                    await gw.create_session("tictactoe") for _ in range(8)
                ]
                await asyncio.gather(
                    *[gw.play_move(s) for s in sessions]
                )
                return gw.stats()

        stats = asyncio.run(run())
        assert stats.bus_enabled
        assert stats.bus_batches > 0
        assert stats.bus_occupancy > 1.5, stats.bus_occupancy
