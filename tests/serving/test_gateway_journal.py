"""Gateway move journal: crash recovery, graceful shutdown, shutdown
edge cases (bus close mid-search, journaling-off restarts)."""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.mcts import UniformEvaluator
from repro.serving import MatchGateway, SessionNotFound
from repro.serving.evalbus import BusClosed
from repro.storage import read_journal


def make_gateway(**kwargs) -> MatchGateway:
    defaults = dict(
        backend="thread", workers=2, deadline_ms=200.0, num_playouts=16, seed=0
    )
    defaults.update(kwargs)
    return MatchGateway(UniformEvaluator(), **defaults)


def journaling_gateway(tmp_path, **kwargs):
    kwargs.setdefault("journal_dir", tmp_path / "journal")
    kwargs.setdefault("journal_fsync", "per-move")
    return make_gateway(**kwargs)


class TestCrashRecovery:
    def test_kill_recovers_every_session_at_exact_position(self, tmp_path):
        async def crash_phase():
            gw = await journaling_gateway(tmp_path).start()
            sids = [await gw.create_session("tictactoe") for _ in range(3)]
            for ply, sid in enumerate(sids):
                for _ in range(ply + 1):
                    await gw.play_move(sid)
            histories = {s: list(gw._sessions[s].history) for s in sids}
            # hard crash: no aclose, no flush -- per-move fsync means the
            # journal on disk is already complete
            return sids, histories

        async def recover_phase(sids, histories):
            gw = await journaling_gateway(tmp_path).start()
            try:
                stats = gw.stats()
                assert stats.journal_recovered == len(sids)
                assert stats.journal_unrecoverable == 0
                # original ids, exact histories
                for sid in sids:
                    assert list(gw._sessions[sid].history) == histories[sid]
                # recovered sessions keep serving, ids never collide
                fresh = await gw.create_session("tictactoe")
                assert fresh > max(sids)
                reply = await gw.play_move(sids[0])
                assert reply.engine_action is not None
            finally:
                await gw.aclose()

        sids, histories = asyncio.run(crash_phase())
        asyncio.run(recover_phase(sids, histories))

    def test_finished_sessions_are_not_resurrected(self, tmp_path):
        async def run():
            gw = await journaling_gateway(tmp_path).start()
            sid = await gw.create_session("tictactoe")
            while not (await gw.play_move(sid)).done:
                pass
            gw2 = await journaling_gateway(tmp_path).start()
            try:
                assert gw2.stats().journal_recovered == 0
                with pytest.raises(SessionNotFound):
                    await gw2.play_move(sid)
            finally:
                await gw2.aclose()
                await gw.aclose()

        asyncio.run(run())

    def test_torn_journal_tail_recovers_prefix(self, tmp_path):
        async def crash_phase():
            gw = await journaling_gateway(tmp_path).start()
            sid = await gw.create_session("tictactoe")
            await gw.play_move(sid)
            await gw.play_move(sid)
            return sid, list(gw._sessions[sid].history)

        async def recover_phase(sid, history):
            gw = await journaling_gateway(tmp_path).start()
            try:
                assert gw.stats().journal_recovered == 1
                got = list(gw._sessions[sid].history)
                # the torn final record (second move) is gone; everything
                # checksummed before it is intact
                assert got == history
            finally:
                await gw.aclose()

        sid, history = asyncio.run(crash_phase())
        journal = tmp_path / "journal"
        (seg,) = sorted(journal.glob("seg-*.wal"))
        data = seg.read_bytes()
        seg.write_bytes(data[:-9])  # crash mid-append of the last record
        before = read_journal(journal)
        assert before.truncated
        # replaying by hand: the final move record (one engine ply) is gone
        asyncio.run(recover_phase(sid, history[:-1]))

    def test_recovery_replays_legally_or_counts_unrecoverable(self, tmp_path):
        async def crash_phase():
            gw = await journaling_gateway(tmp_path).start()
            sid = await gw.create_session("tictactoe")
            await gw.play_move(sid)
            return sid

        sid = asyncio.run(crash_phase())
        # corrupt the *semantics* (an illegal duplicate action), leaving
        # checksums valid: recovery must refuse the session, not crash
        from repro.storage import SessionJournal

        journal = SessionJournal(tmp_path / "journal", fsync="per-move")
        journal.move(sid, None, [0, 0], 0, False, None)
        journal.close()

        async def recover_phase():
            gw = await journaling_gateway(tmp_path).start()
            try:
                stats = gw.stats()
                assert stats.journal_recovered == 0
                assert stats.journal_unrecoverable == 1
                assert sid not in gw._sessions
            finally:
                await gw.aclose()

        asyncio.run(recover_phase())


class TestGracefulShutdown:
    def test_export_plus_journal_shutdown_loses_nothing(self, tmp_path):
        """SIGTERM path: quiesce, export, snapshot -- even with fsync=off
        the shutdown flush makes every live session recoverable."""

        async def serve_phase():
            gw = await journaling_gateway(
                tmp_path, journal_fsync="off"
            ).start()
            sids = [await gw.create_session("tictactoe") for _ in range(4)]
            for sid in sids:
                await gw.play_move(sid)
            exported = await gw.export_sessions()
            assert gw.journal_shutdown(exported)
            await gw.aclose()
            return sids

        async def restart_phase(sids):
            gw = await journaling_gateway(tmp_path).start()
            try:
                assert gw.stats().journal_recovered == len(sids)
                for sid in sids:
                    assert len(gw._sessions[sid].history) == 1
            finally:
                await gw.aclose()

        sids = asyncio.run(serve_phase())
        asyncio.run(restart_phase(sids))

    def test_journal_off_restart_reports_sessions_cleanly(self, tmp_path):
        """Without a journal, a restart loses sessions -- the failure mode
        must be an immediate SessionNotFound, never a hang."""

        async def run():
            gw = await make_gateway().start()
            sid = await gw.create_session("tictactoe")
            await gw.play_move(sid)
            await gw.aclose()

            gw2 = await make_gateway().start()
            try:
                assert gw2.stats().journal_enabled is False
                with pytest.raises(SessionNotFound):
                    await asyncio.wait_for(gw2.play_move(sid), timeout=5.0)
            finally:
                await gw2.aclose()

        asyncio.run(run())

    def test_bus_close_during_inflight_search_surfaces_not_deadlocks(self):
        """Closing the evaluation bus with a search in flight must fail
        that move with a surfaced error, not leave it parked forever."""

        class Stall(UniformEvaluator):
            def evaluate(self, game):
                time.sleep(0.01)  # keep the search demonstrably in flight
                return super().evaluate(game)

        async def run():
            gw = MatchGateway(
                Stall(), backend="thread", workers=2,
                deadline_ms=10_000.0, num_playouts=4096, seed=0,
                evalbus=True, cache_capacity=1,  # every leaf hits the bus
            )
            await gw.start()
            sid = await gw.create_session("tictactoe")
            move = asyncio.ensure_future(gw.play_move(sid))
            deadline = time.monotonic() + 10.0
            while gw._bus.stats().requests == 0:
                assert time.monotonic() < deadline, "search never reached the bus"
                await asyncio.sleep(0.005)
            gw._bus.close()
            with pytest.raises(Exception) as info:
                await asyncio.wait_for(move, timeout=15.0)
            # the one failure mode this test exists to rule out
            assert not isinstance(info.value, asyncio.TimeoutError)
            await gw.aclose()

        asyncio.run(run())


CLI = [sys.executable, "-m", "repro", "serve", "--evaluator", "uniform",
       "--port", "0", "--deadline-ms", "100"]


def _spawn_serve(journal_dir):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.Popen(
        CLI + ["--journal-dir", str(journal_dir), "--journal-fsync",
               "per-move"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )


def _await_line(proc, needle, timeout=30.0):
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        if needle in line:
            return line
    raise AssertionError(f"{needle!r} not seen in: {''.join(lines)}")


@pytest.mark.slow
def test_kill_dash_nine_gateway_process_recovers_sessions(tmp_path):
    """The acceptance path end to end: SIGKILL a journaling `repro serve`
    process mid-session; a restart on the same journal dir re-admits the
    session at its exact position."""
    proc = _spawn_serve(tmp_path / "j")
    try:
        line = _await_line(proc, "listening on")
        port = int(line.rsplit(":", 1)[1].split()[0])

        async def play():
            from repro.serving import GatewayClient

            client = await GatewayClient.connect("127.0.0.1", port)
            sid = await client.new_match("tictactoe", None)
            for _ in range(2):
                await client.move(sid, deadline_ms=100)
            await client.aclose()
            return sid

        sid = asyncio.run(play())
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.communicate(timeout=30)

    proc2 = _spawn_serve(tmp_path / "j")
    try:
        line = _await_line(proc2, "recovered")
        assert "recovered 1 sessions" in line
    finally:
        proc2.send_signal(signal.SIGTERM)
        out, _ = proc2.communicate(timeout=30)
    assert "graceful shutdown" in out
