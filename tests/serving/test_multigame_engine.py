"""Multi-game engine: round semantics, stats accounting, serial parity."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.games import SyntheticTreeGame, TicTacToe, build_network_for
from repro.mcts.evaluation import NetworkEvaluator, UniformEvaluator
from repro.mcts.serial import SerialMCTS
from repro.nn import Adam, AlphaZeroLoss
from repro.serving import MultiGameSelfPlayEngine
from repro.training import Trainer, TrainingPipeline
from repro.training.selfplay import play_episode
from repro.utils.rng import new_rng, spawn_rngs


def make_engine(num_games=4, num_playouts=12, **kwargs):
    game = SyntheticTreeGame(fanout=4, depth_limit=6, board_size=5, seed=7)
    return MultiGameSelfPlayEngine(
        game, UniformEvaluator(), num_games=num_games,
        num_playouts=num_playouts, rng=0, **kwargs
    )


class TestPlayRound:
    def test_round_returns_one_episode_per_game(self):
        with make_engine(num_games=5) as engine:
            results, stats = engine.play_round()
        assert len(results) == 5
        assert stats.games == 5
        assert stats.moves == sum(r.moves for r in results)
        assert all(r.moves > 0 and r.examples for r in results)

    def test_stats_accounting_consistent(self):
        with make_engine(num_games=6) as engine:
            _, stats = engine.play_round()
        # every evaluation request either hit the cache or reached the queue
        assert stats.eval_requests == stats.cache_misses
        assert stats.cache_hits + stats.cache_misses >= stats.eval_requests
        assert stats.eval_batches > 0
        assert stats.mean_batch_occupancy == pytest.approx(
            stats.eval_requests / stats.eval_batches
        )
        assert stats.games_per_sec > 0
        d = stats.as_dict()
        assert d["games"] == 6 and d["cache_hit_rate"] >= 0.0

    def test_occupancy_exceeds_single_game(self):
        """The whole point: cross-game multiplexing fills batches past 1."""
        with make_engine(num_games=8, num_playouts=16) as engine:
            _, stats = engine.play_round()
        assert stats.mean_batch_occupancy > 1.5

    def test_stats_reset_between_rounds(self):
        with make_engine(num_games=3) as engine:
            _, first = engine.play_round()
            _, second = engine.play_round()
        # per-round deltas, not lifetime totals
        assert second.games == 3
        assert second.eval_requests < first.eval_requests + first.eval_requests + 1
        # the cache carries across rounds, so round 2 hits more
        assert second.cache_hit_rate >= first.cache_hit_rate

    def test_round_matches_sequential_episodes(self):
        """Program-template invariant at engine level: the concurrent round
        produces exactly the episodes a sequential loop over the same
        spawned seeds produces -- batching and caching change *where*
        evaluations run, never their results."""
        game = SyntheticTreeGame(fanout=4, depth_limit=6, board_size=5, seed=7)
        evaluator = UniformEvaluator()
        with MultiGameSelfPlayEngine(
            game, evaluator, num_games=4, num_playouts=10, rng=0
        ) as engine:
            results, _ = engine.play_round()

        reference_rngs = spawn_rngs(new_rng(0), 4)
        for got, game_rng in zip(results, reference_rngs):
            expected = play_episode(
                game, SerialMCTS(evaluator, rng=game_rng), 10, rng=game_rng
            )
            assert got.winner == expected.winner
            assert got.moves == expected.moves
            for ge, ee in zip(got.examples, expected.examples):
                np.testing.assert_array_equal(ge.policy, ee.policy)
                assert ge.value == ee.value

    def test_invalid_args(self):
        game = TicTacToe()
        with pytest.raises(ValueError):
            MultiGameSelfPlayEngine(game, UniformEvaluator(), num_games=0)
        with pytest.raises(ValueError):
            MultiGameSelfPlayEngine(game, UniformEvaluator(), num_playouts=0)
        with pytest.raises(ValueError):
            MultiGameSelfPlayEngine(game, UniformEvaluator(), backend="fiber")


class TestProcessBackend:
    """backend="process": the engine delegates rounds to a SelfPlayFarm
    behind the same play_round surface."""

    def test_round_matches_thread_backend(self):
        """Both backends spawn per-game seeds from the engine rng the same
        way, so with a deterministic evaluator they produce identical
        transcripts -- the engine-level scheme-equivalence invariant."""
        game = TicTacToe()
        with MultiGameSelfPlayEngine(
            game, UniformEvaluator(), num_games=4, num_playouts=10, rng=0
        ) as thread_engine:
            thread_results, _ = thread_engine.play_round()
        with MultiGameSelfPlayEngine(
            game, UniformEvaluator(), num_games=4, num_playouts=10, rng=0,
            backend="process", num_workers=2,
        ) as process_engine:
            process_results, process_stats = process_engine.play_round()
        for t, p in zip(thread_results, process_results):
            assert t.winner == p.winner and t.moves == p.moves
            for te, pe in zip(t.examples, p.examples):
                np.testing.assert_array_equal(te.policy, pe.policy)
        assert process_stats.num_workers == 2
        assert process_stats.worker_restarts == 0

    def test_stats_accounting_consistent(self):
        with MultiGameSelfPlayEngine(
            TicTacToe(), UniformEvaluator(), num_games=4, num_playouts=8,
            rng=0, backend="process", num_workers=2,
        ) as engine:
            results, stats = engine.play_round()
        assert stats.games == 4
        assert stats.moves == sum(r.moves for r in results)
        # every request the evaluator process served was a cache miss first
        assert stats.eval_requests == stats.cache_misses
        assert stats.eval_batches > 0
        assert stats.mean_batch_occupancy == pytest.approx(
            stats.eval_requests / stats.eval_batches
        )
        d = stats.as_dict()
        assert d["num_workers"] == 2 and d["sims_per_sec"] > 0

    def test_batch_size_rejected(self):
        """batch_size configures the in-process queue the process backend
        does not have; silently ignoring it would let the two backends
        diverge behind the same documented knob."""
        with pytest.raises(ValueError, match="batch_size"):
            MultiGameSelfPlayEngine(
                TicTacToe(), UniformEvaluator(), num_games=2,
                batch_size=8, backend="process",
            )

    def test_pipeline_integration_with_weight_sync(self):
        """Process-backend engine inside the training loop: SGD updates
        the parent's network, the engine must push the new weights into
        the forked evaluator process and clear the shared cache."""
        game = TicTacToe()
        net = build_network_for(game, channels=(2, 4, 4), rng=0)
        engine = MultiGameSelfPlayEngine(
            game, NetworkEvaluator(net), num_games=2, num_playouts=6, rng=1,
            backend="process", num_workers=2,
        )
        trainer = Trainer(net, Adam(net.parameters(), lr=1e-3), AlphaZeroLoss())
        pipeline = TrainingPipeline(
            game, None, trainer, num_playouts=6, sgd_iterations=1,
            batch_size=8, rng=2, engine=engine,
        )
        with engine:
            metrics = pipeline.run(2)
            assert len(engine.cache) == 0  # cleared after the SGD stage
        assert metrics.episodes == 4
        assert metrics.eval_requests > 0
        assert len(metrics.loss_history) == 2


def _hammer_counter(counter, n):
    for _ in range(n):
        counter.add(1)


class TestStatsAtomicityUnderProcessBackend:
    """PR-1 hardening follow-up: the serving counters stay exact when the
    mutators are *processes*, not threads."""

    def test_partial_flush_counter_survives_concurrent_processes(self):
        from repro.farm import FarmCounters

        ctx = mp.get_context("fork")
        counters = FarmCounters(ctx)
        procs = [
            ctx.Process(
                target=_hammer_counter, args=(counters.partial_flushes, 2000)
            )
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        # unsynchronised += across 4 processes loses updates; the atomic
        # counter must account for every single one
        assert counters.partial_flushes.value == 8000

    def test_atomic_counter_mixed_increments(self):
        from repro.farm import AtomicCounter

        ctx = mp.get_context("fork")
        counter = AtomicCounter(ctx)
        procs = [
            ctx.Process(target=_hammer_counter, args=(counter, 1500))
            for _ in range(3)
        ]
        for p in procs:
            p.start()
        counter.add(5)
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert counter.value == 3 * 1500 + 5


class TestPipelineIntegration:
    def test_pipeline_collects_rounds_and_serving_metrics(self):
        game = TicTacToe()
        net = build_network_for(game, channels=(2, 4, 4), rng=0)
        engine = MultiGameSelfPlayEngine(
            game, NetworkEvaluator(net), num_games=3, num_playouts=8, rng=1
        )
        trainer = Trainer(net, Adam(net.parameters(), lr=1e-3), AlphaZeroLoss())
        pipeline = TrainingPipeline(
            game, None, trainer, num_playouts=8, sgd_iterations=2,
            batch_size=16, rng=2, engine=engine,
        )
        with engine:
            metrics = pipeline.run(2)
        assert metrics.episodes == 6  # 2 rounds x 3 games
        assert metrics.samples_produced > 0
        assert len(metrics.loss_history) == 4
        assert metrics.eval_requests > 0
        assert metrics.eval_batches > 0
        assert metrics.cache_hits + metrics.cache_misses > 0
        assert 0.0 <= metrics.cache_hit_rate <= 1.0
        assert metrics.mean_batch_occupancy == pytest.approx(
            metrics.eval_requests / metrics.eval_batches
        )
        assert len(pipeline.buffer) > 0

    def test_mismatched_episode_knobs_rejected(self):
        """The engine duplicates the pipeline's episode knobs; silent
        disagreement would collect data at misreported settings."""
        game = TicTacToe()
        net = build_network_for(game, channels=(2, 4, 4), rng=0)
        engine = MultiGameSelfPlayEngine(
            game, NetworkEvaluator(net), num_games=2, num_playouts=10, rng=1
        )
        trainer = Trainer(net, Adam(net.parameters(), lr=1e-3), AlphaZeroLoss())
        with pytest.raises(ValueError, match="num_playouts"):
            TrainingPipeline(
                game, None, trainer, num_playouts=40, engine=engine,
            )

    def test_sgd_invalidates_evaluation_cache(self):
        """After a training stage the network changed, so evaluations cached
        during data collection must not survive into the next round."""
        game = TicTacToe()
        net = build_network_for(game, channels=(2, 4, 4), rng=0)
        engine = MultiGameSelfPlayEngine(
            game, NetworkEvaluator(net), num_games=2, num_playouts=6, rng=1
        )
        trainer = Trainer(net, Adam(net.parameters(), lr=1e-3), AlphaZeroLoss())
        pipeline = TrainingPipeline(
            game, None, trainer, num_playouts=6, sgd_iterations=1,
            batch_size=8, rng=2, engine=engine,
        )
        with engine:
            pipeline.run_episode()
            assert len(engine.cache) == 0  # cleared after SGD
            # without an SGD stage the cache is still valid and kept
            pipeline.sgd_iterations = 0
            pipeline.run_episode()
            assert len(engine.cache) > 0
