"""Match-gateway unit tests: sessions, deadlines, backpressure, wire layer.

No pytest-asyncio dependency: each test drives its own event loop via
``asyncio.run`` (the gateway's public API is plain coroutines, so a
short-lived loop per test keeps state isolation trivial).
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest

from repro.games import TicTacToe
from repro.mcts import UniformEvaluator
from repro.serving import (
    GatewayClient,
    GatewayError,
    GatewayOverloaded,
    GatewayServer,
    InvalidMove,
    LatencyTracker,
    MatchGateway,
    SessionNotFound,
    SessionStatus,
)


def make_gateway(**kwargs) -> MatchGateway:
    defaults = dict(
        backend="thread", workers=2, deadline_ms=100.0, num_playouts=24, seed=0
    )
    defaults.update(kwargs)
    return MatchGateway(UniformEvaluator(), **defaults)


class SlowUniform(UniformEvaluator):
    def __init__(self, delay: float) -> None:
        self.delay = delay

    def evaluate(self, game):
        time.sleep(self.delay)
        return super().evaluate(game)


class BiasedEvaluator(UniformEvaluator):
    """Puts almost all prior mass on the lowest (or highest) legal move --
    distinguishable fingerprints for the fork-registry test."""

    def __init__(self, prefer_high: bool) -> None:
        self.prefer_high = prefer_high

    def evaluate(self, game):
        from repro.mcts import Evaluation

        legal = game.legal_actions()
        target = int(legal[-1] if self.prefer_high else legal[0])
        priors = np.full(game.action_size, 1e-4)
        priors[game.legal_mask() == 0] = 0.0
        priors[target] = 1.0
        return Evaluation(priors=priors / priors.sum(), value=0.0)


class TestSessions:
    def test_ids_are_monotonic_and_never_reused(self):
        async def run():
            async with make_gateway() as gw:
                first = await gw.create_session("tictactoe")
                second = await gw.create_session("tictactoe")
                await gw.resign(first)
                third = await gw.create_session("tictactoe")
                return first, second, third

        first, second, third = asyncio.run(run())
        assert first < second < third  # resigning never frees an id

    def test_move_applies_client_action_then_engine_replies(self):
        async def run():
            async with make_gateway() as gw:
                session = await gw.create_session("tictactoe")
                reply = await gw.play_move(session, action=4)
                return reply

        reply = asyncio.run(run())
        assert reply.engine_action is not None and reply.engine_action != 4
        assert reply.move_number == 2  # client ply + engine ply
        assert reply.prior is not None and reply.prior.sum() == pytest.approx(1.0)
        assert reply.prior[4] == 0  # the occupied square got no mass

    def test_illegal_move_rejected(self):
        async def run():
            async with make_gateway() as gw:
                session = await gw.create_session("tictactoe")
                await gw.play_move(session, action=0)
                with pytest.raises(InvalidMove):
                    await gw.play_move(session, action=0)
                # the failed request must not have corrupted the session
                reply = await gw.play_move(session, action=None)
                return reply

        assert asyncio.run(run()).engine_action is not None

    def test_game_plays_to_completion_and_session_is_removed(self):
        async def run():
            async with make_gateway() as gw:
                session = await gw.create_session("tictactoe")
                while True:
                    reply = await gw.play_move(session)
                    if reply.done:
                        break
                assert reply.winner in (-1, 0, 1)
                assert reply.status is SessionStatus.FINISHED
                assert gw.session_count == 0
                with pytest.raises(SessionNotFound):
                    await gw.play_move(session)
                return gw.stats()

        stats = asyncio.run(run())
        assert stats.sessions_finished == 1 and stats.sessions_active == 0

    def test_resign_closes_session(self):
        async def run():
            async with make_gateway() as gw:
                session = await gw.create_session("connect4")
                status = await gw.resign(session)
                assert status is SessionStatus.RESIGNED
                assert gw.session_count == 0
                with pytest.raises(SessionNotFound):
                    await gw.resign(session)
                return gw.stats()

        assert asyncio.run(run()).sessions_resigned == 1

    def test_resign_queued_behind_finishing_move_gets_404(self):
        """A resign waiting on the session lock while the in-flight move
        ends the game must not overwrite FINISHED / double-count."""

        async def run():
            async with make_gateway(workers=1) as gw:
                session = await gw.create_session("tictactoe")

                async def play_out():
                    while True:
                        try:
                            reply = await gw.play_move(session)
                        except SessionNotFound:
                            return  # the resign legitimately won the race
                        if reply.done:
                            return

                async def resign_spam():
                    outcomes = []
                    for _ in range(20):
                        try:
                            await gw.resign(session)
                            outcomes.append("resigned")
                            return outcomes
                        except SessionNotFound:
                            outcomes.append("404")
                            await asyncio.sleep(0.002)
                    return outcomes

                _, outcomes = await asyncio.gather(play_out(), resign_spam())
                return gw.stats(), outcomes

        stats, _ = asyncio.run(run())
        # lifecycle counters must reconcile: exactly one terminal outcome
        assert (
            stats.sessions_finished + stats.sessions_resigned
            == stats.sessions_created
            == 1
        )

    def test_game_template_rejects_mismatched_sessions(self):
        async def run():
            gw = MatchGateway(
                UniformEvaluator(), backend="thread", workers=1,
                game_template=TicTacToe(), seed=0,
            )
            async with gw:
                ok = await gw.create_session("tictactoe")
                assert ok >= 1
                with pytest.raises(GatewayError):
                    await gw.create_session("connect4")
                with pytest.raises(GatewayError):
                    await gw.create_session("gomoku", size=9)
                return gw.stats()

        assert asyncio.run(run()).sessions_created == 1

    def test_unknown_session_raises(self):
        async def run():
            async with make_gateway() as gw:
                with pytest.raises(SessionNotFound):
                    await gw.play_move(999)

        asyncio.run(run())

    def test_max_sessions_rejects_with_503(self):
        async def run():
            async with make_gateway(max_sessions=2) as gw:
                await gw.create_session()
                await gw.create_session()
                with pytest.raises(GatewayOverloaded):
                    await gw.create_session()
                return gw.stats()

        assert asyncio.run(run()).rejected == 1


class TestIdleGC:
    def test_idle_sessions_expire_and_table_empties(self):
        async def run():
            async with make_gateway(idle_timeout_s=10.0) as gw:
                ids = [await gw.create_session() for _ in range(3)]
                await gw.play_move(ids[0])
                swept = gw.expire_idle(now=time.monotonic() + 60.0)
                assert sorted(swept) == sorted(ids)
                assert gw.session_count == 0
                return gw.stats()

        stats = asyncio.run(run())
        assert stats.sessions_expired == 3

    def test_fresh_sessions_survive_the_sweep(self):
        async def run():
            async with make_gateway(idle_timeout_s=3600.0) as gw:
                session = await gw.create_session()
                assert gw.expire_idle() == []
                assert gw.session_count == 1
                await gw.resign(session)

        asyncio.run(run())

    def test_background_gc_task_runs(self):
        async def run():
            async with make_gateway(
                idle_timeout_s=0.01, gc_interval_s=0.02
            ) as gw:
                await gw.create_session()
                await asyncio.sleep(0.1)  # let the GC loop fire
                return gw.session_count, gw.stats().sessions_expired

        count, expired = asyncio.run(run())
        assert count == 0 and expired == 1


class TestBackpressure:
    def test_rejection_accounting_is_exact(self):
        async def run():
            gw = make_gateway(
                workers=1, max_inflight=1, num_playouts=4096,
                deadline_ms=250.0,
            )
            async with gw:
                sessions = [await gw.create_session() for _ in range(6)]
                replies = await asyncio.gather(
                    *[gw.play_move(s) for s in sessions],
                    return_exceptions=True,
                )
                served = [r for r in replies if not isinstance(r, Exception)]
                rejected = [r for r in replies if isinstance(r, GatewayOverloaded)]
                assert len(served) + len(rejected) == 6
                stats = gw.stats()
                assert stats.rejected == len(rejected)
                assert stats.moves_served == len(served)
                assert len(rejected) >= 1  # the limit really bound
                return stats

        stats = asyncio.run(run())
        assert stats.inflight == 0  # every admission slot was released

    def test_rejected_requests_leave_sessions_playable(self):
        async def run():
            async with make_gateway(max_inflight=1) as gw:
                session = await gw.create_session()
                other = await gw.create_session()
                first, second = await asyncio.gather(
                    gw.play_move(session),
                    gw.play_move(other),
                    return_exceptions=True,
                )
                # whichever lost admission can simply retry
                losers = [
                    s for s, r in ((session, first), (other, second))
                    if isinstance(r, GatewayOverloaded)
                ]
                for s in losers:
                    reply = await gw.play_move(s)
                    assert reply.engine_action is not None

        asyncio.run(run())


class TestDeadlines:
    def test_deadline_miss_accounting(self):
        async def run():
            gw = MatchGateway(
                SlowUniform(0.01),  # 10ms/eval >> the 1ms deadline
                backend="thread", workers=1, deadline_ms=1.0,
                num_playouts=64, deadline_tolerance_ms=0.0, seed=0,
            )
            async with gw:
                session = await gw.create_session()
                reply = await gw.play_move(session)
                stats = gw.stats()
                assert reply.engine_action is not None
                return stats

        assert asyncio.run(run()).deadline_misses == 1

    def test_moves_respect_the_deadline_budget(self):
        async def run():
            gw = make_gateway(
                workers=1, num_playouts=1_000_000, deadline_ms=50.0
            )
            async with gw:
                session = await gw.create_session()
                t0 = time.perf_counter()
                await gw.play_move(session)
                return time.perf_counter() - t0

        # generous slack: scheduler + executor handoff on a loaded box
        assert asyncio.run(run()) < 1.0

    def test_invalid_deadline_rejected(self):
        async def run():
            async with make_gateway() as gw:
                session = await gw.create_session()
                with pytest.raises(GatewayError):
                    await gw.play_move(session, deadline_ms=0.0)

        asyncio.run(run())


class TestProcessBackend:
    def test_full_game_on_forked_workers(self):
        async def run():
            gw = make_gateway(backend="process", workers=2)
            async with gw:
                session = await gw.create_session()
                moves = 0
                while True:
                    reply = await gw.play_move(session)
                    moves += 1
                    if reply.done:
                        return moves, gw.stats()

        moves, stats = asyncio.run(run())
        assert moves >= 3 and stats.sessions_finished == 1

    def test_coexisting_gateways_keep_their_own_evaluators(self):
        """Workers fork lazily at the first submit: a second gateway
        constructed before that fork must not hijack the first one's
        evaluator (regression: single-slot fork global)."""

        async def first_move(gw: MatchGateway) -> int:
            async with gw:
                session = await gw.create_session("tictactoe")
                return (await gw.play_move(session)).engine_action

        async def run():
            low = MatchGateway(
                BiasedEvaluator(prefer_high=False), backend="process",
                workers=1, deadline_ms=200.0, num_playouts=24, seed=0,
            )
            # constructed BEFORE low's workers fork
            high = MatchGateway(
                BiasedEvaluator(prefer_high=True), backend="process",
                workers=1, deadline_ms=200.0, num_playouts=24, seed=0,
            )
            return await first_move(low), await first_move(high)

        low_move, high_move = asyncio.run(run())
        assert low_move == 0 and high_move == 8


class TestWireLayer:
    def test_tcp_round_trip(self):
        async def run():
            gw = make_gateway()
            server = GatewayServer(gw)
            host, port = await server.start()
            client = await GatewayClient.connect(host, port)
            try:
                session = await client.new_match("tictactoe")
                reply = await client.move(session, action=0)
                assert reply["ok"] and reply["engine_action"] is not None
                assert reply["prior"] is not None
                assert sum(reply["prior"]) == pytest.approx(1.0, abs=1e-4)
                stats = await client.stats()
                assert stats["moves_served"] == 1
                await client.resign(session)
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())

    def test_errors_travel_as_codes_not_disconnects(self):
        async def run():
            server = GatewayServer(make_gateway())
            host, port = await server.start()
            client = await GatewayClient.connect(host, port)
            try:
                # unknown session -> 404 mapped back to SessionNotFound
                with pytest.raises(SessionNotFound):
                    await client.move(999)
                # malformed op -> 400, connection still usable
                raw = await client.request({"op": "warp"})
                assert raw["ok"] is False and raw["code"] == 400
                # out-of-range / non-integer actions -> 422 InvalidMove,
                # never a dead connection (regression: unchecked index)
                session = await client.new_match()
                for bad_action in (99, -1, 4.5, "4", True):
                    reply = await client.request(
                        {"op": "move", "session": session, "action": bad_action}
                    )
                    assert reply["ok"] is False and reply["code"] == 422, (
                        bad_action
                    )
                good = await client.move(session, action=4)
                assert good["ok"]
                # raw garbage line -> 400, connection still usable
                client._writer.write(b"this is not json\n")
                await client._writer.drain()
                bad = json.loads(await client._reader.readline())
                assert bad["ok"] is False and bad["code"] == 400
                assert await client.new_match() >= 1
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())

    def test_shutdown_does_not_hang_on_idle_connections(self):
        """Server.close() does not end open connections, and on Python
        >= 3.12.1 wait_closed() waits for every handler -- aclose() must
        cancel live handlers or an idle client wedges shutdown."""

        async def run():
            server = GatewayServer(make_gateway())
            host, port = await server.start()
            idle = await GatewayClient.connect(host, port)
            assert (await idle.request({"op": "ping"}))["ok"]
            # the idle client never disconnects; aclose must still return
            await asyncio.wait_for(server.aclose(), timeout=5.0)
            await idle.aclose()

        asyncio.run(run())

    def test_unexpected_server_error_replies_500_and_keeps_connection(self):
        """A crashed backend (e.g. BrokenProcessPool after a worker OOM
        kill) must surface as a 500 reply, not a dead socket."""

        async def run():
            gw = make_gateway()
            server = GatewayServer(gw)
            host, port = await server.start()
            client = await GatewayClient.connect(host, port)

            async def explode(*a, **k):
                raise RuntimeError("worker pool gone")

            gw.play_move = explode
            try:
                session = await client.new_match()
                reply = await client.request({"op": "move", "session": session})
                assert reply["ok"] is False and reply["code"] == 500
                assert "worker pool gone" in reply["error"]
                # the connection survived the failure
                assert (await client.request({"op": "ping"}))["ok"]
            finally:
                await client.aclose()
                await server.aclose()

        asyncio.run(run())

    def test_concurrent_clients_share_one_gateway(self):
        async def run():
            server = GatewayServer(make_gateway(workers=4))
            host, port = await server.start()

            async def one_full_game() -> int:
                client = await GatewayClient.connect(host, port)
                try:
                    session = await client.new_match()
                    while True:
                        reply = await client.move(session)
                        if reply["done"]:
                            return reply["move_number"]
                finally:
                    await client.aclose()

            try:
                moves = await asyncio.gather(*[one_full_game() for _ in range(4)])
                stats = server.gateway.stats()
                assert stats.sessions_finished == 4
                assert stats.moves_served == sum(moves)
                return moves
            finally:
                await server.aclose()

        assert all(m >= 3 for m in asyncio.run(run()))


class TestLatencyTracker:
    def test_percentiles_over_window(self):
        tracker = LatencyTracker(window=100)
        for v in range(1, 101):
            tracker.record(v / 1000.0)
        assert tracker.percentile(50) == pytest.approx(0.0505, abs=1e-3)
        assert tracker.percentile(99) == pytest.approx(0.1, abs=2e-3)
        assert tracker.count == 100
        summary = tracker.summary_ms()
        assert summary["count"] == 100 and summary["p50_ms"] > 0

    def test_ring_keeps_recent_samples(self):
        tracker = LatencyTracker(window=4)
        for v in (1.0, 1.0, 1.0, 1.0, 0.002, 0.002, 0.002, 0.002):
            tracker.record(v)
        # the old 1s outliers fell out of the window
        assert tracker.percentile(99) == pytest.approx(0.002)
        assert tracker.count == 8

    def test_empty_tracker_is_zero(self):
        tracker = LatencyTracker()
        assert tracker.percentile(99) == 0.0 and tracker.mean == 0.0

    def test_thread_safe_recording(self):
        import threading

        tracker = LatencyTracker(window=64)

        def hammer():
            for _ in range(500):
                tracker.record(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracker.count == 2000

    def test_engine_round_reports_latency_percentiles(self):
        from repro.serving import MultiGameSelfPlayEngine

        with MultiGameSelfPlayEngine(
            TicTacToe(), UniformEvaluator(), num_games=2, num_playouts=8,
            rng=0,
        ) as engine:
            _, stats = engine.play_round()
        assert stats.move_latency_p99_ms >= stats.move_latency_p50_ms > 0
        d = stats.as_dict()
        assert "move_latency_p99_ms" in d


def test_gateway_rejects_bad_config():
    with pytest.raises(ValueError):
        MatchGateway(UniformEvaluator(), backend="quantum")
    with pytest.raises(ValueError):
        MatchGateway(UniformEvaluator(), workers=0)
    with pytest.raises(ValueError):
        MatchGateway(UniformEvaluator(), deadline_ms=0)
    with pytest.raises(ValueError):
        MatchGateway(UniformEvaluator(), num_playouts=0)
    with pytest.raises(ValueError):
        # not silently coerced to the 2*workers default
        MatchGateway(UniformEvaluator(), max_inflight=0)


def test_make_game_rejects_zero_gomoku_size():
    from repro.games import make_game

    assert make_game("gomoku").board_shape == (15, 15)
    with pytest.raises(ValueError):
        make_game("gomoku", 0)


def test_prior_is_over_legal_moves_only():
    async def run():
        async with make_gateway() as gw:
            session = await gw.create_session("tictactoe")
            occupied = []
            while True:
                reply = await gw.play_move(session)
                if reply.done:
                    return
                assert np.all(np.asarray(reply.prior)[occupied] == 0)
                occupied.append(reply.engine_action)

    asyncio.run(run())
