"""Evaluation-cache correctness: hit fidelity, eviction, counter algebra."""

import threading

import numpy as np
import pytest

from repro.games import ConnectFour, Gomoku, SyntheticTreeGame, TicTacToe, build_network_for
from repro.mcts.evaluation import NetworkEvaluator, UniformEvaluator
from repro.serving import CachingEvaluator, EvaluationCache


class CountingEvaluator(UniformEvaluator):
    def __init__(self):
        self.calls = 0

    def evaluate(self, game):
        self.calls += 1
        return super().evaluate(game)

    def evaluate_batch(self, games):
        self.calls += len(games)
        return [UniformEvaluator.evaluate(self, g) for g in games]


class TestCanonicalKey:
    @pytest.mark.parametrize(
        "make",
        [TicTacToe, lambda: Gomoku(6, 4), ConnectFour,
         lambda: SyntheticTreeGame(fanout=3, depth_limit=5, board_size=5)],
        ids=["tictactoe", "gomoku", "connect4", "synthetic"],
    )
    def test_key_tracks_state(self, make):
        game = make()
        fresh = make()
        assert game.canonical_key() == fresh.canonical_key()
        game.step(int(game.legal_actions()[0]))
        assert game.canonical_key() != fresh.canonical_key()
        # a copy is the same state -> same key
        assert game.canonical_key() == game.copy().canonical_key()

    def test_same_cells_different_last_move_differ(self):
        # Transpositions reaching the same board by different move orders
        # have different last-move planes, so their keys must differ too.
        a, b = TicTacToe(), TicTacToe()
        for move in (0, 4, 8):
            a.step(move)
        for move in (8, 4, 0):
            b.step(move)
        assert not np.array_equal(a.encode(), b.encode())
        assert a.canonical_key() != b.canonical_key()

    def test_base_default_key(self):
        # the Game-level fallback digest (encode-derived) also tracks state
        from repro.games.base import Game

        game = TicTacToe()
        base_key = Game._compute_canonical_key(game)
        game2 = TicTacToe()
        assert base_key == Game._compute_canonical_key(game2)
        game2.step(3)
        assert base_key != Game._compute_canonical_key(game2)

    def test_key_memoised_and_invalidated(self):
        # repeated lookups reuse the cached digest; step() invalidates it
        game = TicTacToe()
        first = game.canonical_key()
        assert game.canonical_key() is first  # memo hit: same object
        clone = game.copy()
        assert clone.canonical_key() is first  # copies inherit the memo
        game.step(0)
        after = game.canonical_key()
        assert after is not first and after != first
        assert clone.canonical_key() == first  # the copy is unaffected


class TestEvaluationCache:
    def test_hit_equals_fresh_evaluation(self):
        """A cache hit must be indistinguishable from re-running the DNN."""
        game = TicTacToe()
        game.step(4)
        net = build_network_for(game, channels=(2, 4, 4), rng=0)
        evaluator = NetworkEvaluator(net)
        cached_eval = CachingEvaluator(evaluator, EvaluationCache(16))

        first = cached_eval.evaluate(game)
        hit = cached_eval.evaluate(game.copy())  # same state, fresh object
        fresh = evaluator.evaluate(game)
        np.testing.assert_array_equal(hit.priors, fresh.priors)
        assert hit.value == fresh.value
        assert cached_eval.cache.hits == 1

    def test_eviction_respects_capacity(self):
        cache = EvaluationCache(capacity=3)
        games = []
        game = SyntheticTreeGame(fanout=4, depth_limit=10, board_size=5)
        ev = UniformEvaluator().evaluate(game)
        for step in range(5):
            games.append(game.copy())
            cache.put(game, ev)
            game.step(step % 4)
        assert len(cache) == 3
        assert cache.evictions == 2
        # LRU order: the two oldest states fell out, the newest remain
        assert cache.get(games[0]) is None
        assert cache.get(games[1]) is None
        assert cache.get(games[4]) is not None

    def test_lru_refresh_on_lookup(self):
        cache = EvaluationCache(capacity=2)
        ev = UniformEvaluator().evaluate(TicTacToe())
        a, b, c = TicTacToe(), TicTacToe(), TicTacToe()
        b.step(0)
        c.step(1)
        cache.put(a, ev)
        cache.put(b, ev)
        assert cache.get(a) is not None  # a is now most-recently used
        cache.put(c, ev)  # evicts b, not a
        assert cache.get(b) is None
        assert cache.get(a) is not None

    def test_counter_algebra(self):
        """hits + misses == lookups, and every request either hit the cache
        or reached the backing evaluator."""
        backing = CountingEvaluator()
        cached = CachingEvaluator(backing, EvaluationCache(64))
        game = SyntheticTreeGame(fanout=3, depth_limit=8, board_size=5)
        states = []
        for step in range(6):
            states.append(game.copy())
            game.step(step % 3)
        requests = 0
        for _ in range(4):
            for s in states:
                cached.evaluate(s)
                requests += 1
        cache = cached.cache
        assert cache.hits + cache.misses == cache.lookups == requests
        assert backing.calls == cache.misses  # only misses reach the backend
        assert requests == backing.calls + cache.hits
        assert cache.hit_rate == cache.hits / requests

    def test_batch_path_partitions_hits_and_misses(self):
        backing = CountingEvaluator()
        cached = CachingEvaluator(backing, EvaluationCache(64))
        a, b, c = TicTacToe(), TicTacToe(), TicTacToe()
        b.step(0)
        c.step(1)
        cached.evaluate(a)  # prime one state
        evals = cached.evaluate_batch([a, b, c, a])
        assert len(evals) == 4
        assert backing.calls == 1 + 2  # prime + the two cold states
        np.testing.assert_array_equal(evals[0].priors, evals[3].priors)
        # results line up with their request, not with cache order
        assert evals[1].priors[0] == 0.0  # b: cell 0 occupied
        assert evals[2].priors[0] > 0.0  # c: cell 0 free

    def test_thread_safety_of_counters(self):
        cache = EvaluationCache(capacity=128)
        cached = CachingEvaluator(UniformEvaluator(), cache)
        states = []
        game = SyntheticTreeGame(fanout=4, depth_limit=12, board_size=5)
        for step in range(10):
            states.append(game.copy())
            game.step(step % 4)

        per_thread = 200
        threads = [
            threading.Thread(
                target=lambda: [cached.evaluate(s) for s in states * (per_thread // 10)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not any(t.is_alive() for t in threads)
        assert cache.hits + cache.misses == 8 * per_thread

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EvaluationCache(capacity=0)
