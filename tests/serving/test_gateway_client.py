"""GatewayClient transport hardening: every wire failure is typed.

A peer that dies mid-reply used to leak ``json.JSONDecodeError`` (torn
line) or a bare ``ConnectionResetError`` to the caller; these tests pin
the contract that *every* transport failure -- torn line, corrupt line,
mid-request disconnect, read timeout, refused connect -- surfaces as
:class:`GatewayConnectionError`, the one exception the cluster retry
path catches.
"""

import asyncio

import pytest

from repro.serving.service import (
    GatewayClient,
    GatewayConnectionError,
    GatewayServer,
    MatchGateway,
)


async def misbehaving_server(behavior: str):
    """A TCP peer that reads one line then misbehaves per *behavior*."""

    async def handle(reader, writer):
        await reader.readline()
        if behavior == "torn":
            writer.write(b'{"ok": true, "sess')  # no newline, then gone
            await writer.drain()
        elif behavior == "corrupt":
            writer.write(b"}}} not json {{{\n")
            await writer.drain()
        elif behavior == "close":
            pass  # immediate disconnect, zero bytes
        elif behavior == "hang":
            await asyncio.sleep(30)
        writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    return server, host, port


@pytest.mark.parametrize(
    "behavior,fragment",
    [
        ("torn", "torn reply line"),
        ("corrupt", "corrupt reply line"),
        ("close", "closed the connection"),
        ("hang", "no reply within"),
    ],
)
def test_wire_failures_are_typed(behavior, fragment):
    async def main():
        server, host, port = await misbehaving_server(behavior)
        client = await GatewayClient.connect(host, port, timeout_s=0.2)
        try:
            with pytest.raises(GatewayConnectionError, match=fragment):
                await client.request({"op": "ping"})
        finally:
            await client.aclose()
            server.close()
            await server.wait_closed()

    asyncio.run(main())


def test_connect_refused_is_typed():
    async def main():
        # bind-then-close guarantees a port with no listener
        probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
        port = probe.sockets[0].getsockname()[1]
        probe.close()
        await probe.wait_closed()
        with pytest.raises(GatewayConnectionError):
            await GatewayClient.connect("127.0.0.1", port, timeout_s=1.0)

    asyncio.run(main())


def test_typed_error_still_catches_as_connection_error():
    # existing call sites say `except ConnectionError`; the typed class
    # must keep satisfying them
    assert issubclass(GatewayConnectionError, ConnectionError)


def test_ping_and_idempotent_move_over_tcp():
    async def main():
        gateway = MatchGateway(num_playouts=2, deadline_ms=50.0)
        server = GatewayServer(gateway)
        host, port = await server.start()
        client = await GatewayClient.connect(host, port, timeout_s=5.0)
        try:
            pong = await client.ping()
            assert pong["ok"] and pong["draining"] is False
            session = await client.new_match()
            first = await client.move(session, request_id="m0")
            again = await client.move(session, request_id="m0")
            # the repeat answered from the reply cache: identical reply,
            # no second move applied
            assert again == first
            stats = gateway.stats()
            assert stats.deduped_replies == 1
            assert stats.moves_served == 1
        finally:
            await client.aclose()
            await server.aclose()

    asyncio.run(main())


def test_restore_and_drain_ops_over_tcp():
    async def main():
        gateway = MatchGateway(num_playouts=2, deadline_ms=50.0)
        server = GatewayServer(gateway)
        host, port = await server.start()
        client = await GatewayClient.connect(host, port, timeout_s=5.0)
        try:
            session = await client.new_match()
            reply = await client.move(session)
            played = [reply["engine_action"]]
            drained = await client.request({"op": "drain"})
            assert drained["ok"]
            exported = drained["drained"]
            assert len(exported) == 1
            assert exported[0]["actions"] == played
            # draining gateway refuses admissions with a 503
            rejected = await client.request({"op": "new"})
            assert rejected["ok"] is False and rejected["code"] == 503
            resumed = await client.request({"op": "resume"})
            assert resumed["ok"]
            # restore replays the exported line into a fresh session
            restored = await client.request(
                {"op": "restore", "actions": exported[0]["actions"]}
            )
            assert restored["ok"] and not restored["done"]
            follow = await client.move(restored["session"])
            assert follow["ok"] and follow["move_number"] >= 1
            # an illegal line is rejected with ply-precise diagnostics
            bad = await client.request({"op": "restore", "actions": [0, 0]})
            assert bad["ok"] is False and "ply 1" in bad["error"]
        finally:
            await client.aclose()
            await server.aclose()

    asyncio.run(main())
