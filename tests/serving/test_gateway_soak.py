"""Wall-clock gateway smoke (``soak`` marker -- nightly lane).

**Scenario authors: start at ``tests/simtime`` instead.**  The scale and
duration coverage that used to live here -- 64-session soaks, idle-GC
over hours, exact backpressure sweeps -- moved to the virtual-time
harness (:mod:`repro.serving.simulate`), where it runs deterministically
in the push lane in seconds.  What remains here is the one thing virtual
time cannot assert: that the gateway on the default
:data:`~repro.utils.clock.WALL_CLOCK` -- real thread pool, real
``asyncio.sleep``, real GIL time-slicing -- still honours the same
contracts.  This is the WallClock-parity smoke for the Clock seam, kept
deliberately small:

- **No session leaks.**  Every session ends FINISHED and leaves the
  table; counters reconcile exactly with what the clients observed.
- **Bounded latency.**  Served moves stay within the *admission-scaled*
  bound (a move may time-slice one GIL with up to ``max_inflight``
  searches), with generous slack for a loaded CI box -- the simtime
  suite asserts the tight bound.
- **Exact rejection accounting.**  503s seen by clients equal the
  gateway's ``rejected`` counter.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.mcts import UniformEvaluator
from repro.serving import GatewayOverloaded, MatchGateway

pytestmark = pytest.mark.soak

SESSIONS = 16
DEADLINE_MS = 50.0
WORKERS = 4
MAX_INFLIGHT = 8
#: admission-scaled compliance bound (see module docstring): a served
#: move may wait behind up to MAX_INFLIGHT GIL-sharing searches, plus
#: generous scheduler slack for a loaded CI box
TOLERANCE_MS = DEADLINE_MS * MAX_INFLIGHT + 1500.0


async def _play_to_completion(gw: MatchGateway, results: list) -> None:
    """One client: create a session, play engine-vs-engine to the end,
    retrying (with backoff) when admission control sheds the request."""
    session = await gw.create_session("tictactoe")
    moves = 0
    retries = 0
    latencies: list[float] = []
    while True:
        try:
            reply = await gw.play_move(session, deadline_ms=DEADLINE_MS)
        except GatewayOverloaded:
            retries += 1
            await asyncio.sleep(0.002)
            continue
        moves += 1
        latencies.append(reply.latency_ms)
        if reply.done:
            results.append((session, moves, retries, latencies))
            return


class TestGatewayWallSmoke:
    @pytest.fixture(scope="class")
    def smoke_run(self):
        gw = MatchGateway(
            UniformEvaluator(),
            backend="thread",
            workers=WORKERS,
            deadline_ms=DEADLINE_MS,
            num_playouts=64,
            max_inflight=MAX_INFLIGHT,
            max_sessions=SESSIONS + 8,
            idle_timeout_s=60.0,
            seed=0,
        )
        results: list = []

        async def run():
            async with gw:
                await asyncio.gather(
                    *[_play_to_completion(gw, results) for _ in range(SESSIONS)]
                )
                return gw.stats(), gw.session_count

        stats, leftover = asyncio.run(run())
        return gw, results, stats, leftover

    def test_all_sessions_complete(self, smoke_run):
        _, results, stats, _ = smoke_run
        assert len(results) == SESSIONS
        assert stats.sessions_created == SESSIONS
        assert stats.sessions_finished == SESSIONS
        ids = {sid for sid, *_ in results}
        assert ids == set(range(min(ids), min(ids) + SESSIONS)), (
            "session ids must be a contiguous monotonic block"
        )

    def test_zero_session_leaks_after_gc(self, smoke_run):
        gw, _, _, leftover = smoke_run
        assert leftover == 0  # finished sessions left the table on their own
        swept = gw.expire_idle(now=1e12)  # final sweep finds nothing to free
        assert swept == [] and gw.session_count == 0

    def test_move_accounting_reconciles(self, smoke_run):
        _, results, stats, _ = smoke_run
        assert stats.moves_served == sum(moves for _, moves, _, _ in results)
        client_retries = sum(r for _, _, r, _ in results)
        assert stats.rejected == client_retries  # every 503 was counted once
        assert stats.inflight == 0

    def test_every_move_within_admission_scaled_deadline(self, smoke_run):
        _, results, stats, _ = smoke_run
        worst = max(max(lats) for *_, lats in results)
        assert worst <= DEADLINE_MS + TOLERANCE_MS, (
            f"worst served move {worst:.1f}ms exceeds "
            f"{DEADLINE_MS}+{TOLERANCE_MS}ms"
        )
        assert stats.latency_p99_ms <= DEADLINE_MS + TOLERANCE_MS


class TestForcedBackpressure:
    def test_rejections_are_exact_under_overload(self):
        gw = MatchGateway(
            UniformEvaluator(),
            backend="thread",
            workers=1,
            deadline_ms=200.0,
            num_playouts=4096,
            max_inflight=1,  # force the rejection path hard
            seed=1,
        )

        async def run():
            async with gw:
                sessions = [await gw.create_session() for _ in range(16)]
                replies = await asyncio.gather(
                    *[gw.play_move(s, deadline_ms=200.0) for s in sessions],
                    return_exceptions=True,
                )
                served = sum(1 for r in replies if not isinstance(r, Exception))
                rejected = sum(
                    1 for r in replies if isinstance(r, GatewayOverloaded)
                )
                unexpected = [
                    r
                    for r in replies
                    if isinstance(r, Exception)
                    and not isinstance(r, GatewayOverloaded)
                ]
                assert not unexpected
                return served, rejected, gw.stats()

        served, rejected, stats = asyncio.run(run())
        assert served + rejected == 16
        assert served >= 1 and rejected >= 1
        assert stats.rejected == rejected
        assert stats.moves_served == served


class TestProcessBackendSmoke:
    def test_concurrent_sessions_on_forked_workers(self):
        sessions = 16
        gw = MatchGateway(
            UniformEvaluator(),
            backend="process",
            workers=2,
            deadline_ms=DEADLINE_MS,
            num_playouts=32,
            max_inflight=4,
            seed=2,
        )
        results: list = []

        async def run():
            async with gw:
                await asyncio.gather(
                    *[_play_to_completion(gw, results) for _ in range(sessions)]
                )
                return gw.stats(), gw.session_count

        stats, leftover = asyncio.run(run())
        assert len(results) == sessions
        assert stats.sessions_finished == sessions
        assert leftover == 0
