"""Tests for the discrete-event engine: effects, determinism, resources."""

import pytest

from repro.simulator.engine import (
    Acquire,
    Compute,
    Get,
    Put,
    Release,
    SimEngine,
    Wait,
)
from repro.simulator.resources import SimFIFO, SimFuture, SimLock


class TestCompute:
    def test_advances_clock(self):
        engine = SimEngine()

        def task():
            yield Compute(5.0)
            yield Compute(3.0)

        engine.spawn(task())
        assert engine.run() == 8.0

    def test_parallel_tasks_overlap(self):
        engine = SimEngine()

        def task():
            yield Compute(10.0)

        engine.spawn(task())
        engine.spawn(task())
        assert engine.run() == 10.0  # concurrent, not 20

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1.0)

    def test_tagged_compute_metrics(self):
        engine = SimEngine()

        def task():
            yield Compute(2.0, tag="select")
            yield Compute(3.0, tag="select")
            yield Compute(1.0, tag="backup")

        engine.spawn(task())
        engine.run()
        assert engine.metrics.compute_by_tag["select"] == 5.0
        assert engine.metrics.compute_by_tag["backup"] == 1.0

    def test_busy_time_tracked(self):
        engine = SimEngine()

        def task():
            yield Compute(4.0)

        t = engine.spawn(task())
        engine.run()
        assert t.busy_time == 4.0
        assert t.done


class TestLocks:
    def test_mutual_exclusion_serialises(self):
        engine = SimEngine()
        lock = SimLock("l")
        order = []

        def task(name):
            yield Acquire(lock)
            order.append((name, engine.now, "in"))
            yield Compute(5.0)
            order.append((name, engine.now, "out"))
            yield Release(lock)

        engine.spawn(task("a"))
        engine.spawn(task("b"))
        total = engine.run()
        assert total == 10.0  # fully serialised
        # no interleaving: a fully inside, then b
        assert [e[0] for e in order] == ["a", "a", "b", "b"]

    def test_fifo_fairness(self):
        engine = SimEngine()
        lock = SimLock()
        acquired = []

        def task(name, delay):
            yield Compute(delay)
            yield Acquire(lock)
            acquired.append(name)
            yield Compute(10.0)
            yield Release(lock)

        for i, name in enumerate(["w0", "w1", "w2"]):
            engine.spawn(task(name, i * 0.1))
        engine.run()
        assert acquired == ["w0", "w1", "w2"]

    def test_contention_metric(self):
        engine = SimEngine()
        lock = SimLock()

        def task():
            yield Acquire(lock)
            yield Compute(2.0)
            yield Release(lock)

        engine.spawn(task())
        engine.spawn(task())
        engine.run()
        assert lock.contended == 1
        assert engine.metrics.total_lock_wait == 2.0

    def test_release_by_non_holder_raises(self):
        engine = SimEngine()
        lock = SimLock()

        def holder():
            yield Acquire(lock)
            yield Compute(10.0)
            yield Release(lock)

        def thief():
            yield Compute(1.0)
            yield Release(lock)

        engine.spawn(holder())
        engine.spawn(thief())
        with pytest.raises(RuntimeError, match="does not hold"):
            engine.run()


class TestFIFO:
    def test_put_then_get(self):
        engine = SimEngine()
        fifo = SimFIFO()
        got = []

        def producer():
            yield Compute(1.0)
            yield Put(fifo, "x")

        def consumer():
            item = yield Get(fifo)
            got.append((item, engine.now))

        engine.spawn(consumer())
        engine.spawn(producer())
        engine.run()
        assert got == [("x", 1.0)]

    def test_get_blocks_until_put(self):
        engine = SimEngine()
        fifo = SimFIFO()
        times = []

        def consumer():
            yield Get(fifo)
            times.append(engine.now)

        def producer():
            yield Compute(7.0)
            yield Put(fifo, 1)

        engine.spawn(consumer())
        engine.spawn(producer())
        engine.run()
        assert times == [7.0]

    def test_fifo_ordering(self):
        engine = SimEngine()
        fifo = SimFIFO()
        got = []

        def producer():
            for i in range(3):
                yield Put(fifo, i)
                yield Compute(1.0)

        def consumer():
            for _ in range(3):
                item = yield Get(fifo)
                got.append(item)

        engine.spawn(producer())
        engine.spawn(consumer())
        engine.run()
        assert got == [0, 1, 2]

    def test_multiple_getters_fifo(self):
        engine = SimEngine()
        fifo = SimFIFO()
        got = []

        def consumer(name):
            item = yield Get(fifo)
            got.append((name, item))

        def producer():
            yield Compute(1.0)
            yield Put(fifo, "a")
            yield Put(fifo, "b")

        engine.spawn(consumer("c0"))
        engine.spawn(consumer("c1"))
        engine.spawn(producer())
        engine.run()
        assert got == [("c0", "a"), ("c1", "b")]


class TestFutures:
    def test_wait_resolved_future_continues(self):
        engine = SimEngine()
        fut = SimFuture()

        def resolver():
            yield Compute(2.0)
            engine.resolve_future(fut, 42)

        got = []

        def waiter():
            v = yield Wait(fut)
            got.append((v, engine.now))

        engine.spawn(waiter())
        engine.spawn(resolver())
        engine.run()
        assert got == [(42, 2.0)]

    def test_already_resolved_is_instant(self):
        engine = SimEngine()
        fut = SimFuture()
        got = []

        def task():
            yield Compute(1.0)
            engine.resolve_future(fut, "v")
            value = yield Wait(fut)
            got.append((value, engine.now))

        engine.spawn(task())
        engine.run()
        assert got == [("v", 1.0)]

    def test_double_resolve_raises(self):
        engine = SimEngine()
        fut = SimFuture()
        engine.resolve_future(fut, 1)
        with pytest.raises(RuntimeError):
            engine.resolve_future(fut, 2)


class TestCallbacks:
    def test_call_at_fires_in_order(self):
        engine = SimEngine()
        fired = []
        engine.call_at(5.0, lambda: fired.append(("b", engine.now)))
        engine.call_at(2.0, lambda: fired.append(("a", engine.now)))
        engine.run()
        assert fired == [("a", 2.0), ("b", 5.0)]

    def test_past_scheduling_rejected(self):
        engine = SimEngine()

        def task():
            yield Compute(10.0)

        engine.spawn(task())
        engine.run()
        with pytest.raises(ValueError):
            engine.call_at(5.0, lambda: None)


class TestDeterminism:
    def test_identical_programs_identical_schedules(self):
        def build():
            engine = SimEngine()
            lock = SimLock()
            log = []

            def worker(name, d):
                yield Compute(d)
                yield Acquire(lock)
                log.append((name, engine.now))
                yield Compute(1.0)
                yield Release(lock)

            for i in range(5):
                engine.spawn(worker(f"w{i}", (i * 7) % 3))
            engine.run()
            return log

        assert build() == build()

    def test_run_until(self):
        engine = SimEngine()

        def task():
            for _ in range(10):
                yield Compute(1.0)

        engine.spawn(task())
        t = engine.run(until=4.5)
        assert t == 4.5
        assert engine.run() == 10.0  # resumes where it stopped

    def test_non_effect_yield_raises(self):
        engine = SimEngine()

        def bad():
            yield "not an effect"

        engine.spawn(bad())
        with pytest.raises(TypeError):
            engine.run()
