"""Tests for the simulated accelerator and its batching queue."""

import pytest

from repro.simulator.engine import Compute, SimEngine, Wait
from repro.simulator.gpu import SimAcceleratorQueue, SimGPU
from repro.simulator.hardware import PlatformSpec, CPUSpec, GPUSpec
from repro.simulator.workload import LatencyModel


def make_gpu(engine):
    plat = PlatformSpec(cpu=CPUSpec(), gpu=GPUSpec())
    return SimGPU(engine, LatencyModel(plat)), plat.gpu


class TestSimGPU:
    def test_single_batch_latency(self):
        engine = SimEngine()
        gpu, spec = make_gpu(engine)
        results = []

        def task():
            fut = gpu.submit(4, result="done")
            value = yield Wait(fut)
            results.append((value, engine.now))

        engine.spawn(task())
        engine.run()
        expected = spec.transfer_time(4) + spec.compute_time(4)
        assert results == [("done", pytest.approx(expected))]

    def test_kernels_serialise(self):
        """Two batches submitted together: second starts after the first's
        compute finishes (single compute engine)."""
        engine = SimEngine()
        gpu, spec = make_gpu(engine)
        done = []

        def task():
            f1 = gpu.submit(4)
            f2 = gpu.submit(4)
            yield Wait(f1)
            done.append(engine.now)
            yield Wait(f2)
            done.append(engine.now)

        engine.spawn(task())
        engine.run()
        t1 = spec.transfer_time(4) + spec.compute_time(4)
        assert done[0] == pytest.approx(t1)
        assert done[1] == pytest.approx(t1 + spec.compute_time(4))

    def test_transfer_overlaps_previous_compute(self):
        """A batch submitted mid-compute of another hides its transfer."""
        engine = SimEngine()
        gpu, spec = make_gpu(engine)
        done = []

        def task():
            f1 = gpu.submit(8)
            yield Compute(spec.transfer_time(8))  # wait out the transfer
            f2 = gpu.submit(8)  # transfer overlaps f1's compute
            yield Wait(f2)
            done.append(engine.now)

        engine.spawn(task())
        engine.run()
        serial = 2 * (spec.transfer_time(8) + spec.compute_time(8))
        assert done[0] < serial  # strictly better than no overlap

    def test_stats(self):
        engine = SimEngine()
        gpu, _ = make_gpu(engine)

        def task():
            yield Wait(gpu.submit(3))
            yield Wait(gpu.submit(5))

        engine.spawn(task())
        engine.run()
        assert gpu.batches == 2
        assert gpu.samples == 8
        assert gpu.busy_time > 0

    def test_invalid_batch(self):
        engine = SimEngine()
        gpu, _ = make_gpu(engine)
        with pytest.raises(ValueError):
            gpu.submit(0)


class TestSimAcceleratorQueue:
    def test_flush_at_threshold(self):
        engine = SimEngine()
        gpu, _ = make_gpu(engine)
        queue = SimAcceleratorQueue(gpu, batch_size=3, evaluate=lambda xs: [x * 2 for x in xs])
        got = []

        def producer(x):
            fut = queue.submit(x)
            value = yield Wait(fut)
            got.append(value)

        for i in range(3):
            engine.spawn(producer(i))
        engine.run()
        assert sorted(got) == [0, 2, 4]
        assert queue.flushes == 1

    def test_partial_flush(self):
        engine = SimEngine()
        gpu, _ = make_gpu(engine)
        queue = SimAcceleratorQueue(gpu, batch_size=8, evaluate=lambda xs: xs)
        got = []

        def producer():
            fut = queue.submit("a")
            value = yield Wait(fut)
            got.append(value)

        def flusher():
            yield Compute(1.0)
            queue.flush()

        engine.spawn(producer())
        engine.spawn(flusher())
        engine.run()
        assert got == ["a"]

    def test_result_count_mismatch_raises(self):
        engine = SimEngine()
        gpu, _ = make_gpu(engine)
        queue = SimAcceleratorQueue(gpu, batch_size=2, evaluate=lambda xs: xs[:1])

        def producer(x):
            yield Wait(queue.submit(x))

        engine.spawn(producer(1))
        engine.spawn(producer(2))
        with pytest.raises(RuntimeError):
            engine.run()

    def test_empty_flush_noop(self):
        engine = SimEngine()
        gpu, _ = make_gpu(engine)
        queue = SimAcceleratorQueue(gpu, batch_size=2, evaluate=lambda xs: xs)
        assert queue.flush() == 0
