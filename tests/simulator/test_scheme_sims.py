"""Tests for the virtual-time shared-tree and local-tree simulations.

These verify (a) the *algorithm* executed under the DES is the genuine
MCTS (tree invariants, playout budgets, tactical correctness) and (b) the
*timing* behaves the way the paper's analysis says it must (parallel
speedup, memory-regime gap, batching effects).
"""

import numpy as np
import pytest

from repro.games import Gomoku, TicTacToe
from repro.mcts.evaluation import UniformEvaluator
from repro.mcts.virtual_loss import ConstantVirtualLoss, WUVirtualLoss
from repro.simulator import (
    LocalTreeSimulation,
    SharedTreeSimulation,
    paper_platform,
)

PLAT = paper_platform()
EV = UniformEvaluator()


class TestSharedTreeSimulation:
    def test_playout_budget(self):
        r = SharedTreeSimulation(TicTacToe(), EV, PLAT, num_workers=4).run(100)
        assert r.playouts == 100
        assert r.root.visit_count == 100

    def test_tree_invariants(self):
        r = SharedTreeSimulation(TicTacToe(), EV, PLAT, num_workers=8).run(200)
        for node in r.root.iter_subtree():
            assert node.virtual_loss == pytest.approx(0.0)
            if node.children:
                child_sum = sum(c.visit_count for c in node.children.values())
                assert node.visit_count >= child_sum

    def test_parallel_speedup(self):
        t1 = SharedTreeSimulation(TicTacToe(), EV, PLAT, num_workers=1).run(200).total_time
        t8 = SharedTreeSimulation(TicTacToe(), EV, PLAT, num_workers=8).run(200).total_time
        assert t8 < t1 / 3  # strong scaling, allowing contention losses

    def test_lock_contention_grows_with_workers(self):
        lw2 = SharedTreeSimulation(Gomoku(9, 5), EV, PLAT, num_workers=2).run(200).lock_wait
        lw16 = SharedTreeSimulation(Gomoku(9, 5), EV, PLAT, num_workers=16).run(200).lock_wait
        assert lw16 > lw2

    def test_gpu_mode_batches(self):
        r = SharedTreeSimulation(
            TicTacToe(), EV, PLAT, num_workers=4, use_gpu=True
        ).run(100)
        assert r.gpu_batches > 0
        assert r.gpu_busy > 0
        assert r.batch_size == 4  # shared tree always full-batches

    def test_gpu_requires_gpu_spec(self):
        with pytest.raises(ValueError):
            SharedTreeSimulation(
                TicTacToe(), EV, paper_platform(with_gpu=False), 4, use_gpu=True
            )

    def test_deterministic(self):
        a = SharedTreeSimulation(TicTacToe(), EV, PLAT, num_workers=4).run(150)
        b = SharedTreeSimulation(TicTacToe(), EV, PLAT, num_workers=4).run(150)
        assert a.total_time == b.total_time
        assert a.tree_size == b.tree_size

    def test_compute_tags_present(self):
        r = SharedTreeSimulation(TicTacToe(), EV, PLAT, num_workers=4).run(100)
        for tag in ("select", "vl", "expand", "backup", "dnn"):
            assert tag in r.compute_by_tag, tag

    def test_both_vl_policies(self):
        for vl in (ConstantVirtualLoss(), WUVirtualLoss()):
            r = SharedTreeSimulation(
                TicTacToe(), EV, PLAT, num_workers=4, vl_policy=vl
            ).run(80)
            assert r.root.visit_count == 80


class TestLocalTreeSimulation:
    def test_playout_budget(self):
        r = LocalTreeSimulation(TicTacToe(), EV, PLAT, num_workers=4).run(100)
        assert r.root.visit_count == 100

    def test_no_locks_used(self):
        r = LocalTreeSimulation(TicTacToe(), EV, PLAT, num_workers=4).run(100)
        assert r.lock_wait == 0.0

    def test_tree_invariants(self):
        r = LocalTreeSimulation(TicTacToe(), EV, PLAT, num_workers=8, batch_size=4).run(200)
        for node in r.root.iter_subtree():
            assert node.virtual_loss == pytest.approx(0.0)

    def test_evaluation_overlap_speedup(self):
        t1 = LocalTreeSimulation(TicTacToe(), EV, PLAT, num_workers=1).run(200).total_time
        t8 = LocalTreeSimulation(TicTacToe(), EV, PLAT, num_workers=8).run(200).total_time
        assert t8 < t1 / 3

    def test_gpu_batching(self):
        r = LocalTreeSimulation(
            Gomoku(9, 5), EV, PLAT, num_workers=16, batch_size=8, use_gpu=True
        ).run(200)
        assert r.gpu_batches >= 200 // 8 - 2
        assert r.batch_size == 8

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            LocalTreeSimulation(TicTacToe(), EV, PLAT, num_workers=4, batch_size=8)

    def test_deterministic(self):
        a = LocalTreeSimulation(TicTacToe(), EV, PLAT, num_workers=4).run(150)
        b = LocalTreeSimulation(TicTacToe(), EV, PLAT, num_workers=4).run(150)
        assert a.total_time == b.total_time

    def test_more_workers_than_playouts(self):
        r = LocalTreeSimulation(TicTacToe(), EV, PLAT, num_workers=32).run(10)
        assert r.root.visit_count == 10


class TestPaperTimingClaims:
    """Timing relations the paper's Section 3/4 analysis asserts."""

    def test_local_in_tree_cheaper_than_shared(self):
        """Cache-resident local tree must spend less virtual time on
        selection than the DDR-resident shared tree (same workload)."""
        rs = SharedTreeSimulation(Gomoku(9, 5), EV, PLAT, num_workers=4).run(300)
        rl = LocalTreeSimulation(Gomoku(9, 5), EV, PLAT, num_workers=4).run(300)
        assert rl.compute_by_tag["select"] < rs.compute_by_tag["select"]

    def test_shared_wins_at_large_n_cpu(self):
        """Figure 4's crossover: at N=64 the serialised master becomes the
        bottleneck and the shared tree takes over."""
        game = Gomoku(15, 5)
        rs = SharedTreeSimulation(game, EV, PLAT, num_workers=64).run(400)
        rl = LocalTreeSimulation(game, EV, PLAT, num_workers=64).run(400)
        assert rs.per_iteration < rl.per_iteration

    def test_local_wins_at_small_n_cpu(self):
        game = Gomoku(15, 5)
        rs = SharedTreeSimulation(game, EV, PLAT, num_workers=4).run(400)
        rl = LocalTreeSimulation(game, EV, PLAT, num_workers=4).run(400)
        assert rl.per_iteration < rs.per_iteration

    def test_batch_one_gpu_is_pathological(self):
        """Figure 3: B=1 serialises inferences and dominates the runtime."""
        game = Gomoku(9, 5)
        r1 = LocalTreeSimulation(game, EV, PLAT, 16, batch_size=1, use_gpu=True).run(200)
        r8 = LocalTreeSimulation(game, EV, PLAT, 16, batch_size=8, use_gpu=True).run(200)
        assert r1.per_iteration > 2 * r8.per_iteration

    def test_full_batch_worse_than_sub_batch_at_n16(self):
        """Figure 3/5: at N=16 the sub-batched local tree beats full batch
        because GPU compute overlaps the master's selections."""
        game = Gomoku(15, 5)
        rf = LocalTreeSimulation(game, EV, PLAT, 16, batch_size=16, use_gpu=True).run(400)
        rb = LocalTreeSimulation(game, EV, PLAT, 16, batch_size=8, use_gpu=True).run(400)
        assert rb.per_iteration < rf.per_iteration
