"""Tests for hardware specs and the latency model."""

import pytest

from repro.simulator.hardware import CPUSpec, GPUSpec, PlatformSpec, paper_platform
from repro.simulator.workload import LatencyModel


class TestCPUSpec:
    def test_paper_preset(self):
        plat = paper_platform()
        assert plat.cpu.num_cores == 64
        assert plat.cpu.max_threads == 128
        assert plat.cpu.llc_bytes == 256 * 2**20
        assert plat.gpu is not None

    def test_cpu_only_preset(self):
        assert paper_platform(with_gpu=False).gpu is None

    def test_cache_faster_than_ddr_enforced(self):
        with pytest.raises(ValueError):
            CPUSpec(child_scan_ddr=0.01e-6, child_scan_cache=0.1e-6)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            CPUSpec(dnn_latency=-1.0)

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            CPUSpec(num_cores=0)


class TestGPUSpec:
    def test_transfer_model_matches_paper(self):
        """T_PCIe for a move shipping N samples in N/B transfers is
        (N/B)*L + N/BW (Section 4.2)."""
        gpu = GPUSpec()
        n, b = 64, 8
        per_transfer = gpu.transfer_time(b)
        total = (n // b) * per_transfer
        expected = (n / b) * gpu.launch_latency + n * gpu.per_sample_transfer
        assert total == pytest.approx(expected)

    def test_compute_monotone_in_batch(self):
        gpu = GPUSpec()
        times = [gpu.compute_time(b) for b in range(1, 65)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_per_sample_compute_decreases(self):
        """Batching amortises the kernel base: per-sample time drops."""
        gpu = GPUSpec()
        assert gpu.compute_time(32) / 32 < gpu.compute_time(1)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            GPUSpec().compute_time(0)
        with pytest.raises(ValueError):
            GPUSpec().transfer_time(0)


class TestLatencyModel:
    def test_shared_slower_than_local(self):
        lat = LatencyModel(paper_platform())
        assert lat.select_node(10, shared=True) > lat.select_node(10, shared=False)
        assert lat.backup_node(shared=True) > lat.backup_node(shared=False)
        assert lat.vl_update(shared=True) > lat.vl_update(shared=False)

    def test_select_scales_with_fanout(self):
        lat = LatencyModel(paper_platform())
        assert lat.select_node(100, True) == pytest.approx(
            10 * lat.select_node(10, True)
        )

    def test_expand_scales_with_children(self):
        lat = LatencyModel(paper_platform())
        assert lat.expand(50, False) > lat.expand(5, False)

    def test_gpu_methods_require_gpu(self):
        lat = LatencyModel(paper_platform(with_gpu=False))
        with pytest.raises(ValueError):
            lat.gpu_compute(4)
        with pytest.raises(ValueError):
            lat.gpu_transfer(4)

    def test_negative_children_rejected(self):
        lat = LatencyModel(paper_platform())
        with pytest.raises(ValueError):
            lat.select_node(-1, True)
