"""Tests for the DES-backed ParallelScheme adapter."""

import numpy as np
import pytest

from repro.games import TicTacToe
from repro.mcts.evaluation import UniformEvaluator
from repro.parallel.base import SchemeName
from repro.simulator import SimulatedScheme, paper_platform

PLAT = paper_platform()


class TestSimulatedScheme:
    def test_prior_is_distribution(self):
        scheme = SimulatedScheme(
            SchemeName.LOCAL_TREE, UniformEvaluator(), PLAT, num_workers=4
        )
        prior = scheme.get_action_prior(TicTacToe(), 100)
        assert np.isclose(prior.sum(), 1.0)

    def test_virtual_time_accumulates(self):
        scheme = SimulatedScheme(
            SchemeName.SHARED_TREE, UniformEvaluator(), PLAT, num_workers=4
        )
        scheme.get_action_prior(TicTacToe(), 50)
        t1 = scheme.virtual_time
        scheme.get_action_prior(TicTacToe(), 50)
        assert scheme.virtual_time > t1 > 0

    def test_deterministic(self):
        def run():
            scheme = SimulatedScheme(
                SchemeName.LOCAL_TREE, UniformEvaluator(), PLAT,
                num_workers=8, batch_size=4, use_gpu=True,
            )
            prior = scheme.get_action_prior(TicTacToe(), 120)
            return prior, scheme.virtual_time

        (p1, t1), (p2, t2) = run(), run()
        assert np.allclose(p1, p2)
        assert t1 == t2

    def test_last_result_exposed(self):
        scheme = SimulatedScheme(
            SchemeName.SHARED_TREE, UniformEvaluator(), PLAT, num_workers=4
        )
        scheme.get_action_prior(TicTacToe(), 60)
        assert scheme.last_result is not None
        assert scheme.last_result.playouts == 60

    def test_rejects_non_tree_schemes(self):
        with pytest.raises(ValueError):
            SimulatedScheme(
                SchemeName.LEAF_PARALLEL, UniformEvaluator(), PLAT, num_workers=4
            )

    def test_name_matches(self):
        s = SimulatedScheme(
            SchemeName.LOCAL_TREE, UniformEvaluator(), PLAT, num_workers=2
        )
        assert s.name == SchemeName.LOCAL_TREE

    def test_pipeline_integration(self):
        """SimulatedScheme drops into play_episode like any scheme."""
        from repro.training.selfplay import play_episode

        scheme = SimulatedScheme(
            SchemeName.LOCAL_TREE, UniformEvaluator(), PLAT, num_workers=4
        )
        result = play_episode(TicTacToe(), scheme, num_playouts=30, rng=0)
        assert result.moves > 0
        assert scheme.virtual_time > 0
