"""Property-based tests for the discrete-event engine.

Random task programs are generated and the engine's global invariants
checked: clock monotonicity, work conservation, lock mutual exclusion,
and schedule determinism.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.engine import Acquire, Compute, Release, SimEngine
from repro.simulator.resources import SimLock


def random_program(seed, num_tasks, steps):
    """Build (engine, trace, expected busy) for a random lock/compute mix."""
    rng = np.random.default_rng(seed)
    engine = SimEngine()
    locks = [SimLock(f"l{i}") for i in range(2)]
    trace: list[tuple[str, float, str]] = []
    total_busy = 0.0

    def make_task(name, ops):
        def task():
            for kind, arg in ops:
                if kind == "compute":
                    trace.append((name, engine.now, "compute"))
                    yield Compute(arg)
                else:
                    lock = locks[arg]
                    yield Acquire(lock)
                    trace.append((name, engine.now, f"hold{arg}"))
                    yield Compute(0.5)
                    yield Release(lock)

        return task

    for t in range(num_tasks):
        ops = []
        for _ in range(steps):
            if rng.random() < 0.6:
                d = float(rng.integers(1, 5))
                ops.append(("compute", d))
                total_busy += d
            else:
                ops.append(("lock", int(rng.integers(0, 2))))
                total_busy += 0.5
        engine.spawn(make_task(f"t{t}", ops)(), f"t{t}")
    return engine, trace, total_busy


class TestEngineProperties:
    @given(
        seed=st.integers(0, 10_000),
        num_tasks=st.integers(1, 6),
        steps=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_work_conservation(self, seed, num_tasks, steps):
        """span <= total busy work (serial bound) and span >= busy work /
        num_tasks (perfect-parallel bound)."""
        engine, _, total_busy = random_program(seed, num_tasks, steps)
        span = engine.run()
        assert span <= total_busy + 1e-9
        assert span >= total_busy / num_tasks - 1e-9

    @given(
        seed=st.integers(0, 10_000),
        num_tasks=st.integers(2, 6),
        steps=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_clock_monotone_in_trace(self, seed, num_tasks, steps):
        engine, trace, _ = random_program(seed, num_tasks, steps)
        engine.run()
        times = [t for _, t, _ in trace]
        assert all(a <= b + 1e-12 for a, b in zip(times, times[1:]))

    @given(
        seed=st.integers(0, 10_000),
        num_tasks=st.integers(2, 5),
        steps=st.integers(2, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_deterministic_schedule(self, seed, num_tasks, steps):
        e1, t1, _ = random_program(seed, num_tasks, steps)
        e1.run()
        e2, t2, _ = random_program(seed, num_tasks, steps)
        e2.run()
        assert t1 == t2
        assert e1.now == e2.now

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_lock_holders_never_overlap(self, seed):
        """Reconstruct hold intervals per lock: they must not overlap."""
        rng = np.random.default_rng(seed)
        engine = SimEngine()
        lock = SimLock()
        intervals: list[tuple[float, float]] = []

        def task(delay, hold):
            def gen():
                yield Compute(delay)
                yield Acquire(lock)
                start = engine.now
                yield Compute(hold)
                intervals.append((start, engine.now))
                yield Release(lock)

            return gen

        for _ in range(4):
            engine.spawn(task(float(rng.integers(0, 3)), float(rng.integers(1, 4)))())
        engine.run()
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-12

    def test_all_tasks_complete(self):
        engine, _, _ = random_program(7, 5, 6)
        engine.run()
        assert all(t.done for t in engine.tasks)
