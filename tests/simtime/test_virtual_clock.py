"""VirtualClock unit suite (``simtime`` marker -- push lane).

The clock is the foundation every simtime scenario stands on, so its
contracts are asserted directly:

- **Clock conformance.**  ``WallClock`` and ``VirtualClock`` both satisfy
  the :class:`~repro.utils.clock.Clock` protocol the serving seams type
  against.
- **Ordering.**  Waiters fire in due order, FIFO on ties, whether time
  moves synchronously (:meth:`advance`) or through the driver
  (:meth:`run`), and a cancelled sleeper never blocks the timeline.
- **Determinism.**  The same script produces the same trace, run after
  run -- the property every scenario test inherits.
- **Interop.**  Virtual-time code composes with real asyncio primitives
  (locks, gather, tasks) with no event-loop monkeypatching.
"""

from __future__ import annotations

import asyncio
import contextlib

import pytest

from repro.mcts import SearchBudget
from repro.utils.clock import WALL_CLOCK, Clock, VirtualClock, WallClock

pytestmark = pytest.mark.simtime


class TestClockProtocol:
    def test_wall_and_virtual_satisfy_the_seam(self):
        assert isinstance(WALL_CLOCK, Clock)
        assert isinstance(WallClock(), Clock)
        assert isinstance(VirtualClock(), Clock)

    def test_virtual_counters_share_one_timeline(self):
        clock = VirtualClock(start=5.0)
        assert clock.monotonic() == clock.perf_counter() == 5.0
        clock.advance(2.5)
        assert clock.monotonic() == clock.perf_counter() == 7.5

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="grace_yields"):
            VirtualClock(grace_yields=0)
        with pytest.raises(ValueError, match="backwards"):
            VirtualClock().advance(-1.0)


async def _sleeper(clock, trace, name, delay):
    await clock.sleep(delay)
    trace.append((name, clock.now))


class TestSynchronousAdvance:
    def test_advance_releases_due_waiters_in_due_order(self):
        clock = VirtualClock()
        trace: list = []

        async def main():
            tasks = [
                asyncio.create_task(_sleeper(clock, trace, name, delay))
                for name, delay in [("c", 3.0), ("a", 1.0), ("b", 2.0)]
            ]
            await asyncio.sleep(0)  # let all three park
            assert clock.waiter_count == 3
            assert clock.next_due() == 1.0
            fired = clock.advance(2.0)
            assert fired == 2  # a and b are due, c is not
            await asyncio.gather(
                *tasks[1:3]
            )  # released tasks resume on the next loop pass
            # batch advance moves now to the target *before* resumption
            # (per-waiter due-time observation is the driver's job), but
            # resumption order is still due order
            assert trace == [("a", 2.0), ("b", 2.0)]
            assert clock.now == 2.0 and clock.waiter_count == 1
            assert clock.advance_to(10.0) == 1
            await tasks[0]
            assert trace[-1] == ("c", 10.0)
            assert clock.now == 10.0

        asyncio.run(main())

    def test_advance_to_the_past_is_a_noop(self):
        clock = VirtualClock(start=100.0)
        assert clock.advance_to(50.0) == 0
        assert clock.now == 100.0

    def test_negative_sleep_is_due_immediately(self):
        clock = VirtualClock()
        trace: list = []

        async def main():
            task = asyncio.create_task(_sleeper(clock, trace, "x", -5.0))
            await asyncio.sleep(0)
            assert clock.next_due() == 0.0
            clock.advance(0.0)
            await task

        asyncio.run(main())
        assert trace == [("x", 0.0)]


class TestDriver:
    def test_driver_fires_in_due_order(self):
        clock = VirtualClock()
        trace: list = []

        async def main():
            await asyncio.gather(
                _sleeper(clock, trace, "c", 3.0),
                _sleeper(clock, trace, "a", 1.0),
                _sleeper(clock, trace, "b", 2.0),
            )

        clock.run(main())
        assert trace == [("a", 1.0), ("b", 2.0), ("c", 3.0)]
        assert clock.now == 3.0
        assert clock.sleeps == 3 and clock.fires == 3

    def test_simultaneous_waiters_fire_fifo(self):
        clock = VirtualClock()
        trace: list = []

        async def main():
            await asyncio.gather(
                *[_sleeper(clock, trace, i, 1.0) for i in range(8)]
            )

        clock.run(main())
        assert [name for name, _ in trace] == list(range(8))
        assert all(t == 1.0 for _, t in trace)

    def test_nested_sleeps_chain(self):
        clock = VirtualClock()
        trace: list = []

        async def chained():
            for delay in (5.0, 0.5, 10.0):
                await clock.sleep(delay)
                trace.append(clock.now)

        clock.run(chained())
        assert trace == [5.0, 5.5, 15.5]

    def test_cancelled_sleeper_never_blocks_the_timeline(self):
        clock = VirtualClock()
        trace: list = []

        async def main():
            doomed = asyncio.create_task(_sleeper(clock, trace, "x", 10.0))
            live = asyncio.create_task(_sleeper(clock, trace, "y", 20.0))
            await asyncio.sleep(0)
            doomed.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await doomed
            await live

        clock.run(main())
        assert trace == [("y", 20.0)], "the cancelled waiter must be skipped"
        assert clock.now == 20.0

    def test_same_script_same_trace(self):
        def one_run() -> list:
            clock = VirtualClock()
            trace: list = []

            async def worker(name, start, period, reps):
                await clock.sleep(start)
                for _ in range(reps):
                    trace.append((name, clock.now))
                    await clock.sleep(period)

            async def main():
                await asyncio.gather(
                    worker("a", 0.3, 1.0, 5),
                    worker("b", 0.7, 0.9, 5),
                    worker("c", 0.0, 1.3, 5),
                )

            clock.run(main())
            return trace

        first = one_run()
        assert first == one_run()
        assert len(first) == 15

    def test_interop_with_asyncio_lock(self):
        clock = VirtualClock()
        lock = asyncio.Lock()
        trace: list = []

        async def holder(name, hold_s):
            async with lock:
                await clock.sleep(hold_s)
                trace.append((name, clock.now))

        async def main():
            await asyncio.gather(holder("a", 1.0), holder("b", 1.0))

        clock.run(main())
        # b's hold starts only when a releases: real lock, virtual time
        assert trace == [("a", 1.0), ("b", 2.0)]

    def test_driving_inside_an_existing_loop(self):
        clock = VirtualClock()

        async def main():
            async with clock.driving():
                await clock.sleep(1234.0)
            return clock.now

        assert asyncio.run(main()) == 1234.0


class TestBudgetOnVirtualTime:
    def test_deadline_fires_on_simulated_time_only(self):
        clock = VirtualClock()
        bc = SearchBudget(
            num_playouts=1_000, time_budget_ms=50.0, clock=clock
        ).start()
        bc.note(bc.budget.min_playouts)  # past the anytime floor
        assert not bc.done()
        clock.advance(0.049)
        snap = bc.snapshot()
        assert not snap.expired
        assert snap.remaining_ms == pytest.approx(1.0)
        clock.advance(0.001)  # exactly at the deadline
        assert bc.snapshot().expired and bc.done()

    def test_split_shares_deadline_and_clock(self):
        clock = VirtualClock(start=7.0)
        bc = SearchBudget(num_playouts=9, time_budget_ms=30.0, clock=clock).start()
        child = bc.split(3)
        assert child.deadline == bc.deadline == pytest.approx(7.0 + 0.030)
        assert child.clock is clock
