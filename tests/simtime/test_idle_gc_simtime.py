"""Idle-GC edge cases under virtual time (``simtime`` marker).

The sweep's corner cases live at time scales wall-clock tests cannot
visit -- hours of idle cadence, a GC interval much longer than the TTL,
a sweep racing a move that takes minutes -- and at boundaries too tight
to hit reliably on a real clock.  On a VirtualClock each one is a few
deterministic lines:

- the background sweep reaps on its virtual cadence, and a 24-simulated-
  hour empty gateway stays bounded;
- a sweep racing session creation expires exactly the stale session;
- a session whose *move is in flight* is never reaped however stale its
  ``last_active`` looks (the satellite regression for the historic
  ``perf_counter``-vs-``monotonic`` timebase mix: activity stamps and
  the sweep now read one injected clock).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.mcts import UniformEvaluator
from repro.serving import (
    MatchGateway,
    SessionNotFound,
    SessionStatus,
    SimulatedSearchExecutor,
)
from repro.serving.engine import LatencyTracker
from repro.utils.clock import VirtualClock

pytestmark = pytest.mark.simtime


def _gateway(clock, executor=None, **overrides) -> MatchGateway:
    kwargs = dict(
        backend="thread",
        workers=1,
        deadline_ms=50.0,
        num_playouts=2,
        idle_timeout_s=60.0,
        gc_interval_s=30.0,
        seed=0,
        clock=clock,
        executor=executor
        if executor is not None
        else SimulatedSearchExecutor(clock),
    )
    kwargs.update(overrides)
    return MatchGateway(UniformEvaluator(), **kwargs)


class TestSweepCadence:
    def test_background_sweep_reaps_on_virtual_time(self):
        clock = VirtualClock()
        gw = _gateway(clock, idle_timeout_s=30.0, gc_interval_s=10.0)

        async def main():
            async with gw:
                await gw.create_session()
                # sweeps at 10/20/30 see idle <= 30 (not strictly past
                # the TTL); the one at t=40 reaps
                await clock.sleep(41.0)
                return gw.session_count, gw.stats()

        leftover, stats = clock.run(main())
        assert leftover == 0
        assert stats.sessions_expired == 1

    def test_gc_interval_much_longer_than_ttl(self):
        """With interval >> TTL the session outlives its timeout until
        the next sweep actually runs -- the documented cadence contract,
        directly observable in virtual time."""
        clock = VirtualClock()
        gw = _gateway(clock, idle_timeout_s=60.0, gc_interval_s=3600.0)

        async def main():
            async with gw:
                await gw.create_session()
                await clock.sleep(3599.0)
                alive_before_sweep = gw.session_count
                await clock.sleep(2.0)  # the t=3600 sweep runs in between
                return alive_before_sweep, gw.session_count, gw.stats()

        alive, after, stats = clock.run(main())
        assert alive == 1, "idle past TTL but unswept: still in the table"
        assert after == 0 and stats.sessions_expired == 1

    def test_24_simulated_hours_of_empty_sweeps_stay_bounded(self):
        clock = VirtualClock()
        gw = _gateway(clock, idle_timeout_s=300.0, gc_interval_s=60.0)

        async def main():
            async with gw:
                await clock.sleep(24 * 3600.0)
                return gw.session_count, gw.stats()

        leftover, stats = clock.run(main())
        assert clock.now >= 24 * 3600.0
        assert clock.fires >= 24 * 60, "one sweep per simulated minute"
        assert leftover == 0
        assert stats.sessions_created == stats.sessions_expired == 0
        assert stats.moves_served == stats.rejected == 0

    def test_expiry_surfaces_as_session_not_found(self):
        clock = VirtualClock()
        gw = _gateway(clock, idle_timeout_s=60.0, gc_interval_s=30.0)

        async def main():
            async with gw:
                session = await gw.create_session()
                await clock.sleep(100.0)  # the t=90 sweep reaps mid-think
                with pytest.raises(SessionNotFound):
                    await gw.play_move(session)
                return gw.stats()

        stats = clock.run(main())
        assert stats.sessions_expired == 1


class TestSweepBoundaries:
    def test_sweep_races_session_creation(self):
        """A sweep lands between an old session and a fresh one: exactly
        the stale session is reaped, at the exact TTL boundary (strict
        ``>`` -- idle == timeout survives)."""
        clock = VirtualClock()
        gw = _gateway(clock, idle_timeout_s=30.0)

        async def main():
            old = await gw.create_session()
            clock.advance(29.5)
            fresh = await gw.create_session()
            assert gw.expire_idle() == [], "29.5s idle < 30s TTL"
            clock.advance(0.5)
            assert gw.expire_idle() == [], "exactly the TTL is not past it"
            clock.advance(0.5)
            assert gw.expire_idle() == [old]
            assert gw.session_count == 1
            clock.advance(31.0)
            assert gw.expire_idle() == [fresh]
            await gw.aclose()

        asyncio.run(main())
        assert gw.stats().sessions_expired == 2

    def test_mid_move_gc_never_reaps_an_active_session(self):
        """The satellite regression: a search takes 5 simulated minutes,
        the GC sweeps every 30s with a 60s TTL -- the sweep runs *during*
        the move and must spare the session (held lock; and the move
        stamped ``last_active`` at its own start on the same clock).
        Afterwards the same sweep cadence must still reap it once it is
        genuinely idle -- the spare is surgical, not a leak."""
        clock = VirtualClock()
        executor = SimulatedSearchExecutor(clock)
        gw = _gateway(
            clock, executor=executor, idle_timeout_s=60.0, gc_interval_s=30.0
        )

        async def main():
            async with gw:
                session = await gw.create_session()
                executor.expect(300.0)  # the search "runs" for 5 minutes
                reply = await gw.play_move(session, deadline_ms=50.0)
                mid_move_state = (gw.session_count, gw.stats().sessions_expired)
                # genuinely idle now: the t=390 sweep (90s past the move)
                # must reap it
                await clock.sleep(91.0)
                return reply, mid_move_state, gw.session_count, gw.stats()

        reply, (alive, expired_mid), leftover, stats = clock.run(main())
        assert reply.status is SessionStatus.ACTIVE
        assert reply.latency_ms == pytest.approx(300_000.0)
        assert (alive, expired_mid) == (1, 0), (
            "the sweep that ran mid-move reaped an active session"
        )
        assert leftover == 0 and stats.sessions_expired == 1


class TestBoundedTelemetry:
    def test_latency_tracker_window_bounds_memory_over_sim_hours(self):
        clock = VirtualClock()
        tracker = LatencyTracker(window=16, clock=clock)
        for _ in range(1000):
            with tracker.measure():
                clock.advance(0.25)  # hours of virtual load, 16 floats kept
        assert len(tracker._samples) == 16
        assert tracker.count == 1000
        assert tracker.percentile(99) == pytest.approx(0.25)
        assert tracker.mean == pytest.approx(0.25)

    def test_measure_records_virtual_duration(self):
        clock = VirtualClock(start=40.0)
        tracker = LatencyTracker(clock=clock)
        with tracker.measure():
            clock.advance(1.5)
        assert tracker.count == 1
        assert tracker.percentile(50) == pytest.approx(1.5)
