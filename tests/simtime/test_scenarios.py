"""ScenarioRunner scenario suite (``simtime`` marker -- push lane).

Each test is a scripted client population driven through the *real*
gateway on a VirtualClock -- previously-impossible assertions, each in
seconds of wall time:

- **Reproducibility.**  Same spec, same transcript, bit for bit; a
  failed assertion dumps the spec JSON that regenerates the exact
  schedule (:meth:`ScenarioResult.require`).
- **Exact accounting at scale.**  Hundreds of sessions over simulated
  hours with admission, rejection, expiry and completion counters that
  reconcile exactly between client-observed events and gateway stats.
- **Starvation freedom.**  Under sustained overload with retrying
  clients, every admitted session still terminates -- no client is shed
  forever.
- **Deadline-miss exactness.**  With modelled service times, which moves
  miss their deadline is a pure function of the script, and the
  gateway's miss counter agrees with the client-side flags computed on
  the same virtual clock (the unified-timebase satellite).
"""

from __future__ import annotations

import json

import pytest

from repro.serving import ScenarioResult, ScenarioRunner, ScenarioSpec, generate_script

pytestmark = pytest.mark.simtime


def _by_client(result: ScenarioResult) -> dict[int, list]:
    per: dict[int, list] = {}
    for event in result.events:
        per.setdefault(event[1], []).append(event)
    return per


TERMINAL = {"done", "resigned", "expired", "starved", "admit_reject"}


class TestReproducibility:
    def test_same_spec_same_transcript(self):
        spec = ScenarioSpec(seed=11, sessions=150, arrival_window_s=900.0)
        runner = ScenarioRunner(spec)
        first, second = runner.run(), runner.run()
        assert first.events == second.events
        assert first.stats == second.stats
        assert first.sim_seconds == second.sim_seconds
        assert first.searches == second.searches

    def test_different_seeds_differ(self):
        a = ScenarioRunner(ScenarioSpec(seed=1, sessions=40)).run()
        b = ScenarioRunner(ScenarioSpec(seed=2, sessions=40)).run()
        assert a.events != b.events

    def test_script_generation_is_pure(self):
        spec = ScenarioSpec(seed=5, sessions=30)
        assert generate_script(spec) == generate_script(spec)
        assert generate_script(spec) != generate_script(
            ScenarioSpec(seed=6, sessions=30)
        )

    def test_require_failure_carries_the_replay_schedule(self):
        result = ScenarioRunner(ScenarioSpec(seed=3, sessions=5)).run()
        with pytest.raises(AssertionError) as excinfo:
            result.require(False, "demonstration failure")
        text = str(excinfo.value)
        assert "demonstration failure" in text
        bundle = json.loads(text.split("--- simtime replay schedule ---\n")[1])
        assert bundle["spec"]["seed"] == 3
        assert bundle["spec"]["sessions"] == 5
        assert "ScenarioRunner" in bundle["replay"]


class TestExactAccounting:
    @pytest.fixture(scope="class")
    def result(self):
        return ScenarioRunner(
            ScenarioSpec(seed=0, sessions=200, arrival_window_s=1800.0)
        ).run()

    def test_every_client_reaches_a_terminal_event(self, result):
        per = _by_client(result)
        assert len(per) == result.spec.sessions
        for client_id, events in per.items():
            kinds = {e[2] for e in events}
            result.require(
                bool(kinds & TERMINAL),
                f"client {client_id} never reached a terminal event",
            )

    def test_counters_reconcile_with_observed_events(self, result):
        s = result.stats
        assert result.admitted + len(result.of_kind("admit_reject")) == (
            result.spec.sessions
        )
        assert s.sessions_created == result.admitted
        assert s.moves_served == len(result.moves)
        assert s.rejected == len(result.of_kind("admit_reject")) + len(
            result.of_kind("move_reject")
        )
        assert s.sessions_finished == len(result.of_kind("done"))
        assert s.sessions_resigned == len(result.of_kind("resigned"))
        # idle sessions swept without a client observing it are why this
        # is >=, and the lifecycle identity is why it closes exactly
        assert s.sessions_expired >= len(result.of_kind("expired"))
        assert (
            s.sessions_finished + s.sessions_resigned + s.sessions_expired
            == result.admitted
        )

    def test_no_leftover_sessions(self, result):
        assert result.leftover_sessions == 0
        assert result.stats.inflight == 0

    def test_summary_is_json_ready(self, result):
        summary = result.summary()
        row = json.loads(json.dumps(summary))
        assert row["sessions"] == 200
        assert 0.0 <= row["admission_rate"] <= 1.0
        assert row["sim_seconds"] > 0 and row["wall_seconds"] > 0


class TestAdmissionCap:
    def test_session_table_cap_sheds_exactly_the_overflow(self):
        """Long-lived sessions arriving faster than they finish: the
        table saturates and every arrival past capacity is an
        *accounted* admit-reject, never a queue."""
        spec = ScenarioSpec(
            seed=7,
            sessions=120,
            arrival_window_s=60.0,
            think_time_s=(30.0, 60.0),
            moves_per_session=(1, 1),
            max_sessions=25,
            idle_timeout_s=600.0,
        )
        result = ScenarioRunner(spec).run()
        rejects = len(result.of_kind("admit_reject"))
        result.require(rejects > 0, "cap never bound: scenario too gentle")
        assert result.admitted == spec.sessions - rejects
        assert result.stats.sessions_created == result.admitted
        assert result.leftover_sessions == 0


class TestStarvationFreedom:
    def test_saturated_gateway_starves_no_admitted_client(self):
        """A 5-second burst of 60 clients against max_inflight=2: heavy
        backpressure, but every admitted client's retry loop eventually
        serves -- zero ``starved`` events and full terminal coverage."""
        spec = ScenarioSpec(
            seed=13,
            sessions=60,
            arrival_window_s=5.0,
            think_time_s=(0.1, 0.3),
            service_time_ms=(20.0, 40.0),
            deadline_ms=(50.0, 100.0),
            moves_per_session=(1, 3),
            slow_client_fraction=0.0,
            retry_backoff_s=0.05,
            max_retries_per_move=200,
            max_inflight=2,
        )
        result = ScenarioRunner(spec).run()
        result.require(
            len(result.of_kind("move_reject")) > 0,
            "no backpressure: the scenario never contended",
        )
        result.require(
            not result.of_kind("starved"), "an admitted client was starved"
        )
        per = _by_client(result)
        for client_id, events in per.items():
            kinds = {e[2] for e in events}
            result.require(
                bool(kinds & {"done", "resigned", "expired"}),
                f"admitted client {client_id} never terminated",
            )


class TestDeadlineMissExactness:
    def test_misses_are_a_pure_function_of_the_script(self):
        """Sparse arrivals (no inflight overlap): every served move's
        latency is exactly its scripted duration, so the set of deadline
        misses is computable from the script alone -- and the gateway's
        counter (same clock) agrees with the client-side flags."""
        spec = ScenarioSpec(
            seed=21,
            sessions=80,
            arrival_window_s=7200.0,
            deadline_ms=(10.0, 200.0),
            service_time_ms=(1.0, 8.0),
            slow_client_fraction=0.15,
            slow_stall_ms=300.0,
        )
        result = ScenarioRunner(spec).run()
        script = {c.client_id: c for c in generate_script(spec)}
        predicted = 0
        for client_id, events in _by_client(result).items():
            served = [e for e in events if e[2] == "move"]
            client = script[client_id]
            for idx, event in enumerate(served):
                duration = client.moves[idx].duration_ms
                assert event[5] == pytest.approx(duration, abs=1e-6), (
                    f"client {client_id} move {idx}: latency {event[5]} "
                    f"!= scripted {duration}"
                )
                scripted_miss = duration > client.deadline_ms
                predicted += scripted_miss
                assert bool(event[6]) == scripted_miss
        result.require(
            result.stats.deadline_misses == predicted,
            f"gateway counted {result.stats.deadline_misses} misses, "
            f"script predicts {predicted}",
        )
        result.require(predicted > 0, "sweep never produced a miss")

    def test_slow_clients_always_miss_tight_deadlines(self):
        spec = ScenarioSpec(
            seed=22,
            sessions=60,
            arrival_window_s=7200.0,
            deadline_ms=(10.0, 200.0),
            slow_client_fraction=0.25,
            slow_stall_ms=300.0,
        )
        result = ScenarioRunner(spec).run()
        script = {c.client_id: c for c in generate_script(spec)}
        slow_served = [
            e for e in result.moves if script[e[1]].slow
        ]
        result.require(bool(slow_served), "no slow client was ever served")
        for event in slow_served:
            # stall 300ms > every deadline in the 10-200ms sweep
            assert event[6] == 1, (
                f"slow client {event[1]} served within deadline?"
            )
