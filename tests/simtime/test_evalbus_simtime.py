"""Evaluation-bus scenarios on the virtual clock (``simtime`` marker).

With ``evalbus=True`` the scenario's gateway runs the cross-session bus
in **inline** mode (a virtual clock admits no scheduler thread: wall
time inside one would desynchronise from the simulated timeline), and
every scripted search pays the ``bus_linger_ms`` surcharge the bus
would cost a leaf waiting for batch-mates.  The properties pinned here:

- same spec, same transcript, bit for bit -- the bus adds no
  nondeterminism to the harness;
- ``evalbus=False`` (the default) reproduces the exact pre-bus
  transcripts, so every historical scenario stays a regression anchor;
- the surcharge is visible: bus-on latencies dominate bus-off ones for
  the same schedule, and deadline misses can only move one way.
"""

from __future__ import annotations

import pytest

from repro.serving import ScenarioRunner, ScenarioSpec

pytestmark = pytest.mark.simtime


class TestEvalbusScenarios:
    def test_same_spec_same_transcript_with_bus(self):
        spec = ScenarioSpec(
            seed=23, sessions=120, arrival_window_s=600.0, evalbus=True
        )
        runner = ScenarioRunner(spec)
        first, second = runner.run(), runner.run()
        assert first.events == second.events
        assert first.stats == second.stats
        assert first.sim_seconds == second.sim_seconds
        assert first.stats.bus_enabled

    def test_bus_off_spec_matches_pre_bus_transcript(self):
        """The default spec must be indistinguishable from one that
        never heard of the bus: same events with and without naming the
        (default) flag, and the gateway reports the bus disabled."""
        base = ScenarioSpec(seed=5, sessions=60, arrival_window_s=300.0)
        explicit = ScenarioSpec(
            seed=5, sessions=60, arrival_window_s=300.0, evalbus=False
        )
        a = ScenarioRunner(base).run()
        b = ScenarioRunner(explicit).run()
        assert a.events == b.events
        assert not a.stats.bus_enabled

    def test_linger_surcharge_is_visible_and_one_sided(self):
        """Same schedule with and without the bus: every served move's
        latency grows by at least the linger surcharge (never shrinks),
        so misses can only appear, never vanish."""
        kwargs = dict(
            seed=31,
            sessions=40,
            arrival_window_s=200.0,
            deadline_ms=(60.0, 120.0),
            service_time_ms=(5.0, 20.0),
        )
        off = ScenarioRunner(ScenarioSpec(**kwargs)).run()
        on = ScenarioRunner(
            ScenarioSpec(**kwargs, evalbus=True, bus_linger_ms=8.0)
        ).run()

        def latencies(result):
            return {
                (e[1], e[4]): e[5] for e in result.events if e[2] == "move"
            }

        lat_off, lat_on = latencies(off), latencies(on)
        shared = set(lat_off) & set(lat_on)
        assert shared, "schedules diverged entirely"
        assert all(lat_on[k] >= lat_off[k] + 7.9 for k in shared)
        assert on.stats.deadline_misses >= off.stats.deadline_misses
