"""The PR-5 soak properties, re-expressed in virtual time (``simtime``).

Same gateway, same public API, same three guarantees the wall-clock soak
asserts -- no session leaks, bounded latency, exact rejection accounting
-- but on a :class:`~repro.utils.clock.VirtualClock` with modelled
search durations, which upgrades every bound from "generous slack for a
loaded CI box" to an exact number:

- the admission-scaled latency bound is asserted *tight*
  (``max_inflight * service_time``, no +1500 ms scheduler allowance);
- backpressure outcomes are exact counts, not ``>= 1``;
- the whole 64-session soak is deterministic and runs in the push lane.

The wall-clock original survives as a thin nightly smoke
(``tests/serving/test_gateway_soak.py``) validating WallClock parity.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.mcts import UniformEvaluator
from repro.serving import (
    GatewayOverloaded,
    MatchGateway,
    SimulatedSearchExecutor,
)
from repro.utils.clock import VirtualClock

pytestmark = pytest.mark.simtime

SESSIONS = 64
DEADLINE_MS = 50.0
SERVICE_S = 0.02  # modelled per-search virtual cost
MAX_INFLIGHT = 8
#: the admission-scaled bound, now exact: a served move waits behind at
#: most MAX_INFLIGHT - 1 other in-flight searches, each charging
#: SERVICE_S of virtual time, plus its own
TIGHT_BOUND_MS = MAX_INFLIGHT * SERVICE_S * 1e3


async def _play_to_completion(
    gw: MatchGateway, clock: VirtualClock, results: list, think_s: float = 1.0
) -> None:
    """One client: think, move, retry on 503 with virtual backoff."""
    session = await gw.create_session("tictactoe")
    moves = 0
    retries = 0
    latencies: list[float] = []
    while True:
        await clock.sleep(think_s)
        try:
            reply = await gw.play_move(session, deadline_ms=DEADLINE_MS)
        except GatewayOverloaded:
            retries += 1
            await clock.sleep(0.002)
            continue
        moves += 1
        latencies.append(reply.latency_ms)
        if reply.done:
            results.append((session, moves, retries, latencies))
            return


def _run_soak(sessions: int, seed: int = 0):
    clock = VirtualClock()
    executor = SimulatedSearchExecutor(clock, default_duration_s=SERVICE_S)
    gw = MatchGateway(
        UniformEvaluator(),
        backend="thread",
        workers=1,
        deadline_ms=DEADLINE_MS,
        num_playouts=16,
        max_inflight=MAX_INFLIGHT,
        max_sessions=sessions + 8,
        idle_timeout_s=3600.0,
        gc_interval_s=60.0,
        seed=seed,
        clock=clock,
        executor=executor,
    )
    results: list = []

    async def main():
        async with gw:
            await asyncio.gather(
                *[_play_to_completion(gw, clock, results) for _ in range(sessions)]
            )
            return gw.stats(), gw.session_count

    stats, leftover = clock.run(main())
    return gw, results, stats, leftover, clock


class TestGatewaySimSoak:
    @pytest.fixture(scope="class")
    def soak_run(self):
        return _run_soak(SESSIONS)

    def test_all_sessions_complete(self, soak_run):
        _, results, stats, _, _ = soak_run
        assert len(results) == SESSIONS
        assert stats.sessions_created == SESSIONS
        assert stats.sessions_finished == SESSIONS
        ids = {sid for sid, *_ in results}
        assert ids == set(range(min(ids), min(ids) + SESSIONS))

    def test_zero_session_leaks_after_gc(self, soak_run):
        gw, _, _, leftover, clock = soak_run
        assert leftover == 0
        swept = gw.expire_idle(now=clock.now + 1e9)
        assert swept == [] and gw.session_count == 0

    def test_move_accounting_reconciles(self, soak_run):
        _, results, stats, _, _ = soak_run
        assert stats.moves_served == sum(moves for _, moves, _, _ in results)
        assert stats.rejected == sum(r for _, _, r, _ in results)
        assert stats.inflight == 0

    def test_latency_within_tight_admission_scaled_bound(self, soak_run):
        """The wall soak needs +1500 ms of scheduler slack here; virtual
        time asserts the bound the architecture actually promises."""
        _, results, stats, _, _ = soak_run
        worst = max(max(lats) for *_, lats in results)
        assert worst <= TIGHT_BOUND_MS + 1e-6, (
            f"worst served move {worst:.3f}ms exceeds the exact "
            f"admission-scaled bound {TIGHT_BOUND_MS}ms"
        )
        assert stats.latency_p99_ms <= TIGHT_BOUND_MS + 1e-6

    def test_soak_is_deterministic(self):
        _, r1, s1, l1, c1 = _run_soak(24, seed=3)
        _, r2, s2, l2, c2 = _run_soak(24, seed=3)
        assert r1 == r2
        assert s1 == s2
        assert (l1, c1.now) == (l2, c2.now)


class TestForcedBackpressureExact:
    def test_rejection_outcome_is_exact(self):
        """16 simultaneous moves against max_inflight=1: in virtual time
        the outcome is not ``served >= 1`` but *exactly* one served and
        fifteen rejected, every run."""
        clock = VirtualClock()
        executor = SimulatedSearchExecutor(clock, default_duration_s=0.1)
        gw = MatchGateway(
            UniformEvaluator(),
            backend="thread",
            workers=1,
            deadline_ms=200.0,
            num_playouts=8,
            max_inflight=1,
            seed=1,
            clock=clock,
            executor=executor,
        )

        async def main():
            async with gw:
                sessions = [await gw.create_session() for _ in range(16)]
                replies = await asyncio.gather(
                    *[gw.play_move(s, deadline_ms=200.0) for s in sessions],
                    return_exceptions=True,
                )
                served = [r for r in replies if not isinstance(r, Exception)]
                rejected = [
                    r for r in replies if isinstance(r, GatewayOverloaded)
                ]
                assert len(served) + len(rejected) == 16
                return len(served), len(rejected), gw.stats()

        served, rejected, stats = clock.run(main())
        assert (served, rejected) == (1, 15)
        assert stats.rejected == 15 and stats.moves_served == 1


class TestModelledLatency:
    def test_latency_stamp_is_the_modelled_duration(self):
        """With an armed duration the gateway's latency stamp *is* the
        script's service time, so deadline misses are exact functions of
        the scenario (tolerance 0: no scheduler noise to absorb)."""
        clock = VirtualClock()
        executor = SimulatedSearchExecutor(clock)
        gw = MatchGateway(
            UniformEvaluator(),
            backend="thread",
            workers=1,
            deadline_ms=50.0,
            num_playouts=4,
            deadline_tolerance_ms=0.0,
            seed=0,
            clock=clock,
            executor=executor,
        )

        async def main():
            async with gw:
                session = await gw.create_session("tictactoe")
                executor.expect(0.010)
                fast = await gw.play_move(session, deadline_ms=50.0)
                executor.expect(0.060)
                slow = await gw.play_move(session, deadline_ms=50.0)
                return fast, slow, gw.stats()

        fast, slow, stats = clock.run(main())
        assert fast.latency_ms == pytest.approx(10.0)
        assert slow.latency_ms == pytest.approx(60.0)
        assert stats.deadline_misses == 1
        assert stats.moves_served == 2


class TestClockSeamGuards:
    def test_process_backend_rejects_virtual_clock(self):
        with pytest.raises(ValueError, match="wall time"):
            MatchGateway(
                UniformEvaluator(), backend="process", clock=VirtualClock()
            )

    def test_process_backend_rejects_injected_executor(self):
        clock = VirtualClock()
        with pytest.raises(ValueError, match="thread-backend"):
            MatchGateway(
                UniformEvaluator(),
                backend="process",
                executor=SimulatedSearchExecutor(clock),
            )

    def test_injected_executor_is_borrowed_not_owned(self):
        clock = VirtualClock()
        executor = SimulatedSearchExecutor(clock)
        gw = MatchGateway(
            UniformEvaluator(), backend="thread", clock=clock, executor=executor
        )

        async def main():
            async with gw:
                pass

        clock.run(main())
        # aclose() must not have shut the borrowed executor down
        assert executor.submit(lambda: 41 + 1).result() == 42
