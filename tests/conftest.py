"""Shared fixtures and numerical helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.games import ConnectFour, Gomoku, SyntheticTreeGame, TicTacToe
from repro.simulator.hardware import CPUSpec, GPUSpec, PlatformSpec


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def tictactoe():
    return TicTacToe()


@pytest.fixture
def small_gomoku():
    """6x6 four-in-a-row: big enough for interesting trees, fast tests."""
    return Gomoku(size=6, n_in_row=4)


@pytest.fixture
def connect4():
    return ConnectFour()


@pytest.fixture
def synthetic_game():
    return SyntheticTreeGame(fanout=4, depth_limit=6, board_size=5, seed=7)


@pytest.fixture
def small_platform():
    """Low-core platform with a GPU, for fast simulator tests."""
    return PlatformSpec(
        cpu=CPUSpec(name="test-cpu", num_cores=8),
        gpu=GPUSpec(name="test-gpu"),
    )


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f wrt array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def assert_grad_close(analytic: np.ndarray, numeric: np.ndarray, tol: float = 1e-5):
    """Relative-error gradient comparison robust to scale."""
    denom = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
    rel = np.abs(analytic - numeric) / denom
    assert rel.max() < tol, f"max relative gradient error {rel.max():.2e} >= {tol}"
