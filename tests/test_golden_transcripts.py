"""Golden-transcript regression fixtures: the refactor tripwire.

Each fixture in ``tests/fixtures/golden_*.json`` is a seeded serial
self-play transcript -- network init seed, search seed, episode seed,
and the resulting move list -- generated against the current stack
(array tree backend + fused float32 inference).  The tests replay the
exact same configuration and assert **move-for-move equality**.

Why this exists: the evaluator stack is now four layers deep (game
encoding -> tree backend -> batching/cache -> compiled inference plan),
and PRs 2-4 each promised "bit-identical, just faster".  These fixtures
pin that promise across *future* refactors: any change to canonical
keys, PUCT tie-breaking, plan compilation, RNG plumbing, or masking that
shifts even one move of one episode fails here first, with a diffable
transcript instead of a silently drifted benchmark.

Regenerate (only when a change is *supposed* to alter search behaviour,
and say so in the commit):

    PYTHONPATH=src python tests/test_golden_transcripts.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.games import make_game
from repro.games.base import build_network_for
from repro.mcts import NetworkEvaluator, SerialMCTS
from repro.training.selfplay import play_episode

FIXTURE_DIR = Path(__file__).parent / "fixtures"

#: fixture name -> full generation recipe.  Everything that influences
#: the transcript is pinned here; the JSON additionally records the
#: recipe so a mismatch between code and fixture fails loudly.
SPECS: dict[str, dict] = {
    "tictactoe": {
        "game": "tictactoe",
        "channels": [4, 8, 8],
        "net_seed": 11,
        "search_seed": 12,
        "episode_seed": 13,
        "playouts": 32,
        "temperature_moves": 4,
        "max_moves": None,
    },
    "connect4": {
        "game": "connect4",
        "channels": [4, 8, 8],
        "net_seed": 21,
        "search_seed": 22,
        "episode_seed": 23,
        "playouts": 24,
        "temperature_moves": 6,
        "max_moves": None,
    },
    "gomoku9": {
        "game": "gomoku9",
        "channels": [4, 8, 8],
        "net_seed": 31,
        "search_seed": 32,
        "episode_seed": 33,
        "playouts": 16,
        # cap the episode: full 9x9 games would dominate suite runtime
        # without adding regression coverage beyond the first plies
        "max_moves": 12,
        "temperature_moves": 4,
    },
}


def _build_game(name: str):
    if name == "gomoku9":
        return make_game("gomoku", 9)
    return make_game(name)


def play_transcript(spec: dict) -> dict:
    """Run the spec's seeded self-play episode on the current stack."""
    game = _build_game(spec["game"])
    net = build_network_for(
        game, channels=tuple(spec["channels"]), rng=spec["net_seed"]
    )
    net.set_inference_backend("fused")
    agent = SerialMCTS(
        NetworkEvaluator(net),
        dirichlet_epsilon=0.25,
        rng=spec["search_seed"],
        tree_backend="array",
    )
    result = play_episode(
        game,
        agent,
        spec["playouts"],
        temperature_moves=spec["temperature_moves"],
        max_moves=spec["max_moves"],
        rng=spec["episode_seed"],
    )
    return {
        "spec": spec,
        "actions": result.actions,
        "winner": result.winner,
        "moves": result.moves,
    }


def _fixture_path(name: str) -> Path:
    return FIXTURE_DIR / f"golden_{name}.json"


@pytest.mark.parametrize("name", sorted(SPECS))
def test_golden_transcript_replays_exactly(name):
    path = _fixture_path(name)
    assert path.exists(), (
        f"missing fixture {path}; generate with "
        "`PYTHONPATH=src python tests/test_golden_transcripts.py --regenerate`"
    )
    golden = json.loads(path.read_text())
    assert golden["spec"] == SPECS[name], (
        f"fixture {name} was generated from a different recipe than the "
        "one in SPECS -- regenerate the fixture or revert the spec change"
    )
    replay = play_transcript(SPECS[name])
    assert replay["actions"] == golden["actions"], (
        f"transcript drift in {name}: the current stack plays different "
        "moves than the checked-in golden episode.\n"
        f"golden : {golden['actions']}\n"
        f"replay : {replay['actions']}\n"
        "If this change is *intended* to alter search behaviour, "
        "regenerate the fixtures and call it out in the commit message."
    )
    assert replay["winner"] == golden["winner"]
    assert replay["moves"] == golden["moves"]


def test_fixture_actions_are_legal():
    """The checked-in transcripts must themselves be valid games."""
    for name, spec in SPECS.items():
        path = _fixture_path(name)
        if not path.exists():
            pytest.fail(f"missing fixture {path}")
        golden = json.loads(path.read_text())
        game = _build_game(spec["game"])
        for ply, action in enumerate(golden["actions"]):
            assert not game.is_terminal, f"{name}: move {ply} after terminal"
            assert bool(game.legal_mask()[action]), (
                f"{name}: illegal move {action} at ply {ply}"
            )
            game.step(int(action))


def _regenerate() -> None:
    FIXTURE_DIR.mkdir(exist_ok=True)
    for name, spec in SPECS.items():
        transcript = play_transcript(spec)
        path = _fixture_path(name)
        path.write_text(json.dumps(transcript, indent=2) + "\n")
        print(f"wrote {path} ({transcript['moves']} moves, "
              f"winner {transcript['winner']:+d})")


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("usage: python tests/test_golden_transcripts.py --regenerate")
    _regenerate()
