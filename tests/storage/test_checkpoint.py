"""Checkpoint manager: manifest commit point, corruption fallback,
retention, crash-debris hygiene."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.storage import CheckpointManager, CorruptionError


def test_save_load_roundtrip(tmp_path):
    mgr = CheckpointManager(tmp_path)
    state = {"iterations": 3, "weights": [1.5, -2.0]}
    mgr.save(3, state)
    assert mgr.steps() == [3]
    assert mgr.load(3) == state
    assert mgr.load_latest() == (3, state)


def test_load_latest_empty_dir(tmp_path):
    assert CheckpointManager(tmp_path).load_latest() is None


def test_keep_last_retention(tmp_path):
    mgr = CheckpointManager(tmp_path, keep_last=2)
    for step in range(1, 6):
        mgr.save(step, {"step": step})
    assert mgr.steps() == [4, 5]
    assert mgr.load_latest() == (5, {"step": 5})


def test_corrupt_newest_falls_back_to_predecessor(tmp_path):
    mgr = CheckpointManager(tmp_path)
    mgr.save(1, {"step": 1})
    mgr.save(2, {"step": 2})
    # bit-rot in the newest payload: digest check must catch it
    state = tmp_path / "step-00000002" / "state.json"
    data = bytearray(state.read_bytes())
    data[3] ^= 0x01
    state.write_bytes(bytes(data))

    assert mgr.load_latest() == (1, {"step": 1})
    assert mgr.corrupt_skipped == 1
    with pytest.raises(CorruptionError):
        mgr.load(2)


def test_lying_manifest_is_corruption(tmp_path):
    mgr = CheckpointManager(tmp_path)
    mgr.save(1, {"step": 1})
    manifest = tmp_path / "step-00000001" / "MANIFEST.json"
    doc = json.loads(manifest.read_bytes())
    doc["files"]["state.json"]["blake2b"] = "00" * 16
    manifest.write_bytes(json.dumps(doc).encode())
    with pytest.raises(CorruptionError):
        mgr.load(1)
    assert mgr.load_latest() is None


def test_uncommitted_save_is_invisible_then_swept(tmp_path):
    mgr = CheckpointManager(tmp_path)
    mgr.save(1, {"step": 1})
    # simulate a crash between state.json and MANIFEST.json of step 2:
    # the directory exists, the commit point does not
    debris = tmp_path / "step-00000002"
    debris.mkdir()
    (debris / "state.json").write_bytes(b'{"step":2}')
    assert mgr.steps() == [1]
    assert mgr.load_latest() == (1, {"step": 1})
    # the next committed save supersedes and sweeps the debris
    mgr.save(3, {"step": 3})
    assert not debris.exists()
    assert mgr.load_latest() == (3, {"step": 3})


def test_missing_checkpoint_dir_recreated(tmp_path):
    mgr = CheckpointManager(tmp_path / "sub")
    mgr.save(1, {"step": 1})
    shutil.rmtree(tmp_path / "sub")
    mgr2 = CheckpointManager(tmp_path / "sub")
    assert mgr2.load_latest() is None
    mgr2.save(1, {"step": 1})
    assert mgr2.load_latest() == (1, {"step": 1})
