"""Crash-safe training: checkpoint round-trips and bit-identical resume.

The core claim: a training run checkpointed at iteration k and resumed
(in-process or after SIGKILL in a fresh process) reaches iteration n
with *bit-identical* weights, optimizer moments, RNG streams, and
replay-buffer contents to an uninterrupted n-iteration run.  This holds
for the deterministic collection paths (SerialMCTS / single-worker);
multi-worker thread schedules are timing-dependent by design.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.games import TicTacToe, build_network_for
from repro.mcts import NetworkEvaluator
from repro.mcts.serial import SerialMCTS
from repro.nn import Adam, AlphaZeroLoss
from repro.storage import CheckpointManager
from repro.training import Trainer, TrainingPipeline


def _fresh_pipeline(seed=0):
    net = build_network_for(TicTacToe(), channels=(4, 8, 8), rng=seed)
    scheme = SerialMCTS(
        NetworkEvaluator(net), rng=seed + 1, dirichlet_epsilon=0.25
    )
    trainer = Trainer(net, Adam(net.parameters(), lr=2e-3), AlphaZeroLoss(1e-4))
    return TrainingPipeline(
        TicTacToe(), scheme, trainer, num_playouts=12, sgd_iterations=2,
        batch_size=16, rng=seed + 2,
    )


def _digest(pipe):
    return pipe.trainer.network.state_digest()


def test_state_dict_roundtrip_is_bit_identical(tmp_path):
    straight = _fresh_pipeline()
    straight.run(4)

    first = _fresh_pipeline()
    mgr = CheckpointManager(tmp_path)
    first.run(2, checkpoints=mgr, checkpoint_every=1)
    assert mgr.steps()  # periodic saves actually happened

    resumed = _fresh_pipeline()
    assert resumed.resume_from(mgr) == 2
    assert resumed.iterations == 2
    assert _digest(resumed) == _digest(first)
    resumed.run(2, checkpoints=mgr, checkpoint_every=1)

    assert resumed.iterations == straight.iterations == 4
    assert _digest(resumed) == _digest(straight)
    # RNG streams advanced identically: the *next* draw matches too
    assert resumed.rng.random() == straight.rng.random()
    # replay buffers hold the same examples in the same order
    a = list(resumed.buffer._items)
    b = list(straight.buffer._items)
    assert len(a) == len(b) > 0
    for ea, eb in zip(a, b):
        np.testing.assert_array_equal(ea.planes, eb.planes)
        np.testing.assert_array_equal(ea.policy, eb.policy)
        assert ea.value == eb.value
    # loss telemetry is part of the state: histories match exactly
    assert [
        (p.episode, p.step, p.total) for p in resumed.metrics.loss_history
    ] == [(p.episode, p.step, p.total) for p in straight.metrics.loss_history]


def test_resume_from_empty_dir_is_a_fresh_start(tmp_path):
    pipe = _fresh_pipeline()
    assert pipe.resume_from(CheckpointManager(tmp_path)) == 0
    assert pipe.iterations == 0


def test_checkpoint_every_skips_but_final_save_lands(tmp_path):
    pipe = _fresh_pipeline()
    mgr = CheckpointManager(tmp_path, keep_last=10)
    pipe.run(3, checkpoints=mgr, checkpoint_every=2)
    # iteration 2 (periodic) and iteration 3 (final, off-cadence)
    assert mgr.steps() == [2, 3]


def test_tampered_network_digest_rejected(tmp_path):
    mgr = CheckpointManager(tmp_path)
    pipe = _fresh_pipeline(seed=0)
    pipe.run(1, checkpoints=mgr)
    step, state = mgr.load_latest()
    state["network_digest"] = "0" * len(state["network_digest"])
    with pytest.raises(ValueError):
        _fresh_pipeline(seed=0).load_state_dict(state)
    # a stale format version is equally refused
    _, state = mgr.load_latest()
    state["format"] = 999
    with pytest.raises(ValueError):
        _fresh_pipeline(seed=0).load_state_dict(state)


CLI_ARGS = [
    "--episodes", "4", "--playouts", "10", "--workers", "1",
    "--size", "5", "--seed", "11",
]


def _run_cli(checkpoint_dir, extra=(), **popen):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "train", *CLI_ARGS,
         "--checkpoint-dir", str(checkpoint_dir), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, **popen,
    )


def _final_digest(output: str) -> str:
    lines = [l for l in output.splitlines() if l.startswith("network digest:")]
    assert lines, f"no digest line in output:\n{output}"
    return lines[-1].split()[-1]


@pytest.mark.slow
def test_sigkill_mid_train_resumes_bit_identical(tmp_path):
    """Kill -9 a checkpointing CLI run mid-iteration; resuming with the
    same command reaches the same final weights as an uninterrupted run."""
    straight = _run_cli(tmp_path / "straight")
    out, _ = straight.communicate(timeout=120)
    assert straight.returncode == 0, out
    want = _final_digest(out)

    victim = _run_cli(tmp_path / "crashed")
    # let it commit at least one checkpoint, then SIGKILL: no atexit, no
    # flush, the on-disk manifest is all that survives
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        steps = CheckpointManager(tmp_path / "crashed").steps()
        if steps and steps[-1] >= 2:
            break
        if victim.poll() is not None:
            break
        time.sleep(0.05)
    if victim.poll() is None:
        victim.send_signal(signal.SIGKILL)
    victim.communicate(timeout=30)

    resumed = _run_cli(tmp_path / "crashed", extra=["--resume"])
    out, _ = resumed.communicate(timeout=120)
    assert resumed.returncode == 0, out
    assert "resumed from checkpoint" in out or "iteration" in out
    assert _final_digest(out) == want
