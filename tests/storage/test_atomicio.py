"""Crash-safety primitives: atomic replace, tmp sweep, directory fsync."""

from __future__ import annotations

import json
import os

import pytest

from repro.storage import (
    StorageError,
    atomic_write_bytes,
    atomic_write_json,
    fsync_dir,
)
from repro.storage.atomicio import TMP_MARKER, sweep_tmp_files


def test_write_and_replace_roundtrip(tmp_path):
    target = tmp_path / "state.bin"
    atomic_write_bytes(target, b"first")
    assert target.read_bytes() == b"first"
    atomic_write_bytes(target, b"second")
    assert target.read_bytes() == b"second"
    # no in-flight temporaries left behind on the happy path
    assert [p for p in os.listdir(tmp_path) if TMP_MARKER in p] == []


def test_write_json_is_canonical(tmp_path):
    target = tmp_path / "doc.json"
    atomic_write_json(target, {"b": 1, "a": [1, 2]})
    # sorted keys + no whitespace: byte-stable across runs for digesting
    assert target.read_bytes() == b'{"a":[1,2],"b":1}'
    assert json.loads(target.read_bytes()) == {"a": [1, 2], "b": 1}


def test_failed_write_leaves_old_content(tmp_path, monkeypatch):
    target = tmp_path / "state.bin"
    atomic_write_bytes(target, b"old")
    real_replace = os.replace

    def exploding_replace(src, dst):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(StorageError):
        atomic_write_bytes(target, b"new")
    monkeypatch.setattr(os, "replace", real_replace)
    # the reader never sees a torn or half-replaced file
    assert target.read_bytes() == b"old"
    assert [p for p in os.listdir(tmp_path) if TMP_MARKER in p] == []


def test_sweep_removes_only_crash_debris(tmp_path):
    keep = tmp_path / "seg-00000001.wal"
    keep.write_bytes(b"data")
    debris = tmp_path / f"MANIFEST.json{TMP_MARKER}12345"
    debris.write_bytes(b"half")
    assert sweep_tmp_files(tmp_path) == 1
    assert keep.exists()
    assert not debris.exists()


def test_fsync_dir_is_best_effort(tmp_path):
    fsync_dir(tmp_path)  # must not raise
    fsync_dir(tmp_path / "does-not-exist")  # missing dir: silently skipped
