"""Write-ahead log contract: torn tails, bit flips, rotation, compaction,
and graceful degradation when the filesystem fails."""

from __future__ import annotations

import os

import pytest

from repro.storage import JournalWriter, read_journal
from repro.storage.journal import _HEADER


def _records(n, size=40):
    return [bytes([i % 256]) * size for i in range(n)]


def _segments(directory):
    return sorted(p for p in os.listdir(directory) if p.endswith(".wal"))


def test_append_read_roundtrip(tmp_path):
    payloads = _records(20)
    with JournalWriter(tmp_path, fsync="per-move") as writer:
        for payload in payloads:
            assert writer.append(payload)
        assert writer.records_written == 20
    result = read_journal(tmp_path)
    assert result.records == payloads
    assert not result.truncated
    assert result.dropped_bytes == 0


@pytest.mark.parametrize("cut", [1, _HEADER - 1, _HEADER + 3])
def test_torn_tail_recovers_full_prefix(tmp_path, cut):
    payloads = _records(10)
    with JournalWriter(tmp_path, fsync="per-move") as writer:
        for payload in payloads:
            writer.append(payload)
    (seg,) = _segments(tmp_path)
    path = tmp_path / seg
    data = path.read_bytes()
    # crash mid-append: the final record is cut `cut` bytes in
    record_size = _HEADER + len(payloads[-1])
    path.write_bytes(data[: len(data) - record_size + cut])

    result = read_journal(tmp_path)
    assert result.records == payloads[:-1]
    assert result.truncated
    assert result.dropped_bytes == cut


def test_reopen_repairs_torn_tail_and_continues(tmp_path):
    payloads = _records(6)
    with JournalWriter(tmp_path, fsync="per-move") as writer:
        for payload in payloads:
            writer.append(payload)
    (seg,) = _segments(tmp_path)
    path = tmp_path / seg
    path.write_bytes(path.read_bytes()[:-7])  # torn final record

    with JournalWriter(tmp_path, fsync="per-move") as writer:
        writer.append(b"after-crash")
    result = read_journal(tmp_path)
    # lost exactly the torn record; the post-repair append reads cleanly
    assert result.records == payloads[:-1] + [b"after-crash"]
    assert not result.truncated


def test_bit_flip_stops_replay_at_corruption(tmp_path):
    payloads = _records(10)
    with JournalWriter(tmp_path, fsync="per-move") as writer:
        for payload in payloads:
            writer.append(payload)
    (seg,) = _segments(tmp_path)
    path = tmp_path / seg
    data = bytearray(path.read_bytes())
    # flip one payload bit inside record 4
    record_size = _HEADER + len(payloads[0])
    data[4 * record_size + _HEADER + 5] ^= 0x10
    path.write_bytes(bytes(data))

    result = read_journal(tmp_path)
    # every record before the flip is intact by checksum; everything at
    # and after it is dropped -- framing past a corrupt region is a lie
    assert result.records == payloads[:4]
    assert result.truncated
    assert result.dropped_bytes == 6 * record_size


def test_corruption_drops_later_segments_too(tmp_path):
    payloads = _records(30, size=100)
    with JournalWriter(tmp_path, fsync="per-move", segment_bytes=600) as writer:
        for payload in payloads:
            writer.append(payload)
    segs = _segments(tmp_path)
    assert len(segs) >= 3
    first = tmp_path / segs[0]
    data = bytearray(first.read_bytes())
    data[_HEADER + 1] ^= 0x01  # corrupt the very first record
    first.write_bytes(bytes(data))

    result = read_journal(tmp_path)
    assert result.records == []
    assert result.truncated
    total = sum((tmp_path / s).stat().st_size for s in segs)
    assert result.dropped_bytes == total


def test_rotation_preserves_order_across_segments(tmp_path):
    payloads = _records(50, size=64)
    with JournalWriter(tmp_path, fsync="off", segment_bytes=512) as writer:
        for payload in payloads:
            writer.append(payload)
        assert writer.rotations > 0
    assert len(_segments(tmp_path)) == read_journal(tmp_path).segments > 1
    assert read_journal(tmp_path).records == payloads


def test_compaction_bounds_disk_same_replay(tmp_path):
    with JournalWriter(tmp_path, fsync="per-move", segment_bytes=512) as writer:
        for payload in _records(50, size=64):
            writer.append(payload)
        before = len(_segments(tmp_path))
        assert writer.compact([b"snapshot-1", b"snapshot-2"])
        # snapshot lives alone in a fresh segment; old history unlinked
        assert len(_segments(tmp_path)) == 1 < before
        writer.append(b"post-compaction")
    result = read_journal(tmp_path)
    assert result.records == [b"snapshot-1", b"snapshot-2", b"post-compaction"]


def test_io_error_degrades_instead_of_raising(tmp_path):
    writer = JournalWriter(tmp_path, fsync="per-move")
    assert writer.append(b"ok")
    # ENOSPC mid-flight: the fh is closed under the writer, so the next
    # write raises -- serving must see a False, never an exception
    writer._fh.close()
    assert writer.append(b"doomed") is False
    assert writer.disabled
    assert writer.io_errors == 1
    # every later append is a cheap no-op, still not raising
    assert writer.append(b"also-doomed") is False
    assert writer.io_errors == 1
    assert writer.sync() is False
    assert writer.compact([b"snap"]) is False
    writer.close()
    # what made it to disk before the failure is still replayable
    assert read_journal(tmp_path).records == [b"ok"]


@pytest.mark.parametrize("policy", ["per-move", "batched", "off"])
def test_all_fsync_policies_roundtrip(tmp_path, policy):
    with JournalWriter(tmp_path / policy, fsync=policy) as writer:
        for payload in _records(5):
            assert writer.append(payload)
    assert read_journal(tmp_path / policy).records == _records(5)


def test_bad_policy_rejected(tmp_path):
    with pytest.raises(ValueError):
        JournalWriter(tmp_path, fsync="eventually")
