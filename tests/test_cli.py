"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_configure_defaults(self):
        args = build_parser().parse_args(["configure"])
        assert args.game == "gomoku"
        assert args.workers == 16

    def test_unknown_game_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["configure", "--game", "chess"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.backend == "thread"
        assert args.deadline_ms == 200.0
        assert args.demo_games == 0
        assert args.port == 0

    def test_serve_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "quantum"])


class TestCommands:
    def test_configure_cpu(self, capsys):
        rc = main(["configure", "--game", "gomoku", "--size", "9",
                   "--workers", "8", "--profile-playouts", "80"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scheme" in out
        assert "us/iteration" in out

    def test_configure_gpu(self, capsys):
        rc = main(["configure", "--game", "gomoku", "--size", "9",
                   "--workers", "16", "--gpu", "--profile-playouts", "80"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Algorithm-4 test runs" in out

    def test_simulate_shared(self, capsys):
        rc = main(["simulate", "--game", "tictactoe", "--scheme", "shared",
                   "--workers", "4", "--playouts", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per_iter_us" in out

    def test_simulate_local_gpu(self, capsys):
        rc = main(["simulate", "--game", "gomoku", "--size", "9",
                   "--scheme", "local", "--workers", "8", "--batch", "4",
                   "--gpu", "--playouts", "60"])
        assert rc == 0
        assert "per_iter_us" in capsys.readouterr().out

    def test_train_smoke(self, capsys):
        rc = main(["train", "--game", "tictactoe", "--episodes", "1",
                   "--playouts", "10", "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_serve_demo_smoke(self, capsys):
        """The CI gateway smoke: demo sessions through the TCP client,
        clean shutdown, stats printed."""
        rc = main(["serve", "--demo-games", "2", "--deadline-ms", "150",
                   "--playouts", "8", "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gateway listening" in out
        assert "demo session 2" in out
        assert "latency_p99_ms" in out
        assert "sessions_finished    2" in out

    def test_serve_demo_uniform_evaluator(self, capsys):
        rc = main(["serve", "--demo-games", "1", "--deadline-ms", "100",
                   "--playouts", "8", "--evaluator", "uniform"])
        assert rc == 0
        assert "moves_served" in capsys.readouterr().out
