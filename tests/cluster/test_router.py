"""Router units: placement, spillover, typed errors, backoff, draining."""

import asyncio

import pytest

from repro.cluster import BackoffPolicy, ShardRouter, ShardSpec
from repro.serving import InlineExecutor
from repro.serving.service import (
    GatewayOverloaded,
    InvalidMove,
    SessionNotFound,
)


def make_router(num_shards=2, *, clock=None, spec=None, **kwargs):
    base = spec or ShardSpec(
        shard_id=0, num_playouts=2, deadline_ms=50.0, gc_interval_s=60.0
    )
    kwargs.setdefault("health_interval_s", 60.0)  # tests drive faults directly
    return ShardRouter.local(
        num_shards, base, clock=clock, executor=InlineExecutor(), **kwargs
    )


def test_create_play_resign_accounting():
    async def main():
        router = make_router(3)
        await router.start()
        try:
            done = resigned = 0
            sids = [await router.create_session("tictactoe") for _ in range(6)]
            for sid in sids[:3]:
                while True:
                    reply = await router.play_move(sid)
                    assert reply["session"] == sid  # cluster id, not shard's
                    if reply["done"]:
                        done += 1
                        break
            for sid in sids[3:]:
                await router.resign(sid)
                resigned += 1
            stats = router.stats()
            stats.check_accounting()
            assert stats.sessions_admitted == 6
            assert stats.sessions_completed == done == 3
            assert stats.sessions_resigned == resigned == 3
            assert stats.sessions_active == 0
            assert stats.sessions_lost == 0
            # placement spread over the ring, not all on one shard
            placed = {e[2] for e in router.events if e[1] == "admit"}
            assert len(placed) > 1
        finally:
            await router.aclose()

    asyncio.run(main())


def test_session_ids_are_cluster_scoped_and_stable():
    async def main():
        router = make_router(2)
        await router.start()
        try:
            a = await router.create_session()
            b = await router.create_session()
            assert a != b
            record = router._records[b]
            victim = router._slots[record.shard_index]
            router.kill_shard(victim.index)
            reply = await router.play_move(b)  # relocates under the same id
            assert reply["session"] == b
            assert router._records[b].shard_index != victim.index
        finally:
            await router.aclose()

    asyncio.run(main())


def test_admission_spills_over_full_shard():
    async def main():
        spec = ShardSpec(
            shard_id=0, num_playouts=2, deadline_ms=50.0, max_sessions=1
        )
        router = make_router(2, spec=spec)
        await router.start()
        try:
            # two one-slot shards hold two sessions; the third admission
            # walks the whole ring before rejecting
            await router.create_session()
            await router.create_session()
            with pytest.raises(GatewayOverloaded):
                await router.create_session()
            stats = router.stats()
            assert stats.sessions_admitted == 2
            assert stats.sessions_rejected == 1
            stats.check_accounting()
        finally:
            await router.aclose()

    asyncio.run(main())


def test_typed_errors_pass_through():
    async def main():
        router = make_router(1)
        await router.start()
        try:
            with pytest.raises(SessionNotFound):
                await router.play_move(999)
            sid = await router.create_session()
            with pytest.raises(InvalidMove):
                await router.play_move(sid, action=10**6)
            # a client error must not corrupt the shadow history
            assert router._records[sid].history == []
            reply = await router.play_move(sid)
            assert router._records[sid].history == [reply["engine_action"]]
        finally:
            await router.aclose()

    asyncio.run(main())


def test_resign_on_dead_shard_is_authoritative():
    async def main():
        router = make_router(2)
        await router.start()
        try:
            sid = await router.create_session()
            router.kill_shard(router._records[sid].shard_index)
            assert await router.resign(sid) == "resigned"
            stats = router.stats()
            stats.check_accounting()
            assert stats.sessions_resigned == 1
            assert stats.sessions_lost == 0
        finally:
            await router.aclose()

    asyncio.run(main())


def test_lost_reply_retries_and_deduplicates():
    async def main():
        router = make_router(1)
        await router.start()
        try:
            sid = await router.create_session()
            shard = router._slots[0].link
            shard.drop_replies(1)  # move applies server-side, reply vanishes
            reply = await router.play_move(sid)
            gw_stats = shard.gateway.stats()
            # the retry answered from the shard's reply cache: one logical
            # move, one server-side application
            assert gw_stats.deduped_replies == 1
            assert gw_stats.moves_served == 1
            assert router.stats().move_retries >= 1
            # shadow history matches the shard's authoritative line
            session = shard.gateway._sessions[router._records[sid].remote_id]
            assert router._records[sid].history == session.history
            assert reply["move_number"] == 1
        finally:
            await router.aclose()

    asyncio.run(main())


def test_drain_relocates_and_resumes():
    async def main():
        router = make_router(2)
        await router.start()
        try:
            sids = [await router.create_session() for _ in range(4)]
            target = next(s.index for s in router._slots if s.sessions)
            aboard = len(router._slots[target].sessions)
            moved = await router.drain_shard(target, resume=True)
            assert moved == aboard
            stats = router.stats()
            stats.check_accounting()
            assert stats.sessions_drained == moved > 0
            assert stats.sessions_lost == 0
            assert not router._slots[target].sessions
            # drained sessions keep playing from their exact positions
            for sid in sids:
                reply = await router.play_move(sid)
                assert reply["move_number"] >= 1
        finally:
            await router.aclose()

    asyncio.run(main())


def test_backoff_schedule_is_deterministic_per_key():
    policy = BackoffPolicy(base_s=0.1, max_s=2.0, jitter=0.3, max_retries=5)
    a = list(policy.delays(7, 1, 2))
    b = list(policy.delays(7, 1, 2))
    c = list(policy.delays(7, 1, 3))
    assert a == b
    assert a != c
    # bounded: every delay within the jittered envelope of its attempt
    for k, delay in enumerate(a):
        raw = min(2.0, 0.1 * 2.0**k)
        assert raw * 0.7 <= delay <= raw * 1.3


def test_backoff_validation():
    with pytest.raises(ValueError):
        BackoffPolicy(base_s=0.0)
    with pytest.raises(ValueError):
        BackoffPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        BackoffPolicy(max_retries=-1)
