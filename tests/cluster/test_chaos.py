"""Chaos suite: scripted faults against the shard fleet in virtual time.

Every test here drives the real router + real gateways on a
``VirtualClock`` through :class:`ClusterScenarioRunner`, so hours of
failure timeline replay in milliseconds and -- the core property -- two
identically-seeded runs produce *bit-identical* transcripts.  The
invariant under every fault schedule: zero accepted sessions lost, and
the disposition counters sum exactly (``check_accounting``).
"""

from dataclasses import replace

import pytest

from repro.serving.simulate import (
    ClusterScenarioRunner,
    FaultEvent,
    ScenarioSpec,
)

pytestmark = [pytest.mark.chaos, pytest.mark.simtime]

BASE = ScenarioSpec(
    seed=29,
    sessions=60,
    arrival_window_s=240.0,
    shards=3,
    moves_per_session=(2, 6),
    think_time_s=(0.5, 6.0),
    service_time_ms=(1.0, 6.0),
    slow_client_fraction=0.0,
    idle_timeout_s=600.0,
    gc_interval_s=120.0,
)


def test_kill_one_of_three_mid_episode_loses_nothing():
    spec = replace(BASE, faults=(FaultEvent(at_s=60.0, kind="kill", shard=1),))
    result = ClusterScenarioRunner(spec).run()
    stats = result.stats
    stats.check_accounting()
    result.require(stats.sessions_lost == 0, "accepted sessions were lost")
    result.require(
        stats.sessions_readmitted > 0,
        "the kill landed on an empty shard: the scenario exercises nothing",
    )
    result.require(stats.shard_restarts == 1, "victim was not respawned once")
    result.require(
        stats.sessions_admitted == spec.sessions,
        "a 3-shard fleet losing 1 shard must still admit everyone",
    )
    # the respawned shard rejoined with a bumped epoch
    victim = stats.shards[1]
    assert victim.epoch == 1 and victim.alive


def test_same_seed_same_faults_bit_identical_timeline():
    spec = replace(
        BASE,
        faults=(
            FaultEvent(at_s=45.0, kind="kill", shard=2),
            FaultEvent(at_s=120.0, kind="drain", shard=0),
        ),
    )
    a = ClusterScenarioRunner(spec).run()
    b = ClusterScenarioRunner(spec).run()
    assert a.events == b.events
    assert a.cluster_events == b.cluster_events
    assert a.stats.as_dict() == b.stats.as_dict()
    assert a.sim_seconds == b.sim_seconds


def test_different_seed_different_timeline():
    spec = replace(BASE, faults=(FaultEvent(at_s=60.0, kind="kill", shard=1),))
    a = ClusterScenarioRunner(spec).run()
    b = ClusterScenarioRunner(replace(spec, seed=spec.seed + 1)).run()
    assert a.events != b.events


def test_planned_drain_relocates_with_authoritative_state():
    spec = replace(BASE, faults=(FaultEvent(at_s=90.0, kind="drain", shard=0),))
    result = ClusterScenarioRunner(spec).run()
    stats = result.stats
    stats.check_accounting()
    result.require(stats.sessions_lost == 0, "drain lost sessions")
    result.require(stats.sessions_drained > 0, "drain moved nothing")
    result.require(
        stats.sessions_readmitted == 0,
        "a planned drain must not be accounted as crash recovery",
    )
    result.require(stats.shard_restarts == 0, "drain is not a death")


def test_pause_swap_window_bounces_no_one():
    spec = replace(
        BASE,
        faults=(
            FaultEvent(at_s=60.0, kind="pause_swap", shard=1, duration_s=30.0),
        ),
    )
    result = ClusterScenarioRunner(spec).run()
    stats = result.stats
    stats.check_accounting()
    result.require(stats.sessions_lost == 0, "swap pause lost sessions")
    result.require(
        stats.sessions_rejected == 0,
        "the ring must route admissions around a drain-light shard",
    )
    result.require(
        stats.sessions_admitted == spec.sessions,
        "admissions dipped during the swap window",
    )


def test_kill_without_respawn_survivors_carry_the_fleet():
    spec = replace(BASE, faults=(FaultEvent(at_s=60.0, kind="kill", shard=1),))
    result = ClusterScenarioRunner(spec, respawn=False).run()
    stats = result.stats
    stats.check_accounting()
    result.require(stats.sessions_lost == 0, "sessions lost without respawn")
    result.require(stats.shard_restarts == 0, "respawn was disabled")
    assert stats.shards_healthy == 2
    assert not stats.shards[1].alive


def test_two_kills_in_sequence():
    spec = replace(
        BASE,
        faults=(
            FaultEvent(at_s=50.0, kind="kill", shard=0),
            FaultEvent(at_s=130.0, kind="kill", shard=2),
        ),
    )
    result = ClusterScenarioRunner(spec).run()
    stats = result.stats
    stats.check_accounting()
    result.require(stats.sessions_lost == 0, "double kill lost sessions")
    result.require(stats.shard_restarts == 2, "both victims must respawn")
    a = ClusterScenarioRunner(spec).run()
    assert a.events == result.events  # determinism holds under double kill


def test_relocated_sessions_resume_exact_positions():
    spec = replace(BASE, faults=(FaultEvent(at_s=60.0, kind="kill", shard=1),))
    result = ClusterScenarioRunner(spec).run()
    # move_number is the session's ply count: for every client the
    # sequence of move numbers must be strictly increasing with no reset
    # across relocation (a reset would mean the game restarted)
    per_client: dict[int, list[int]] = {}
    for event in result.of_kind("move"):
        per_client.setdefault(event[1], []).append(event[4])
    assert per_client, "no moves in transcript"
    for client, numbers in per_client.items():
        assert numbers == sorted(numbers), f"client {client} went backwards"
        assert len(set(numbers)) == len(numbers), f"client {client} repeated"
