"""Durable-state chaos: shard journals beat the router's shadow at
failover, journaled replies answer orphaned retries, and a restarted
router re-adopts its whole fleet from the placement journal."""

from __future__ import annotations

import asyncio
from pathlib import Path

import pytest

from repro.cluster import ShardRouter, ShardSpec
from repro.serving import InlineExecutor
from repro.storage import read_journal

pytestmark = pytest.mark.chaos


def make_router(num_shards, journal_root, **kwargs):
    base = ShardSpec(
        shard_id=0, num_playouts=2, deadline_ms=50.0, gc_interval_s=60.0,
        journal_dir=str(journal_root), journal_fsync="per-move",
    )
    kwargs.setdefault("health_interval_s", 60.0)  # tests drive faults directly
    return ShardRouter.local(
        num_shards, base, executor=InlineExecutor(), **kwargs
    )


async def _apply_unconfirmed_move(router, sid):
    """Apply the session's next move directly at its shard: the shard
    executes and journals it, but the router never sees the reply --
    exactly the window a crash-during-reply leaves behind."""
    record = router._records[sid]
    slot = router._slots[record.shard_index]
    rid = f"{sid}.{record.move_seq}"
    reply = await slot.link.request(
        {"op": "move", "session": record.remote_id, "action": None, "rid": rid}
    )
    assert reply["ok"]
    return slot, reply


def test_failover_prefers_dead_shards_journal_over_shadow(tmp_path):
    async def main():
        router = make_router(2, tmp_path)
        await router.start()
        try:
            sid = await router.create_session("tictactoe")
            await router.play_move(sid)  # one confirmed move
            record = router._records[sid]
            shadow_before = list(record.history)

            slot, shard_reply = await _apply_unconfirmed_move(router, sid)
            # the router's shadow is now one ply behind the shard's truth
            assert len(record.history) == len(shadow_before)

            slot.link.kill()
            await router._on_unhealthy(slot)

            stats = router.stats()
            assert stats.journal_preferred == 1
            assert stats.sessions_readmitted >= 1
            # journal adopted: the extra ply is in the shadow now
            assert record.history[: len(shadow_before)] == shadow_before
            assert len(record.history) == len(shadow_before) + 1

            # the client retries the orphaned move: answered from the
            # journaled reply, NOT re-applied on the survivor
            reply = await router.play_move(sid)
            assert reply.get("recovered") is True
            assert reply["engine_action"] == shard_reply["engine_action"]
            stats = router.stats()
            assert stats.journal_replies_recovered == 1

            # play continues normally afterwards
            if not reply["done"]:
                nxt = await router.play_move(sid)
                assert "recovered" not in nxt

            stats = router.stats()
            stats.check_accounting()
            assert stats.sessions_lost == 0
        finally:
            await router.aclose()

    asyncio.run(main())


def test_torn_shard_journal_falls_back_to_shadow(tmp_path):
    async def main():
        router = make_router(2, tmp_path)
        await router.start()
        try:
            sid = await router.create_session("tictactoe")
            await router.play_move(sid)
            record = router._records[sid]
            shadow = list(record.history)

            slot, _ = await _apply_unconfirmed_move(router, sid)
            dead_epoch = slot.link.epoch
            slot.link.kill()
            # the unconfirmed move's record is torn on disk: checksums
            # reject it, so failover must fall back to the shadow prefix
            journal_dir = slot.spec.journal_path(dead_epoch)
            segs = sorted(
                p for p in Path(journal_dir).iterdir()
                if p.name.endswith(".wal")
            )
            tail = segs[-1]
            tail.write_bytes(tail.read_bytes()[:-5])
            assert read_journal(journal_dir).truncated

            await router._on_unhealthy(slot)
            stats = router.stats()
            assert stats.journal_preferred == 0
            assert list(record.history) == shadow  # shadow, unchanged
            # the orphaned move is genuinely lost with the torn record;
            # the retry re-applies on the survivor, which is the correct
            # at-least-once degradation when durability was cut short
            reply = await router.play_move(sid)
            assert "recovered" not in reply
            stats = router.stats()
            stats.check_accounting()
            assert stats.sessions_lost == 0
        finally:
            await router.aclose()

    asyncio.run(main())


def test_router_restart_readopts_from_placement_journal(tmp_path):
    async def main():
        first = make_router(2, tmp_path)
        await first.start()
        sids = [await first.create_session("tictactoe") for _ in range(4)]
        for sid in sids:
            await first.play_move(sid)
        histories = {sid: list(first._records[sid].history) for sid in sids}
        # the whole process dies: shards and router together, no aclose
        for slot in first._slots:
            slot.link.kill()
        first._journal._writer.sync()

        second = make_router(2, tmp_path)
        await second.start()
        try:
            recovered = await second.recover_sessions()
            assert recovered == len(sids)
            stats = second.stats()
            assert stats.sessions_recovered == len(sids)
            for sid in sids:
                assert list(second._records[sid].history) == histories[sid]
            # recovered sessions serve; new sessions never collide on id
            reply = await second.play_move(sids[0])
            assert reply["ok"]
            fresh = await second.create_session("tictactoe")
            assert fresh > max(sids)
            stats = second.stats()
            stats.check_accounting()
            assert stats.sessions_lost == 0
        finally:
            await second.aclose()
            await first.aclose()

    asyncio.run(main())


def test_completed_sessions_stay_completed_across_restart(tmp_path):
    async def main():
        first = make_router(1, tmp_path)
        await first.start()
        sid = await first.create_session("tictactoe")
        while not (await first.play_move(sid))["done"]:
            pass
        first._journal._writer.sync()
        for slot in first._slots:
            slot.link.kill()

        second = make_router(1, tmp_path)
        await second.start()
        try:
            assert await second.recover_sessions() == 0
            assert sid not in second._records
        finally:
            await second.aclose()
            await first.aclose()

    asyncio.run(main())


def test_drained_relocation_journals_authoritative_history(tmp_path):
    async def main():
        router = make_router(2, tmp_path)
        await router.start()
        sids = [await router.create_session("tictactoe") for _ in range(4)]
        for sid in sids:
            await router.play_move(sid)
        target = next(s.index for s in router._slots if s.sessions)
        moved = await router.drain_shard(target, resume=True)
        assert moved > 0
        histories = {sid: list(router._records[sid].history) for sid in sids}
        router._journal._writer.sync()
        for slot in router._slots:
            slot.link.kill()

        second = make_router(2, tmp_path)
        await second.start()
        try:
            assert await second.recover_sessions() == len(sids)
            for sid in sids:
                assert list(second._records[sid].history) == histories[sid]
        finally:
            await second.aclose()
            await router.aclose()

    asyncio.run(main())


def test_journal_off_router_is_unchanged(tmp_path):
    """No journal_dir: failover uses the shadow exactly as before, and
    the durable-state counters stay zero."""

    async def main():
        base = ShardSpec(
            shard_id=0, num_playouts=2, deadline_ms=50.0, gc_interval_s=60.0
        )
        router = ShardRouter.local(
            2, base, executor=InlineExecutor(), health_interval_s=60.0
        )
        await router.start()
        try:
            sid = await router.create_session("tictactoe")
            await router.play_move(sid)
            record = router._records[sid]
            slot = router._slots[record.shard_index]
            slot.link.kill()
            await router._on_unhealthy(slot)
            reply = await router.play_move(sid)
            assert reply["ok"]
            stats = router.stats()
            stats.check_accounting()
            assert stats.sessions_lost == 0
            assert stats.journal_preferred == 0
            assert stats.sessions_recovered == 0
            assert stats.journal_errors == 0
        finally:
            await router.aclose()

    asyncio.run(main())
