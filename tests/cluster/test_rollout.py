"""Zero-downtime weight rollout: versions land, nobody gets bounced."""

import asyncio

import pytest

from repro.cluster import ShardRouter, ShardSpec, roll_weights
from repro.games import build_network_for
from repro.serving import InlineExecutor
from repro.serving.service import GatewayError, build_game

pytestmark = pytest.mark.chaos


def network_router(num_shards=3):
    spec = ShardSpec(
        shard_id=0,
        evaluator="network",
        num_playouts=2,
        deadline_ms=50.0,
        gc_interval_s=60.0,
    )
    return ShardRouter.local(
        num_shards,
        spec,
        executor=InlineExecutor(),
        health_interval_s=60.0,
    )


def fresh_weights(seed=1234):
    net = build_network_for(
        build_game("tictactoe", None), channels=(8, 16, 16), rng=seed
    )
    return net.state_dict()


def test_full_fleet_rollout_zero_rejections_under_load():
    async def main():
        router = network_router(3)
        await router.start()
        try:
            sids = [await router.create_session() for _ in range(6)]
            for sid in sids:
                await router.play_move(sid)

            async def churn():
                served = 0
                for _ in range(20):
                    sid = await router.create_session()
                    reply = await router.play_move(sid)
                    served += 1
                    if not reply["done"]:
                        await router.resign(sid)
                    await asyncio.sleep(0)
                return served

            report, served = await asyncio.gather(
                roll_weights(router, fresh_weights()), churn()
            )
            assert served == 20  # admissions never paused fleet-wide
            assert report.consistent, report.as_dict()
            assert report.rejections == 0
            assert report.target_version is not None
            for step in report.steps:
                assert step.new_version == report.target_version
                assert step.new_version != step.old_version
            stats = router.stats()
            stats.check_accounting()
            assert stats.rollout_rejections == 0
            assert stats.sessions_rejected == 0
            assert stats.rollouts_completed == 1
            assert stats.sessions_lost == 0
            for slot in router._slots:
                assert slot.weights_version == report.target_version
                assert not slot.draining  # every window was resumed
        finally:
            await router.aclose()

    asyncio.run(main())


def test_post_swap_evaluations_use_new_weights():
    async def main():
        router = network_router(2)
        await router.start()
        try:
            report = await roll_weights(router, fresh_weights())
            target = report.target_version
            # lazy recompile: the plan catches up on the next evaluation
            # each shard serves, never before, never to an older version
            served: set[int] = set()
            for _ in range(16):
                sid = await router.create_session()
                shard_index = router._records[sid].shard_index
                reply = await router.play_move(sid)
                served.add(shard_index)
                if not reply["done"]:
                    await router.resign(sid)
            for slot in router._slots:
                version = await slot.link.request({"op": "version"})
                assert version["weights_version"] == target
                if slot.index in served:  # this shard served post-swap
                    assert version["plan_version"] == target
        finally:
            await router.aclose()

    asyncio.run(main())


def test_rollout_skips_dead_shard_and_reports_inconsistency():
    async def main():
        router = network_router(3)
        await router.start()
        try:
            router.kill_shard(1)
            router._slots[1].healthy = False  # health verdict, fast-forwarded
            report = await roll_weights(router, fresh_weights())
            assert not report.consistent
            assert report.steps[1].skipped
            live = {s.new_version for s in report.steps if not s.skipped}
            assert len(live) == 1
        finally:
            await router.aclose()

    asyncio.run(main())


def test_rollout_rejects_weightless_evaluator():
    async def main():
        spec = ShardSpec(shard_id=0, evaluator="uniform", num_playouts=2)
        router = ShardRouter.local(
            1, spec, executor=InlineExecutor(), health_interval_s=60.0
        )
        await router.start()
        try:
            with pytest.raises(GatewayError):
                await roll_weights(router, fresh_weights())
        finally:
            await router.aclose()

    asyncio.run(main())
