"""Process-shard cluster smoke: real forks, real TCP, real SIGTERM."""

import asyncio

import pytest

from repro.cluster import ShardRouter, ShardSpec
from repro.serving.service import GatewayConnectionError

pytestmark = [pytest.mark.chaos, pytest.mark.slow]


def test_two_process_shards_survive_sigterm():
    async def main():
        spec = ShardSpec(
            shard_id=0,
            num_playouts=8,
            deadline_ms=100.0,
            workers=1,
            rpc_timeout_s=10.0,
        )
        router = ShardRouter.processes(
            2,
            spec,
            health_interval_s=0.1,
            health_timeout_s=2.0,
            failure_threshold=2,
            restart_limit=1,
        )
        await router.start()
        try:
            sids = [await router.create_session() for _ in range(4)]
            for sid in sids:
                await router.play_move(sid)
            victim = max(router._slots, key=lambda s: len(s.sessions))
            victim.link.terminate()
            # keep playing straight through the death; the router hides it
            finished = 0
            for sid in sids:
                while router._records[sid].status == "active":
                    reply = await router.play_move(sid)
                    if reply["done"]:
                        finished += 1
                        break
            stats = router.stats()
            stats.check_accounting()
            assert finished == 4
            assert stats.sessions_lost == 0
            assert stats.sessions_readmitted >= 1
        finally:
            await router.aclose()

    asyncio.run(main())


def test_process_shard_rpc_round_trip_and_isolation():
    async def main():
        router = ShardRouter.processes(
            2,
            ShardSpec(shard_id=0, num_playouts=4, workers=1),
            health_interval_s=60.0,
        )
        await router.start()
        try:
            # each shard is its own process with its own session table
            pids = set()
            for slot in router._slots:
                reply = await slot.link.request({"op": "ping"})
                assert reply["ok"] and reply["shard_id"] == f"shard-{slot.index}"
                pids.add(slot.link.pid)
            assert len(pids) == 2
            sid = await router.create_session()
            reply = await router.play_move(sid)
            assert reply["ok"] and reply["move_number"] == 1
        finally:
            await router.aclose()
        # after aclose both processes are gone: requests fail typed
        with pytest.raises(GatewayConnectionError):
            await router._slots[0].link.request({"op": "ping"})

    asyncio.run(main())
