"""Consistent-hash placement: stability, minimal movement, coverage."""

import pytest

from repro.cluster import HashRing


def test_lookup_is_stable():
    ring = HashRing([0, 1, 2])
    eligible = {0, 1, 2}
    for key in range(200):
        assert ring.lookup(key, eligible) == ring.lookup(key, eligible)


def test_all_shards_receive_keys():
    ring = HashRing([0, 1, 2, 3])
    eligible = {0, 1, 2, 3}
    owners = {ring.lookup(key, eligible) for key in range(500)}
    assert owners == eligible


def test_losing_a_shard_moves_only_its_keys():
    ring = HashRing([0, 1, 2])
    full = {0, 1, 2}
    before = {key: ring.lookup(key, full) for key in range(500)}
    after = {key: ring.lookup(key, full - {1}) for key in range(500)}
    for key in range(500):
        if before[key] != 1:
            # survivors keep every key they already owned
            assert after[key] == before[key]
        else:
            assert after[key] in (0, 2)


def test_returning_shard_reclaims_its_arcs():
    ring = HashRing([0, 1, 2])
    full = {0, 1, 2}
    before = {key: ring.lookup(key, full) for key in range(300)}
    # placement is a pure function of (key, eligible): after an outage
    # the restored fleet routes exactly as it did before
    assert {key: ring.lookup(key, full) for key in range(300)} == before


def test_preference_order_unique_and_complete():
    ring = HashRing([0, 1, 2, 3])
    order = list(ring.preference("session-42", {0, 1, 2, 3}))
    assert sorted(order) == [0, 1, 2, 3]
    assert order[0] == ring.lookup("session-42", {0, 1, 2, 3})


def test_empty_eligible_set():
    ring = HashRing([0, 1])
    assert list(ring.preference(7, set())) == []
    with pytest.raises(LookupError):
        ring.lookup(7, set())


def test_validation():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing([0], vnodes=0)
