"""From-scratch NumPy deep-learning framework (DNN substrate).

The paper trains an AlphaZero-style policy/value network (5 convolution
layers + 3 fully-connected layers, Section 5.1) with the loss of Equation 2.
This subpackage provides everything needed to do that without an external
deep-learning dependency:

- :mod:`repro.nn.layers`     -- Module base class and layer zoo (Conv2d via
  im2col, Linear, ReLU, Tanh, Flatten, BatchNorm2d, Dropout).
- :mod:`repro.nn.network`    -- :class:`Sequential` container and
  :class:`PolicyValueNet`, the paper's benchmark network.
- :mod:`repro.nn.losses`     -- AlphaZero loss (value MSE + policy
  cross-entropy + L2), Equation 2.
- :mod:`repro.nn.optim`      -- SGD / momentum / Adam optimisers and
  learning-rate schedules.
- :mod:`repro.nn.functional` -- the vectorised primitives (im2col/col2im,
  softmax family) that keep the hot paths in BLAS.
- :mod:`repro.nn.infer`      -- the fused float32 inference engine:
  :func:`compile_plan` turns a trained tower into an immutable
  :class:`InferencePlan` (BatchNorm folded, GEMM-ready weights,
  zero-allocation thread-local workspaces) that backs the networks'
  default ``predict``/``predict_batch`` path.
"""

from repro.nn.functional import col2im, im2col, log_softmax, softmax
from repro.nn.infer import InferencePlan, PlanCompileError, compile_plan, ensure_plan
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    Module,
    Parameter,
    ReLU,
    Tanh,
)
from repro.nn.losses import AlphaZeroLoss, LossValue, cross_entropy_with_logits, mse
from repro.nn.network import (
    FusedInferenceModule,
    NetworkOutput,
    PolicyValueNet,
    Sequential,
)
from repro.nn.optim import SGD, Adam, ConstantLR, CosineLR, Optimizer, StepLR
from repro.nn.resnet import ResidualBlock, ResNetPolicyValueNet

__all__ = [
    "SGD",
    "Adam",
    "AlphaZeroLoss",
    "BatchNorm2d",
    "ConstantLR",
    "Conv2d",
    "CosineLR",
    "Dropout",
    "Flatten",
    "FusedInferenceModule",
    "InferencePlan",
    "Linear",
    "LossValue",
    "Module",
    "NetworkOutput",
    "Optimizer",
    "Parameter",
    "PlanCompileError",
    "PolicyValueNet",
    "ReLU",
    "ResNetPolicyValueNet",
    "ResidualBlock",
    "Sequential",
    "StepLR",
    "Tanh",
    "col2im",
    "compile_plan",
    "cross_entropy_with_logits",
    "ensure_plan",
    "im2col",
    "log_softmax",
    "mse",
    "softmax",
]
