"""From-scratch NumPy deep-learning framework (DNN substrate).

The paper trains an AlphaZero-style policy/value network (5 convolution
layers + 3 fully-connected layers, Section 5.1) with the loss of Equation 2.
This subpackage provides everything needed to do that without an external
deep-learning dependency:

- :mod:`repro.nn.layers`     -- Module base class and layer zoo (Conv2d via
  im2col, Linear, ReLU, Tanh, Flatten, BatchNorm2d, Dropout).
- :mod:`repro.nn.network`    -- :class:`Sequential` container and
  :class:`PolicyValueNet`, the paper's benchmark network.
- :mod:`repro.nn.losses`     -- AlphaZero loss (value MSE + policy
  cross-entropy + L2), Equation 2.
- :mod:`repro.nn.optim`      -- SGD / momentum / Adam optimisers and
  learning-rate schedules.
- :mod:`repro.nn.functional` -- the vectorised primitives (im2col/col2im,
  softmax family) that keep the hot paths in BLAS.
"""

from repro.nn.functional import col2im, im2col, log_softmax, softmax
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    Module,
    Parameter,
    ReLU,
    Tanh,
)
from repro.nn.losses import AlphaZeroLoss, LossValue, cross_entropy_with_logits, mse
from repro.nn.network import NetworkOutput, PolicyValueNet, Sequential
from repro.nn.optim import SGD, Adam, ConstantLR, CosineLR, Optimizer, StepLR
from repro.nn.resnet import ResidualBlock, ResNetPolicyValueNet

__all__ = [
    "SGD",
    "Adam",
    "AlphaZeroLoss",
    "BatchNorm2d",
    "ConstantLR",
    "Conv2d",
    "CosineLR",
    "Dropout",
    "Flatten",
    "Linear",
    "LossValue",
    "Module",
    "NetworkOutput",
    "Optimizer",
    "Parameter",
    "PolicyValueNet",
    "ReLU",
    "ResNetPolicyValueNet",
    "ResidualBlock",
    "Sequential",
    "StepLR",
    "Tanh",
    "col2im",
    "cross_entropy_with_logits",
    "im2col",
    "log_softmax",
    "mse",
    "softmax",
]
