"""Vectorised numerical primitives for the NumPy DNN framework.

Everything here is shape-polymorphic and loop-free on the batch dimension;
the only Python-level loops are the kh*kw scatter loops in :func:`col2im`
(9 iterations for a 3x3 kernel), which is the standard trade-off that keeps
memory bounded while the heavy lifting stays inside BLAS/ufuncs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "im2col",
    "col2im",
    "conv_out_size",
    "softmax",
    "log_softmax",
    "one_hot",
]


def conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial extent of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output size {out} <= 0 "
            f"(size={size}, kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unfold image patches into columns.

    Parameters
    ----------
    x : (B, C, H, W) input batch.

    Returns
    -------
    (B, C*kh*kw, oh*ow) array whose matmul with a (F, C*kh*kw) weight matrix
    performs the convolution.
    """
    if x.ndim != 4:
        raise ValueError(f"im2col expects (B, C, H, W), got shape {x.shape}")
    b, c, h, w = x.shape
    oh = conv_out_size(h, kh, stride, padding)
    ow = conv_out_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    # (B, C, H', W', kh, kw) strided view; subsample by stride, no copy yet.
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]  # (B, C, oh, ow, kh, kw)
    # -> (B, C, kh, kw, oh, ow) -> (B, C*kh*kw, oh*ow); this transpose copies.
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(b, c * kh * kw, oh * ow)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into an image.

    Used in the convolution backward pass to compute the input gradient.
    """
    b, c, h, w = x_shape
    oh = conv_out_size(h, kh, stride, padding)
    ow = conv_out_size(w, kw, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    img = np.zeros((b, c, hp, wp), dtype=cols.dtype)
    cols = cols.reshape(b, c, kh, kw, oh, ow)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            img[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j]
    if padding > 0:
        return img[:, :, padding : padding + h, padding : padding + w]
    return img


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along *axis*."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along *axis*."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer array into float32 rows."""
    indices = np.asarray(indices)
    if np.any(indices < 0) or np.any(indices >= num_classes):
        raise ValueError("index out of range for one_hot")
    out = np.zeros((*indices.shape, num_classes), dtype=np.float32)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out
