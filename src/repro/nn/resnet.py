"""Residual policy/value network (AlphaZero's production architecture).

The paper's Gomoku benchmark uses a plain 5-conv + 3-FC network
(:class:`repro.nn.network.PolicyValueNet`); AlphaZero itself [Silver 2017]
uses a residual tower with batch normalisation.  This module provides that
variant so experiments can scale the evaluation cost knob (``T_DNN`` in
Equations 3-6) realistically: deeper towers shift the shared/local
trade-off toward the local tree exactly as the performance models predict.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax
from repro.nn.layers import BatchNorm2d, Conv2d, Flatten, Linear, Module, ReLU, Tanh
from repro.nn.network import FusedInferenceModule, NetworkOutput, Sequential
from repro.utils.rng import new_rng

__all__ = ["ResidualBlock", "ResNetPolicyValueNet"]


class ResidualBlock(Module):
    """conv-BN-ReLU-conv-BN + skip, ReLU  (the AlphaZero block)."""

    def __init__(self, channels: int, rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        if channels <= 0:
            raise ValueError("channels must be positive")
        rng = new_rng(rng)
        self.conv1 = Conv2d(channels, channels, 3, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(channels, channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(channels)
        self.relu_out = ReLU()
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        h = self.relu1.forward(self.bn1.forward(self.conv1.forward(x)))
        h = self.bn2.forward(self.conv2.forward(h))
        return self.relu_out.forward(h + x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        g = self.relu_out.backward(grad_out)
        # g splits: through the residual branch and through the skip
        gh = self.conv2.backward(self.bn2.backward(g))
        gh = self.conv1.backward(self.bn1.backward(self.relu1.backward(gh)))
        return gh + g


class ResNetPolicyValueNet(FusedInferenceModule):
    """Residual tower + the standard AlphaZero policy/value heads.

    Parameters
    ----------
    board_size : int or (rows, cols).
    num_blocks : residual blocks in the tower (AlphaZero uses 19/39; keep
        small for CPU experiments).
    channels : tower width.
    """

    def __init__(
        self,
        board_size: int | tuple[int, int],
        in_channels: int = 4,
        num_blocks: int = 3,
        channels: int = 32,
        action_size: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        rows, cols = (
            (board_size, board_size) if isinstance(board_size, int) else board_size
        )
        if rows <= 0 or cols <= 0:
            raise ValueError("board dimensions must be positive")
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        rng = new_rng(rng)
        self.board_shape = (rows, cols)
        self.in_channels = in_channels
        self.action_size = action_size if action_size is not None else rows * cols
        cells = rows * cols

        self.stem = Sequential(
            Conv2d(in_channels, channels, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(channels),
            ReLU(),
        )
        self.blocks = [ResidualBlock(channels, rng=rng) for _ in range(num_blocks)]
        self.policy_head = Sequential(
            Conv2d(channels, 2, 1, rng=rng),
            BatchNorm2d(2),
            ReLU(),
            Flatten(),
            Linear(2 * cells, self.action_size, rng=rng),
        )
        self.value_head = Sequential(
            Conv2d(channels, 1, 1, rng=rng),
            BatchNorm2d(1),
            ReLU(),
            Flatten(),
            Linear(cells, 64, rng=rng),
            ReLU(),
            Linear(64, 1, rng=rng),
            Tanh(),
        )

    def forward(self, x: np.ndarray) -> NetworkOutput:  # type: ignore[override]
        if x.ndim != 4:
            raise ValueError(f"expected (B, C, H, W), got {x.shape}")
        h = self.stem.forward(x)
        for block in self.blocks:
            h = block.forward(h)
        logits = self.policy_head.forward(h)
        value = self.value_head.forward(h).reshape(-1)
        return NetworkOutput(policy=softmax(logits, axis=-1), value=value, logits=logits)

    def backward(self, grad_logits: np.ndarray, grad_value: np.ndarray) -> np.ndarray:  # type: ignore[override]
        gh = self.policy_head.backward(grad_logits)
        gh = gh + self.value_head.backward(grad_value.reshape(-1, 1))
        for block in reversed(self.blocks):
            gh = block.backward(gh)
        return self.stem.backward(gh)

    # predict / predict_batch / save / load come from FusedInferenceModule;
    # in particular the residual tower now has the vectorised masked
    # predict_batch surface, so NetworkEvaluator batches it like the plain
    # tower instead of falling back to per-call masking.
