"""Loss functions, centred on the AlphaZero loss of Equation 2.

    l = sum_t (v_theta(s_t) - r)^2  -  pi_t . log p_theta(s_t)  (+ c ||theta||^2)

The policy term is a cross-entropy against the *soft* MCTS visit
distribution pi (not a hard label), so we implement it directly on logits
for numerical stability and a one-line adjoint (softmax(z) - pi).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.functional import log_softmax, softmax

__all__ = ["LossValue", "mse", "cross_entropy_with_logits", "AlphaZeroLoss"]


@dataclass(frozen=True)
class LossValue:
    """Decomposed loss with gradients ready to feed a two-headed backward."""

    total: float
    value_loss: float
    policy_loss: float
    l2_loss: float
    grad_logits: np.ndarray
    grad_value: np.ndarray


def mse(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean (over batch) squared error and its gradient wrt *pred*."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {target.shape}")
    n = pred.shape[0]
    diff = pred - target
    loss = float(np.sum(diff * diff) / n)
    return loss, 2.0 * diff / n


def cross_entropy_with_logits(
    logits: np.ndarray, target_probs: np.ndarray
) -> tuple[float, np.ndarray]:
    """Soft-label cross entropy ``-pi . log softmax(z)`` averaged over batch.

    Returns the loss and its gradient wrt the logits:
    ``(softmax(z) - pi) / B`` (exact because rows of pi sum to one).
    """
    logits = np.asarray(logits, dtype=np.float64)
    target_probs = np.asarray(target_probs, dtype=np.float64)
    if logits.shape != target_probs.shape:
        raise ValueError(f"shape mismatch {logits.shape} vs {target_probs.shape}")
    row_sums = target_probs.sum(axis=-1)
    if not np.allclose(row_sums, 1.0, atol=1e-5):
        raise ValueError("target policy rows must sum to 1")
    n = logits.shape[0]
    logp = log_softmax(logits, axis=-1)
    loss = float(-np.sum(target_probs * logp) / n)
    grad = (softmax(logits, axis=-1) - target_probs) / n
    return loss, grad


class AlphaZeroLoss:
    """Combined value + policy (+ L2) loss, Equation 2 of the paper.

    Parameters
    ----------
    l2 : weight-decay coefficient *c*.  Applied here (not in the optimiser)
        so the reported ``total`` matches Equation 2 exactly; pass
        parameters to :meth:`__call__` to include the penalty.
    """

    def __init__(self, l2: float = 1e-4) -> None:
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.l2 = l2

    def __call__(
        self,
        logits: np.ndarray,
        value: np.ndarray,
        target_policy: np.ndarray,
        target_value: np.ndarray,
        parameters: list | None = None,
    ) -> LossValue:
        value = np.asarray(value, dtype=np.float64).reshape(-1)
        target_value = np.asarray(target_value, dtype=np.float64).reshape(-1)
        v_loss, grad_v = mse(value, target_value)
        p_loss, grad_z = cross_entropy_with_logits(logits, target_policy)
        l2_loss = 0.0
        if parameters and self.l2 > 0:
            l2_loss = self.l2 * float(
                sum(np.sum(p.data * p.data) for p in parameters)
            )
            # The L2 gradient (2*c*theta) is added straight onto the
            # parameter grads; callers run this before optimizer.step().
            for p in parameters:
                p.grad += 2.0 * self.l2 * p.data
        return LossValue(
            total=v_loss + p_loss + l2_loss,
            value_loss=v_loss,
            policy_loss=p_loss,
            l2_loss=l2_loss,
            grad_logits=grad_z,
            grad_value=grad_v,
        )
