"""Optimisers and learning-rate schedules for the NumPy DNN framework.

The paper trains with stochastic gradient descent (Robbins-Monro [13],
Equation 2); we provide plain SGD, SGD with momentum, and Adam, plus
constant / step / cosine learning-rate schedules, all operating in place
on :class:`repro.nn.layers.Parameter` buffers.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "ConstantLR", "StepLR", "CosineLR"]


class Schedule:
    """Learning-rate schedule interface: maps step index -> multiplier."""

    def factor(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(Schedule):
    def factor(self, step: int) -> float:
        return 1.0


class StepLR(Schedule):
    """Multiply the LR by *gamma* every *step_size* optimiser steps."""

    def __init__(self, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def factor(self, step: int) -> float:
        return self.gamma ** (step // self.step_size)


class CosineLR(Schedule):
    """Cosine decay from 1 to *floor* over *total_steps*."""

    def __init__(self, total_steps: int, floor: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if not 0.0 <= floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")
        self.total_steps = total_steps
        self.floor = floor

    def factor(self, step: int) -> float:
        t = min(step, self.total_steps) / self.total_steps
        return self.floor + (1.0 - self.floor) * 0.5 * (1.0 + math.cos(math.pi * t))


class Optimizer:
    """Base optimiser: owns the parameter list and the step counter."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float,
        schedule: Schedule | None = None,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.parameters = list(parameters)
        self.base_lr = lr
        self.schedule = schedule or ConstantLR()
        self.steps = 0

    @property
    def lr(self) -> float:
        return self.base_lr * self.schedule.factor(self.steps)

    def step(self) -> None:
        self._apply(self.lr)
        self.steps += 1

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def _apply(self, lr: float) -> None:
        raise NotImplementedError

    # -- checkpointing ---------------------------------------------------------
    def _slot_arrays(self) -> dict[str, list[np.ndarray]]:
        """Per-parameter moment buffers to persist (momentum, Adam m/v)."""
        return {}

    def state_dict(self) -> dict:
        """JSON-able optimiser state: step counter + moment buffers.

        Resuming an Adam run without its moments silently restarts the
        bias correction and forgets the gradient history -- weights then
        diverge from the uninterrupted run on the first post-resume
        step, which is exactly what crash-resume must not do.
        """
        from repro.utils.wire import encode_array

        return {
            "steps": int(self.steps),
            "slots": {
                name: [encode_array(buf) for buf in buffers]
                for name, buffers in self._slot_arrays().items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        from repro.utils.wire import decode_array

        slots = self._slot_arrays()
        encoded = state.get("slots", {})
        for name, buffers in slots.items():
            entries = encoded.get(name)
            if entries is None or len(entries) != len(buffers):
                raise ValueError(
                    f"optimizer state is missing slot {name!r} "
                    f"({0 if entries is None else len(entries)} buffers, "
                    f"need {len(buffers)})"
                )
            for i, (buf, entry) in enumerate(zip(buffers, entries)):
                restored = decode_array(entry, f"{name}[{i}]")
                if restored.shape != buf.shape:
                    raise ValueError(
                        f"optimizer slot {name}[{i}]: shape "
                        f"{restored.shape} != parameter shape {buf.shape}"
                    )
                buf[...] = restored
        self.steps = int(state.get("steps", 0))


class SGD(Optimizer):
    """SGD with optional momentum and decoupled weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        schedule: Schedule | None = None,
    ) -> None:
        super().__init__(parameters, lr, schedule)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in parameters]

    def _slot_arrays(self) -> dict[str, list[np.ndarray]]:
        return {"velocity": self._velocity} if self.momentum else {}

    def _apply(self, lr: float) -> None:
        for p, v in zip(self.parameters, self._velocity):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        schedule: Schedule | None = None,
    ) -> None:
        super().__init__(parameters, lr, schedule)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in parameters]
        self._v = [np.zeros_like(p.data) for p in parameters]

    def _slot_arrays(self) -> dict[str, list[np.ndarray]]:
        return {"m": self._m, "v": self._v}

    def _apply(self, lr: float) -> None:
        b1, b2 = self.betas
        t = self.steps + 1
        bias1 = 1.0 - b1**t
        bias2 = 1.0 - b2**t
        for p, m, v in zip(self.parameters, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            p.data -= lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
