"""Network containers and the paper's benchmark policy/value network.

:class:`PolicyValueNet` reproduces the architecture of Section 5.1: five
convolution layers and three fully-connected layers, arranged AlphaZero
style as a shared convolutional trunk with a policy head and a value head:

    trunk : Conv(C->32, 3x3) - ReLU - Conv(32->64, 3x3) - ReLU
            - Conv(64->128, 3x3) - ReLU                       (3 convs)
    policy: Conv(128->4, 1x1) - ReLU - Flatten - Linear(-> A) (1 conv, 1 FC)
    value : Conv(128->2, 1x1) - ReLU - Flatten
            - Linear(-> 64) - ReLU - Linear(-> 1) - Tanh      (1 conv, 2 FC)

Total: 5 conv + 3 FC, matching the paper's Gomoku network.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.nn.functional import softmax
from repro.nn.layers import Conv2d, Flatten, Linear, Module, ReLU, Tanh
from repro.utils.rng import new_rng

__all__ = ["Sequential", "NetworkOutput", "FusedInferenceModule", "PolicyValueNet"]


class Sequential(Module):
    """Chain of layers with forward/backward composition."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]


@dataclass(frozen=True)
class NetworkOutput:
    """Policy/value inference result.

    ``policy`` rows are probabilities over the full action space (softmax of
    the logits); masking to legal moves is the caller's job because legality
    is game state, not network state.
    """

    policy: np.ndarray  # (B, A) probabilities
    value: np.ndarray  # (B,) in [-1, 1]
    logits: np.ndarray  # (B, A) raw policy-head outputs


class FusedInferenceModule(Module):
    """Inference plumbing shared by the policy/value towers.

    Provides the ``predict`` / ``predict_batch`` entry points every
    evaluator uses, backed by one of two backends:

    - ``"fused"`` (default): a compiled :class:`repro.nn.infer.InferencePlan`
      -- BatchNorm folded, float32 GEMM-ready weights, zero-allocation
      thread-local workspaces.  Compiled lazily and re-compiled whenever
      :attr:`~Module.weights_version` moves (``load_state_dict``, the
      trainer's SGD step, or an explicit :meth:`invalidate_plan`).
    - ``"reference"``: the float64 layer-by-layer forward, forced into
      eval mode for the duration of the call so inference can never
      mutate BatchNorm running statistics or dropout state.

    Training is untouched either way: ``forward``/``backward`` remain the
    float64 autodiff path.
    """

    def __init__(self) -> None:
        super().__init__()
        self.inference_backend = "fused"
        self._plan = None
        # the reference path toggles the module-wide train/eval flag; engine
        # threads can evaluate concurrently, so the toggle+forward+restore
        # must be atomic or thread B would run (and mutate BatchNorm stats)
        # in training mode while thread A restores.  The fused path needs no
        # lock -- plans are immutable with thread-local workspaces.
        self._reference_lock = threading.Lock()

    # -- backend selection -------------------------------------------------
    def set_inference_backend(self, backend: str) -> "FusedInferenceModule":
        """Select ``"fused"`` (compiled float32 plan) or ``"reference"``
        (float64 eval-mode forward) for ``predict``/``predict_batch``."""
        if backend not in ("fused", "reference"):
            raise ValueError(
                f"unknown inference backend {backend!r}; "
                "expected 'fused' or 'reference'"
            )
        self.inference_backend = backend
        if backend == "reference":
            self._plan = None
        return self

    def invalidate_plan(self) -> None:
        """Drop the compiled plan (next fused call recompiles).  Needed only
        after weight mutations that bypass ``load_state_dict`` and the
        trainer (which both bump ``weights_version`` themselves)."""
        self._plan = None

    def inference_plan(self):
        """The current compiled plan, (re)compiling if absent or stale."""
        plan = self._plan
        if plan is None or plan.weights_version != self.weights_version:
            from repro.nn.infer import compile_plan  # deferred: import cycle

            plan = compile_plan(self)
            self._plan = plan
        return plan

    # -- inference entry points --------------------------------------------
    def predict(self, states: np.ndarray) -> NetworkOutput:
        """Inference entry point used by MCTS evaluators.

        Accepts a single state ``(C, H, W)`` or a batch ``(B, C, H, W)``.
        Never mutates network state (BatchNorm statistics, caches): the
        fused backend executes an immutable compiled snapshot; the
        reference backend runs with eval mode forced.
        """
        states = np.asarray(states)
        if states.ndim == 3:
            states = states[None]
        if self.inference_backend == "fused":
            return self.inference_plan().predict(states)
        return self._reference_forward(np.asarray(states, dtype=np.float64))

    def predict_batch(
        self, states: np.ndarray, legal_masks: np.ndarray | None = None
    ) -> NetworkOutput:
        """Fully vectorised batched inference with optional legality masking.

        The whole batch flows through the network as one stacked array --
        the accelerator-queue payload of Section 3.3 -- and, when
        *legal_masks* ``(B, A)`` is given, illegal-move masking and
        renormalisation are applied as batched array ops rather than a
        per-state Python loop.  Rows whose legal probability mass underflows
        fall back to uniform-over-legal (mirroring
        :func:`repro.mcts.evaluation.mask_and_normalize`).
        """
        out = self.predict(states)
        if legal_masks is None:
            return out
        # single source of the legality-normalisation contract
        from repro.mcts.evaluation import mask_and_normalize

        policy = mask_and_normalize(out.policy, legal_masks)
        return NetworkOutput(policy=policy, value=out.value, logits=out.logits)

    def _reference_forward(self, states: np.ndarray) -> NetworkOutput:
        """Float64 forward with eval mode forced for the duration.

        Inference through a network left in training mode used to silently
        update BatchNorm running statistics -- changing outputs between
        identical calls and corrupting the statistics training relies on.
        Serialised: the mode flag is module-global state, so concurrent
        reference-backend evaluation takes a lock (the default fused
        backend runs lock-free).
        """
        with self._reference_lock:
            was_training = self.training
            if was_training:
                self.eval()
            try:
                return self.forward(states)
            finally:
                if was_training:
                    self.train()

    # -- persistence -------------------------------------------------------
    def save(self, path: str) -> None:
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})


class PolicyValueNet(FusedInferenceModule):
    """The paper's 5-conv + 3-FC policy/value network.

    Parameters
    ----------
    board_size : spatial extent (15 for the paper's Gomoku benchmark); a
        ``(rows, cols)`` tuple supports non-square boards (Connect-Four).
    in_channels : number of input feature planes.
    channels : trunk widths, default (32, 64, 128).
    action_size : size of the policy output; defaults to rows*cols (one
        action per cell, the Gomoku convention).
    """

    def __init__(
        self,
        board_size: int | tuple[int, int],
        in_channels: int = 4,
        channels: tuple[int, int, int] = (32, 64, 128),
        action_size: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        rows, cols = (
            (board_size, board_size) if isinstance(board_size, int) else board_size
        )
        if rows <= 0 or cols <= 0:
            raise ValueError("board dimensions must be positive")
        rng = new_rng(rng)
        self.board_shape = (rows, cols)
        self.board_size = rows  # kept for the common square case
        self.in_channels = in_channels
        self.action_size = action_size if action_size is not None else rows * cols
        if self.action_size <= 0:
            raise ValueError("action_size must be positive")
        c1, c2, c3 = channels

        self.trunk = Sequential(
            Conv2d(in_channels, c1, 3, padding=1, rng=rng),
            ReLU(),
            Conv2d(c1, c2, 3, padding=1, rng=rng),
            ReLU(),
            Conv2d(c2, c3, 3, padding=1, rng=rng),
            ReLU(),
        )
        cells = rows * cols
        self.policy_head = Sequential(
            Conv2d(c3, 4, 1, rng=rng),
            ReLU(),
            Flatten(),
            Linear(4 * cells, self.action_size, rng=rng),
        )
        self.value_head = Sequential(
            Conv2d(c3, 2, 1, rng=rng),
            ReLU(),
            Flatten(),
            Linear(2 * cells, 64, rng=rng),
            ReLU(),
            Linear(64, 1, rng=rng),
            Tanh(),
        )

    # -- inference ---------------------------------------------------------
    def forward(self, x: np.ndarray) -> NetworkOutput:  # type: ignore[override]
        """Run policy and value heads; caches activations for backward."""
        if x.ndim != 4:
            raise ValueError(f"expected (B, C, H, W), got {x.shape}")
        h = self.trunk.forward(x)
        logits = self.policy_head.forward(h)
        value = self.value_head.forward(h).reshape(-1)
        return NetworkOutput(policy=softmax(logits, axis=-1), value=value, logits=logits)

    def backward(self, grad_logits: np.ndarray, grad_value: np.ndarray) -> np.ndarray:  # type: ignore[override]
        """Two-headed backward; gradients merge additively at the trunk."""
        gh_policy = self.policy_head.backward(grad_logits)
        gh_value = self.value_head.backward(grad_value.reshape(-1, 1))
        return self.trunk.backward(gh_policy + gh_value)

    # predict / predict_batch / save / load come from FusedInferenceModule:
    # fused float32 plan by default, float64 eval-forced reference otherwise.
