"""Network containers and the paper's benchmark policy/value network.

:class:`PolicyValueNet` reproduces the architecture of Section 5.1: five
convolution layers and three fully-connected layers, arranged AlphaZero
style as a shared convolutional trunk with a policy head and a value head:

    trunk : Conv(C->32, 3x3) - ReLU - Conv(32->64, 3x3) - ReLU
            - Conv(64->128, 3x3) - ReLU                       (3 convs)
    policy: Conv(128->4, 1x1) - ReLU - Flatten - Linear(-> A) (1 conv, 1 FC)
    value : Conv(128->2, 1x1) - ReLU - Flatten
            - Linear(-> 64) - ReLU - Linear(-> 1) - Tanh      (1 conv, 2 FC)

Total: 5 conv + 3 FC, matching the paper's Gomoku network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.functional import softmax
from repro.nn.layers import Conv2d, Flatten, Linear, Module, ReLU, Tanh
from repro.utils.rng import new_rng

__all__ = ["Sequential", "NetworkOutput", "PolicyValueNet"]


class Sequential(Module):
    """Chain of layers with forward/backward composition."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]


@dataclass(frozen=True)
class NetworkOutput:
    """Policy/value inference result.

    ``policy`` rows are probabilities over the full action space (softmax of
    the logits); masking to legal moves is the caller's job because legality
    is game state, not network state.
    """

    policy: np.ndarray  # (B, A) probabilities
    value: np.ndarray  # (B,) in [-1, 1]
    logits: np.ndarray  # (B, A) raw policy-head outputs


class PolicyValueNet(Module):
    """The paper's 5-conv + 3-FC policy/value network.

    Parameters
    ----------
    board_size : spatial extent (15 for the paper's Gomoku benchmark); a
        ``(rows, cols)`` tuple supports non-square boards (Connect-Four).
    in_channels : number of input feature planes.
    channels : trunk widths, default (32, 64, 128).
    action_size : size of the policy output; defaults to rows*cols (one
        action per cell, the Gomoku convention).
    """

    def __init__(
        self,
        board_size: int | tuple[int, int],
        in_channels: int = 4,
        channels: tuple[int, int, int] = (32, 64, 128),
        action_size: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        rows, cols = (
            (board_size, board_size) if isinstance(board_size, int) else board_size
        )
        if rows <= 0 or cols <= 0:
            raise ValueError("board dimensions must be positive")
        rng = new_rng(rng)
        self.board_shape = (rows, cols)
        self.board_size = rows  # kept for the common square case
        self.in_channels = in_channels
        self.action_size = action_size if action_size is not None else rows * cols
        if self.action_size <= 0:
            raise ValueError("action_size must be positive")
        c1, c2, c3 = channels

        self.trunk = Sequential(
            Conv2d(in_channels, c1, 3, padding=1, rng=rng),
            ReLU(),
            Conv2d(c1, c2, 3, padding=1, rng=rng),
            ReLU(),
            Conv2d(c2, c3, 3, padding=1, rng=rng),
            ReLU(),
        )
        cells = rows * cols
        self.policy_head = Sequential(
            Conv2d(c3, 4, 1, rng=rng),
            ReLU(),
            Flatten(),
            Linear(4 * cells, self.action_size, rng=rng),
        )
        self.value_head = Sequential(
            Conv2d(c3, 2, 1, rng=rng),
            ReLU(),
            Flatten(),
            Linear(2 * cells, 64, rng=rng),
            ReLU(),
            Linear(64, 1, rng=rng),
            Tanh(),
        )

    # -- inference ---------------------------------------------------------
    def forward(self, x: np.ndarray) -> NetworkOutput:  # type: ignore[override]
        """Run policy and value heads; caches activations for backward."""
        if x.ndim != 4:
            raise ValueError(f"expected (B, C, H, W), got {x.shape}")
        h = self.trunk.forward(x)
        logits = self.policy_head.forward(h)
        value = self.value_head.forward(h).reshape(-1)
        return NetworkOutput(policy=softmax(logits, axis=-1), value=value, logits=logits)

    def backward(self, grad_logits: np.ndarray, grad_value: np.ndarray) -> np.ndarray:  # type: ignore[override]
        """Two-headed backward; gradients merge additively at the trunk."""
        gh_policy = self.policy_head.backward(grad_logits)
        gh_value = self.value_head.backward(grad_value.reshape(-1, 1))
        return self.trunk.backward(gh_policy + gh_value)

    def predict(self, states: np.ndarray) -> NetworkOutput:
        """Inference entry point used by MCTS evaluators.

        Accepts a single state ``(C, H, W)`` or a batch ``(B, C, H, W)``.
        """
        states = np.asarray(states, dtype=np.float64)
        if states.ndim == 3:
            states = states[None]
        return self.forward(states)

    def predict_batch(
        self, states: np.ndarray, legal_masks: np.ndarray | None = None
    ) -> NetworkOutput:
        """Fully vectorised batched inference with optional legality masking.

        The whole batch flows through the network as one stacked array --
        the accelerator-queue payload of Section 3.3 -- and, when
        *legal_masks* ``(B, A)`` is given, illegal-move masking and
        renormalisation are applied as batched array ops rather than a
        per-state Python loop.  Rows whose legal probability mass underflows
        fall back to uniform-over-legal (mirroring
        :func:`repro.mcts.evaluation.mask_and_normalize`).
        """
        out = self.predict(states)
        if legal_masks is None:
            return out
        # single source of the legality-normalisation contract
        from repro.mcts.evaluation import mask_and_normalize

        policy = mask_and_normalize(out.policy, legal_masks)
        return NetworkOutput(policy=policy, value=out.value, logits=out.logits)

    # -- persistence ---------------------------------------------------------
    def save(self, path: str) -> None:
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})
