"""Fused float32 inference engine: plan compilation over trained towers.

Every evaluator in the system -- serial search, the six parallel schemes,
the thread engine and the farm's evaluator process -- bottoms out in the
same pure-NumPy forward pass, and after the PR-2 tree speedups that
forward *is* the iteration cost (``T_DNN`` in Equations 3-6).  The
training path cannot change: it needs float64 autodiff with per-layer
activation caches.  Inference needs none of that, so this module compiles
a :class:`~repro.nn.layers.Module` tower into an :class:`InferencePlan`,
an immutable, inference-only executor:

- **BatchNorm folding** -- at compile time every ``Conv2d -> BatchNorm2d``
  pair collapses into a single convolution whose weights/bias absorb the
  (snapshotted) running statistics and affine parameters, so BN costs
  nothing at run time and inference can never mutate running stats;
- **float32, GEMM-ready weights** -- conv kernels are cast once and
  pre-reshaped to ``(k*k*C, F)`` matrices, linear weights pre-transposed,
  so every layer is one ``np.matmul`` with no per-call ``einsum`` path
  planning;
- **channels-last execution** -- activations flow through the plan in
  NHWC layout, which makes the im2col gather copy contiguous runs of C
  floats, turns 1x1 head convolutions into plain 2-D GEMMs, and lets the
  whole batch go through one big-M GEMM per layer (the boundary back to
  the reference NCHW flatten order is a single tiny head-side transpose);
- **zero-allocation workspaces** -- im2col columns, padded inputs and all
  activation temporaries are served from a per-plan arena keyed by input
  shape, so the steady state allocates nothing beyond the (small) output
  arrays; arenas are thread-local, making a single plan safe to share
  across all engine threads;
- **fused elementwise tails** -- ReLU/Tanh run in place on the GEMM
  output, and residual blocks execute as conv -> conv -> in-place skip
  add -> in-place ReLU.

Plans are *immutable snapshots*: weight updates after compilation are
invisible until a recompile.  :class:`~repro.nn.layers.Module` tracks a
``weights_version`` (bumped by ``load_state_dict`` and the trainer's SGD
step) and the networks' ``inference_plan()`` accessor recompiles lazily
whenever the version moved, so the serving engine, the farm's evaluator
process and the training pipeline all stay coherent without touching the
hot path.
"""

from __future__ import annotations

import itertools
import threading

import numpy as np

from repro.nn.functional import conv_out_size, softmax
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    Module,
    ReLU,
    Tanh,
)

__all__ = ["PlanCompileError", "InferencePlan", "compile_plan", "ensure_plan"]


class PlanCompileError(TypeError):
    """The tower contains a layer or structure the compiler cannot fuse."""


# ---------------------------------------------------------------------------
# workspace arena
# ---------------------------------------------------------------------------


class _Workspace:
    """Preallocated float32 buffers for one (batch, spatial) input shape.

    Buffers are keyed by ``(step_id, role)`` so every step writes into its
    own stable storage; after the first call with a given input shape the
    executor performs no large allocations.
    """

    __slots__ = ("_bufs", "bound")

    def __init__(self) -> None:
        self._bufs: dict[tuple, np.ndarray] = {}
        #: per-step caches of pre-bound views (padded interiors, strided
        #: window views, reshaped GEMM operands), so the steady state does
        #: no per-call view construction either
        self.bound: dict[int, tuple] = {}

    def get(self, key: tuple, shape: tuple[int, ...], zero: bool = False) -> np.ndarray:
        buf = self._bufs.get(key)
        if buf is None or buf.shape != shape:
            buf = (
                np.zeros(shape, dtype=np.float32)
                if zero
                else np.empty(shape, dtype=np.float32)
            )
            self._bufs[key] = buf
        return buf

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._bufs.values())


# ---------------------------------------------------------------------------
# fused steps
# ---------------------------------------------------------------------------


class _FusedConvStep:
    """``conv (+folded BN) (+ReLU)`` as one GEMM against a pre-reshaped
    float32 weight matrix, with im2col served from the workspace.

    Activations are NHWC, so the column matrix is ``(B*oh*ow, k*k*C)``
    (contiguous C-runs in the gather), the whole batch is one
    ``(B*L, K) @ (K, F)`` GEMM, and a 1x1 convolution needs no gather at
    all.  All views the kernel needs -- the padded-buffer interior, the
    strided im2col window view, the 6-D destination view of the column
    buffer, the GEMM output and its NHWC reshape -- are constructed once
    per (workspace, input buffer) and cached, so a steady-state call is
    exactly ``interior-copy, window-gather, GEMM, bias, ReLU`` with no
    Python-side array bookkeeping.
    """

    __slots__ = ("sid", "w", "b", "kernel", "stride", "padding", "relu", "out_channels")

    def __init__(
        self,
        sid: int,
        w: np.ndarray,  # (k*k*C, F) float64 at build time
        b: np.ndarray,  # (F,)
        kernel: int,
        stride: int,
        padding: int,
        relu: bool,
    ) -> None:
        self.sid = sid
        self.w = np.ascontiguousarray(w, dtype=np.float32)
        self.b = np.ascontiguousarray(b, dtype=np.float32)  # (F,), row broadcast
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.relu = relu
        self.out_channels = self.w.shape[1]

    def _bind(self, x: np.ndarray, ws: _Workspace) -> tuple:
        """Allocate this step's buffers for *x*'s NHWC shape and pre-build
        every view of them the per-call kernel touches."""
        bsz, h, w, c = x.shape
        k, s, p = self.kernel, self.stride, self.padding
        oh = conv_out_size(h, k, s, p)
        ow = conv_out_size(w, k, s, p)
        if k == 1 and s == 1 and p == 0:
            # 1x1 convolution: the NHWC input already is the column matrix
            interior, win6, dst6 = None, None, None
            cols = x.reshape(bsz * h * w, c)
        else:
            if p > 0:
                # border is zeroed at allocation and never written again;
                # only the interior view is refreshed per call
                pad = ws.get(
                    (self.sid, "pad"), (bsz, h + 2 * p, w + 2 * p, c), zero=True
                )
                interior = pad[:, p : p + h, p : p + w, :]
                src = pad
            else:
                interior, src = None, x
            cols = ws.get((self.sid, "cols"), (bsz * oh * ow, k * k * c))
            windows = np.lib.stride_tricks.sliding_window_view(
                src, (k, k), axis=(1, 2)
            )  # (B, oh', ow', C, k, k)
            if s > 1:
                windows = windows[:, ::s, ::s]
            win6 = windows.transpose(0, 1, 2, 4, 5, 3)  # (B, oh, ow, k, k, C)
            dst6 = cols.reshape(bsz, oh, ow, k, k, c)
        out = ws.get((self.sid, "out"), (bsz * oh * ow, self.out_channels))
        return (x, interior, win6, dst6, cols, out, out.reshape(bsz, oh, ow, self.out_channels))

    def run(self, x: np.ndarray, ws: _Workspace) -> np.ndarray:
        bound = ws.bound.get(self.sid)
        if bound is None or bound[0] is not x:
            bound = self._bind(x, ws)
            ws.bound[self.sid] = bound
        _, interior, win6, dst6, cols, out, out4 = bound
        if interior is not None:
            interior[...] = x
        if dst6 is not None:
            # strided gather straight into the preallocated column buffer
            np.copyto(dst6, win6)
        np.matmul(cols, self.w, out=out)
        out += self.b
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out4


class _ResidualStep:
    """AlphaZero block: conv+BN+ReLU, conv+BN, in-place skip add, in-place
    ReLU.  Both convolutions already carry their folded BatchNorms."""

    __slots__ = ("conv1", "conv2")

    def __init__(self, conv1: _FusedConvStep, conv2: _FusedConvStep) -> None:
        self.conv1 = conv1
        self.conv2 = conv2

    def run(self, x: np.ndarray, ws: _Workspace) -> np.ndarray:
        h = self.conv1.run(x, ws)
        out = self.conv2.run(h, ws)
        out += x  # skip connection, in place on conv2's workspace buffer
        np.maximum(out, 0.0, out=out)
        return out


class _AffineStep:
    """Per-channel ``y = x * scale + shift`` (a BatchNorm2d that has no
    preceding convolution to fold into), optionally fused with ReLU.
    NHWC puts channels last, so the per-channel vectors broadcast as-is."""

    __slots__ = ("sid", "scale", "shift", "relu")

    def __init__(self, sid: int, scale: np.ndarray, shift: np.ndarray, relu: bool) -> None:
        self.sid = sid
        self.scale = np.ascontiguousarray(scale, dtype=np.float32)
        self.shift = np.ascontiguousarray(shift, dtype=np.float32)
        self.relu = relu

    def run(self, x: np.ndarray, ws: _Workspace) -> np.ndarray:
        out = ws.get((self.sid, "out"), x.shape)
        np.multiply(x, self.scale, out=out)
        out += self.shift
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out


class _FlattenStep:
    """NHWC -> flat ``(B, C*H*W)`` in the *reference NCHW order*, so the
    following Linear weights apply unchanged.  This is the single place
    the channels-last execution layout shows; it runs on head tensors with
    1-4 channels, so the transpose copy is tiny."""

    __slots__ = ("sid",)

    def __init__(self, sid: int) -> None:
        self.sid = sid

    def run(self, x: np.ndarray, ws: _Workspace) -> np.ndarray:
        bound = ws.bound.get(self.sid)
        if bound is None or bound[0] is not x:
            bsz, h, w, c = x.shape
            flat = ws.get((self.sid, "out"), (bsz, c * h * w))
            bound = (x, x.transpose(0, 3, 1, 2), flat.reshape(bsz, c, h, w), flat)
            ws.bound[self.sid] = bound
        _, src_nchw, dst_nchw, flat = bound
        np.copyto(dst_nchw, src_nchw)
        return flat


class _LinearStep:
    """``y = x @ W.T (+ b)`` with the weight pre-transposed at compile time,
    optionally fused with an in-place ReLU or Tanh."""

    __slots__ = ("sid", "wt", "b", "act", "out_features")

    def __init__(
        self, sid: int, wt: np.ndarray, b: np.ndarray | None, act: str | None
    ) -> None:
        self.sid = sid
        self.wt = np.ascontiguousarray(wt, dtype=np.float32)  # (in, out)
        self.b = None if b is None else np.ascontiguousarray(b, dtype=np.float32)
        self.act = act
        self.out_features = self.wt.shape[1]

    def run(self, x: np.ndarray, ws: _Workspace) -> np.ndarray:
        out = ws.get((self.sid, "out"), (x.shape[0], self.out_features))
        np.matmul(x, self.wt, out=out)
        if self.b is not None:
            out += self.b
        if self.act == "relu":
            np.maximum(out, 0.0, out=out)
        elif self.act == "tanh":
            np.tanh(out, out=out)
        return out


class _ActStep:
    """Standalone ReLU/Tanh that could not be fused into a producer."""

    __slots__ = ("sid", "act")

    def __init__(self, sid: int, act: str) -> None:
        self.sid = sid
        self.act = act

    def run(self, x: np.ndarray, ws: _Workspace) -> np.ndarray:
        out = ws.get((self.sid, "out"), x.shape)
        if self.act == "relu":
            np.maximum(x, 0.0, out=out)
        else:
            np.tanh(x, out=out)
        return out


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------


def _fold_bn(w: np.ndarray, b: np.ndarray, bn: BatchNorm2d) -> tuple[np.ndarray, np.ndarray]:
    """Fold an eval-mode BatchNorm into the preceding conv's ``(w, b)``.

    ``BN(conv(x)) = gamma * (conv(x) - mean) / sqrt(var + eps) + beta``
    collapses to a convolution with per-output-channel rescaled weights and
    a shifted bias.  Running statistics are *snapshotted here*: the plan is
    a frozen function of the weights at compile time.
    """
    scale = bn.gamma.data / np.sqrt(bn.running_var + bn.eps)
    return w * scale[:, None, None, None], (b - bn.running_mean) * scale + bn.beta.data


def _compile_conv(
    conv: Conv2d, bn: BatchNorm2d | None, relu: bool, sid: int, stats: dict
) -> _FusedConvStep:
    w = conv.weight.data  # (F, C, k, k)
    b = (
        conv.bias.data
        if conv.bias is not None
        else np.zeros(conv.out_channels, dtype=np.float64)
    )
    if bn is not None:
        w, b = _fold_bn(w, b, bn)
        stats["folded_batchnorms"] += 1
    # GEMM-ready for NHWC columns: K-axis ordered (k_h, k_w, C), F last
    w_mat = w.transpose(2, 3, 1, 0).reshape(-1, conv.out_channels)
    return _FusedConvStep(
        sid, w_mat, b, conv.kernel_size, conv.stride, conv.padding, relu
    )


def _compile_chain(layers: list[Module], ids: "itertools.count", stats: dict) -> list:
    """Compile a Sequential's layer list into fused steps, with lookahead
    fusion of Conv2d+BatchNorm2d+ReLU and Linear+ReLU/Tanh runs."""
    steps: list = []
    i = 0
    n = len(layers)
    while i < n:
        layer = layers[i]
        if isinstance(layer, Conv2d):
            bn = None
            if i + 1 < n and isinstance(layers[i + 1], BatchNorm2d):
                bn = layers[i + 1]
                i += 1
            relu = False
            if i + 1 < n and isinstance(layers[i + 1], ReLU):
                relu = True
                i += 1
            steps.append(_compile_conv(layer, bn, relu, next(ids), stats))
        elif isinstance(layer, Linear):
            act = None
            if i + 1 < n and isinstance(layers[i + 1], (ReLU, Tanh)):
                act = "relu" if isinstance(layers[i + 1], ReLU) else "tanh"
                i += 1
            steps.append(
                _LinearStep(
                    next(ids),
                    layer.weight.data.T,
                    None if layer.bias is None else layer.bias.data,
                    act,
                )
            )
        elif isinstance(layer, BatchNorm2d):
            scale = layer.gamma.data / np.sqrt(layer.running_var + layer.eps)
            shift = layer.beta.data - layer.running_mean * scale
            relu = False
            if i + 1 < n and isinstance(layers[i + 1], ReLU):
                relu = True
                i += 1
            steps.append(_AffineStep(next(ids), scale, shift, relu))
        elif isinstance(layer, Flatten):
            steps.append(_FlattenStep(next(ids)))
        elif isinstance(layer, ReLU):
            steps.append(_ActStep(next(ids), "relu"))
        elif isinstance(layer, Tanh):
            steps.append(_ActStep(next(ids), "tanh"))
        elif isinstance(layer, Dropout):
            pass  # identity at inference
        else:
            raise PlanCompileError(
                f"cannot compile layer of type {type(layer).__name__}; "
                "supported: Conv2d, Linear, BatchNorm2d, ReLU, Tanh, "
                "Flatten, Dropout"
            )
        i += 1
    return steps


def _compile_residual(block, ids: "itertools.count", stats: dict) -> _ResidualStep:
    return _ResidualStep(
        _compile_conv(block.conv1, block.bn1, relu=True, sid=next(ids), stats=stats),
        _compile_conv(block.conv2, block.bn2, relu=False, sid=next(ids), stats=stats),
    )


class InferencePlan:
    """Immutable fused float32 executor for a policy/value tower.

    Built by :func:`compile_plan`; run via :meth:`predict`.  The compiled
    weights are private float32 copies, so the plan stays valid (and
    bit-stable) no matter what happens to the source network afterwards --
    staleness is detected through :attr:`weights_version`, not aliasing.

    Thread safety: all mutable run-time state (the workspace arenas) is
    thread-local, so one plan may be shared by any number of engine
    threads; every thread pays its own first-call allocation and then runs
    allocation-free.
    """

    def __init__(
        self,
        trunk: list,
        policy: list,
        value: list,
        weights_version: int,
        in_channels: int,
        board_shape: tuple[int, int],
        folded_batchnorms: int,
    ) -> None:
        self._trunk = trunk
        self._policy = policy
        self._value = value
        self.weights_version = weights_version
        self.in_channels = in_channels
        self.board_shape = board_shape
        self.folded_batchnorms = folded_batchnorms
        self._tls = threading.local()

    # -- introspection ----------------------------------------------------
    @property
    def num_steps(self) -> int:
        return len(self._trunk) + len(self._policy) + len(self._value)

    def workspace_nbytes(self) -> int:
        """Bytes held by the *calling thread's* arenas (0 before first use)."""
        arenas = getattr(self._tls, "arenas", None)
        if not arenas:
            return 0
        return sum(ws.nbytes for ws in arenas.values())

    #: arenas retained per thread; each distinct input shape (in practice:
    #: each distinct batch size) owns one, and queue/farm evaluators flush
    #: at varying occupancy, so an unbounded map would slowly accumulate a
    #: multi-MB arena per batch size ever seen.  LRU-evicting beyond this
    #: cap bounds retention; a re-observed shape just rebinds (~100us).
    MAX_ARENAS_PER_THREAD = 8

    # -- execution --------------------------------------------------------
    def _workspace(self, shape: tuple[int, ...]) -> _Workspace:
        arenas = getattr(self._tls, "arenas", None)
        if arenas is None:
            arenas = {}
            self._tls.arenas = arenas
        ws = arenas.pop(shape, None)
        if ws is None:
            ws = _Workspace()
            while len(arenas) >= self.MAX_ARENAS_PER_THREAD:
                arenas.pop(next(iter(arenas)))  # least recently used
        arenas[shape] = ws  # (re)insert at the most-recent end
        return ws

    def predict(self, states: np.ndarray):
        """Fused forward pass: ``(B, C, H, W)`` (or a single ``(C, H, W)``)
        -> :class:`~repro.nn.network.NetworkOutput` with float64 outputs.

        The returned arrays are freshly allocated (they do not alias the
        workspace), so callers may keep them across subsequent calls.
        """
        from repro.nn.network import NetworkOutput  # import cycle guard

        states = np.asarray(states)
        if states.ndim == 3:
            states = states[None]
        if states.ndim != 4 or states.shape[1] != self.in_channels:
            raise ValueError(
                f"plan expects (B, {self.in_channels}, H, W), got {states.shape}"
            )
        ws = self._workspace(states.shape)
        bsz, c, h, w = states.shape
        x = ws.get(("in",), (bsz, h, w, c))
        # single cast to float32, transposed into the plan's NHWC layout
        np.copyto(x, states.transpose(0, 2, 3, 1))
        for step in self._trunk:
            x = step.run(x, ws)
        p = x
        for step in self._policy:
            p = step.run(p, ws)
        v = x
        for step in self._value:
            v = step.run(v, ws)
        # small fresh outputs: cast up once, softmax in float64 to mirror
        # the reference post-processing exactly
        logits = p.astype(np.float64)
        value = v.reshape(-1).astype(np.float64)
        return NetworkOutput(
            policy=softmax(logits, axis=-1), value=value, logits=logits
        )

    __call__ = predict


def compile_plan(network: Module) -> InferencePlan:
    """Compile a policy/value tower into an :class:`InferencePlan`.

    Supports any network shaped like the two stock towers: either a
    ``trunk`` Sequential (:class:`~repro.nn.network.PolicyValueNet`) or a
    ``stem`` Sequential plus a ``blocks`` list of residual blocks
    (:class:`~repro.nn.resnet.ResNetPolicyValueNet`), followed by
    ``policy_head`` / ``value_head`` Sequentials of fusable layers.
    """
    ids = itertools.count()
    stats = {"folded_batchnorms": 0}
    if hasattr(network, "trunk"):
        trunk = _compile_chain(network.trunk.layers, ids, stats)
    elif hasattr(network, "stem") and hasattr(network, "blocks"):
        trunk = _compile_chain(network.stem.layers, ids, stats)
        trunk.extend(_compile_residual(b, ids, stats) for b in network.blocks)
    else:
        raise PlanCompileError(
            f"{type(network).__name__} has neither a 'trunk' nor a "
            "'stem'+'blocks' tower; cannot compile an inference plan"
        )
    if not (hasattr(network, "policy_head") and hasattr(network, "value_head")):
        raise PlanCompileError(
            f"{type(network).__name__} lacks policy_head/value_head"
        )
    policy = _compile_chain(network.policy_head.layers, ids, stats)
    value = _compile_chain(network.value_head.layers, ids, stats)
    return InferencePlan(
        trunk,
        policy,
        value,
        weights_version=getattr(network, "weights_version", 0),
        in_channels=network.in_channels,
        board_shape=network.board_shape,
        folded_batchnorms=stats["folded_batchnorms"],
    )


def ensure_plan(network) -> InferencePlan | None:
    """Compile (or refresh) *network*'s fused plan off the hot path.

    Used by the serving engine and the farm's evaluator process at startup
    and after weight re-syncs, so the first real evaluation batch never
    pays compilation.  Returns ``None`` (and does nothing) for networks
    without fused-inference support or with the reference backend selected.
    """
    if getattr(network, "inference_backend", None) != "fused":
        return None
    accessor = getattr(network, "inference_plan", None)
    if accessor is None:
        return None
    return accessor()
