"""Layer zoo for the NumPy DNN framework.

Design: explicit ``forward``/``backward`` per layer rather than tape-based
autodiff.  The network in the paper is a fixed feed-forward graph (shared
convolutional trunk + two heads), so manual adjoints keep every hot path a
single BLAS call and make the memory profile predictable -- the property
the HPC guides emphasise (vectorise, avoid copies, mind the cache).

Conventions
-----------
- ``forward(x)`` caches whatever the adjoint needs on ``self``.
- ``backward(grad_out)`` accumulates parameter gradients into
  ``Parameter.grad`` (+=, so gradients naturally sum over multiple
  backward calls until ``zero_grad``) and returns the input gradient.
- Layers are stateless between ``forward``/``backward`` pairs apart from
  those caches; a layer instance is therefore *not* safe for concurrent
  training from multiple threads, matching the paper's single training
  stream.

Thread safety for *inference* is a different story: evaluators never call
``forward`` on these layers directly -- they go through the networks'
``predict``/``predict_batch``, which by default execute a compiled
:class:`repro.nn.infer.InferencePlan`.  Plans hold immutable float32
copies of the weights and keep all run-time temporaries in thread-local
workspaces, so one plan (hence one network) is safe to share across any
number of search/engine threads.  Only the float64 reference path (and
training itself) remains single-threaded per module instance.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import col2im, conv_out_size, im2col
from repro.nn.init import he_normal, xavier_uniform, zeros
from repro.utils.rng import new_rng

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Conv2d",
    "ReLU",
    "Tanh",
    "Flatten",
    "BatchNorm2d",
    "Dropout",
]


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter(name={self.name!r}, shape={self.shape})"


class Module:
    """Base class: parameter discovery, train/eval mode, (de)serialisation."""

    #: names of non-trainable state arrays this module owns (e.g. BatchNorm
    #: running statistics).  Serialised by :meth:`state_dict` alongside the
    #: parameters: inference folds them into compiled plans, so dropping
    #: them on save/load or cross-process weight sync would silently change
    #: outputs.
    _buffer_names: tuple[str, ...] = ()

    def __init__(self) -> None:
        self.training = True
        #: monotonically increasing counter of weight rewrites; compiled
        #: inference plans snapshot it to detect staleness.  Bumped by
        #: :meth:`load_state_dict` and by the trainer after each SGD step
        #: (in-place ``Parameter.data`` edits cannot be observed, so any
        #: other direct weight mutation must call :meth:`bump_weights_version`).
        self.weights_version = 0

    # -- graph ------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- parameters -------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its sub-modules, depth-first."""
        params: list[Parameter] = []
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def bump_weights_version(self) -> None:
        """Record that this module's weights changed (see ``weights_version``)."""
        self.weights_version += 1

    # -- mode -------------------------------------------------------------
    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def _buffer_slots(self) -> list[tuple["Module", str]]:
        """(owner, attribute) pairs for every buffer, depth-first -- owners
        are returned rather than arrays because layers may rebind the
        attribute (BatchNorm reassigns its running stats every training
        forward), so loading must go through ``setattr``."""
        slots: list[tuple[Module, str]] = [
            (self, name) for name in self._buffer_names
        ]
        for value in self.__dict__.values():
            if isinstance(value, Module):
                slots.extend(value._buffer_slots())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        slots.extend(item._buffer_slots())
        return slots

    # -- (de)serialisation --------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {f"p{i}": p.data.copy() for i, p in enumerate(self.parameters())}
        for i, (owner, name) in enumerate(self._buffer_slots()):
            state[f"b{i}"] = np.asarray(getattr(owner, name)).copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = self.parameters()
        slots = self._buffer_slots()
        if len(state) == len(params):
            slots = []  # legacy checkpoint without buffers: keep current ones
        elif len(state) != len(params) + len(slots):
            raise ValueError(
                f"state has {len(state)} tensors, module has {len(params)} "
                f"parameters + {len(slots)} buffers"
            )
        for i, p in enumerate(params):
            tensor = state[f"p{i}"]
            if tensor.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter {i}: "
                    f"{tensor.shape} vs {p.data.shape}"
                )
            p.data[...] = tensor
        for i, (owner, name) in enumerate(slots):
            tensor = state[f"b{i}"]
            current = np.asarray(getattr(owner, name))
            if tensor.shape != current.shape:
                raise ValueError(
                    f"shape mismatch for buffer {i} ({name}): "
                    f"{tensor.shape} vs {current.shape}"
                )
            setattr(owner, name, tensor.astype(current.dtype, copy=True))
        self.bump_weights_version()

    def state_digest(self) -> str:
        """BLAKE2b fingerprint of every parameter *and* buffer.

        One short hex string that is equal iff two modules hold
        bit-identical weights (dtype, shape and bytes of the p-keys and
        the BN running-stat b-keys alike).  The crash-resume smoke
        compares resumed-vs-uninterrupted runs with it, and checkpoint
        states embed it so a restore can assert the decoded weights are
        the ones the manifest promised.
        """
        from hashlib import blake2b

        h = blake2b(digest_size=16)
        state = self.state_dict()
        for name in sorted(state):
            arr = np.ascontiguousarray(state[name])
            h.update(name.encode())
            h.update(arr.dtype.str.encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        return h.hexdigest()


class Linear(Module):
    """Fully-connected layer ``y = x @ W.T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            xavier_uniform((out_features, in_features), in_features, out_features, rng),
            name="linear.weight",
        )
        self.bias = Parameter(zeros((out_features,)), name="linear.bias") if bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expects (B, {self.in_features}), got {x.shape}"
            )
        self._x = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before forward"
        self.weight.grad += grad_out.T @ self._x
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data


class Conv2d(Module):
    """2-D convolution implemented as im2col + GEMM."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ValueError("conv dimensions must be positive")
        if padding < 0:
            raise ValueError("padding must be non-negative")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            he_normal((out_channels, in_channels, kernel_size, kernel_size), fan_in, rng),
            name="conv.weight",
        )
        self.bias = Parameter(zeros((out_channels,)), name="conv.bias") if bias else None
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expects (B, {self.in_channels}, H, W), got {x.shape}"
            )
        b, _, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        oh = conv_out_size(h, k, s, p)
        ow = conv_out_size(w, k, s, p)
        cols = im2col(x, k, k, s, p)  # (B, C*k*k, oh*ow)
        self._cols = cols
        self._x_shape = x.shape
        w_mat = self.weight.data.reshape(self.out_channels, -1)  # (F, C*k*k)
        # broadcasting matmul (F,K) @ (B,K,L) -> (B,F,L): straight to BLAS,
        # no per-call einsum contraction-path planning on the training path
        out = np.matmul(w_mat, cols)
        if self.bias is not None:
            out += self.bias.data[None, :, None]
        return out.reshape(b, self.out_channels, oh, ow)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cols is not None and self._x_shape is not None
        b, f, oh, ow = grad_out.shape
        g = grad_out.reshape(b, f, oh * ow)  # (B, F, L)
        # dW = sum_b g_b @ cols_b.T, folded into a single (F, B*L)x(B*L, K)
        # GEMM by tensordot -- again no einsum path recomputation per step
        gw = np.tensordot(g, self._cols, axes=([0, 2], [0, 2]))  # (F, K)
        self.weight.grad += gw.reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += g.sum(axis=(0, 2))
        w_mat = self.weight.data.reshape(f, -1)  # (F, K)
        grad_cols = np.matmul(w_mat.T, g)  # (K,F) @ (B,F,L) -> (B,K,L)
        k, s, p = self.kernel_size, self.stride, self.padding
        return col2im(grad_cols, self._x_shape, k, k, s, p)


class ReLU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return np.where(self._mask, grad_out, 0.0)


class Tanh(Module):
    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._out is not None
        return grad_out * (1.0 - self._out * self._out)


class Flatten(Module):
    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._shape is not None
        return grad_out.reshape(self._shape)


class BatchNorm2d(Module):
    """Per-channel batch normalisation with running statistics."""

    _buffer_names = ("running_mean", "running_var")

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features), name="bn.gamma")
        self.beta = Parameter(np.zeros(num_features), name="bn.beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d expects (B, {self.num_features}, H, W), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std, np.asarray(x.shape))
        return self.gamma.data[None, :, None, None] * x_hat + self.beta.data[None, :, None, None]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        x_hat, inv_std, shape = self._cache
        b, _, h, w = shape
        m = b * h * w  # reduction size per channel
        self.gamma.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_out.sum(axis=(0, 2, 3))
        g = grad_out * self.gamma.data[None, :, None, None]
        if not self.training:
            return g * inv_std[None, :, None, None]
        sum_g = g.sum(axis=(0, 2, 3))[None, :, None, None]
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3))[None, :, None, None]
        # standard batch-norm adjoint
        return inv_std[None, :, None, None] * (g - sum_g / m - x_hat * sum_gx / m)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = new_rng(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
