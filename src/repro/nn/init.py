"""Weight initialisers (He / Xavier) for the NumPy DNN framework."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import new_rng

__all__ = ["he_normal", "xavier_uniform", "zeros"]


def he_normal(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Kaiming-He normal init, appropriate for ReLU trunks."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    rng = new_rng(rng)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def xavier_uniform(
    shape: tuple[int, ...],
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Glorot uniform init, appropriate for tanh heads."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    rng = new_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)
