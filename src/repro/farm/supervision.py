"""Supervision primitives shared by the farm and the serving cluster.

PR 3 proved the restart idioms in process-tree form: a dead worker is
*fenced* (its slot's epoch bumps, so anything the corpse left in flight
is recognisably stale) and its work is *retried under a bounded budget*
(so a poisoned task cannot respawn workers forever).  The cluster layer
(:mod:`repro.cluster`) supervises whole gateway shards with exactly the
same two moves, so the moves live here as two tiny, dependency-free
classes instead of being re-derived per subsystem.

Neither class is thread-safe by itself; both the farm supervisor and the
cluster router mutate them from a single supervising thread/task.
"""

from __future__ import annotations

__all__ = ["EpochFence", "RetryBudget"]


class EpochFence:
    """A monotonically-bumped epoch for one supervised slot.

    Every spawn hands the child the fence's current epoch; responses and
    shared-structure writes carry it back, and anything tagged with a
    stale epoch is discarded.  Bumping *before* respawning guarantees a
    corpse's in-flight output can never be mistaken for the successor's.
    """

    __slots__ = ("current",)

    def __init__(self, start: int = 0) -> None:
        self.current = int(start)

    def bump(self) -> int:
        """Advance to (and return) the next epoch -- call on every respawn."""
        self.current += 1
        return self.current

    def is_current(self, epoch: int) -> bool:
        return epoch == self.current

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EpochFence(current={self.current})"


class RetryBudget:
    """A bounded number of retries for one unit of supervised work.

    The first attempt is free; each *retry* spends one unit.  When
    :meth:`spend` returns ``False`` the budget is exhausted and the
    supervisor must fail the work instead of requeueing it -- the
    backstop that turns a deterministic crasher into a clean error
    rather than a respawn loop.
    """

    __slots__ = ("limit", "used")

    def __init__(self, limit: int) -> None:
        if limit < 0:
            raise ValueError("retry limit must be >= 0")
        self.limit = int(limit)
        self.used = 0

    @property
    def exhausted(self) -> bool:
        return self.used >= self.limit

    @property
    def attempts(self) -> int:
        """Total runs so far: the free first attempt plus spent retries."""
        return self.used + 1

    def spend(self) -> bool:
        """Consume one retry; ``False`` (and no change) when exhausted."""
        if self.used >= self.limit:
            return False
        self.used += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RetryBudget(used={self.used}, limit={self.limit})"
