"""Shared-memory segment registry and array allocation for the farm.

Every byte the multiprocess farm shares -- encoded-state slabs, priors,
values, the lock-striped cache index -- lives in named
:class:`multiprocessing.shared_memory.SharedMemory` segments created
through one :class:`SegmentRegistry`.  Centralising creation buys two
things the fault-injection tests depend on:

- *Leak accounting*: :meth:`SegmentRegistry.names` lists every segment
  the farm owns, so a test can assert nothing is left behind under
  ``/dev/shm`` after :meth:`SegmentRegistry.close`.
- *Crash-safe teardown*: ``close()`` unlinks by name first and only then
  attempts to release the local mappings, so segments disappear from the
  filesystem even while live NumPy views still pin the mapping (views in
  a SIGKILLed worker never get a chance to be dropped).

Worker and evaluator processes are always *forked* from the process that
created the registry, so they inherit the mappings directly and never
re-attach by name -- which sidesteps the CPython < 3.13
``resource_tracker`` double-unlink problem entirely.
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SegmentRegistry", "alloc_array"]


class SegmentRegistry:
    """Owns a set of named shared-memory segments; unlinks them on close.

    Parameters
    ----------
    prefix : leading component of every segment name; names embed the
        creating PID plus random hex so concurrent farms never collide.
    """

    def __init__(self, prefix: str = "repro-farm") -> None:
        self.prefix = prefix
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        """Allocate a new named segment of at least *nbytes* bytes."""
        if self._closed:
            raise RuntimeError("registry is closed")
        name = f"{self.prefix}-{os.getpid()}-{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))
        self._segments.append(shm)
        return shm

    def names(self) -> list[str]:
        """Names of every segment this registry created (for leak checks)."""
        return [s.name for s in self._segments]

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unlink every segment by name; idempotent.

        Deliberately does *not* call ``SharedMemory.close()``: NumPy views
        exported from ``shm.buf`` may still be referenced (farm statistics
        are routinely read after teardown), and CPython's ``close()`` can
        unmap the pages out from under them -- a segfault, not an
        exception.  Unlinking alone is what "no leaks in /dev/shm" means;
        the pages themselves are reclaimed by the kernel when the last
        process unmaps them (at GC of the views, or process exit).
        """
        if self._closed:
            return
        self._closed = True
        for shm in self._segments:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass  # already unlinked (e.g. double close from __del__)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "SegmentRegistry":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def alloc_array(
    registry: SegmentRegistry, shape: tuple[int, ...], dtype: np.dtype | type
) -> np.ndarray:
    """Allocate a zero-initialised NumPy array backed by shared memory.

    The returned array is an ordinary ``ndarray`` view over a segment owned
    by *registry*; forked children share the underlying pages.  Keep the
    registry alive as long as the array is in use.
    """
    dtype = np.dtype(dtype)
    nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    shm = registry.create(nbytes)
    arr: np.ndarray = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
    arr.fill(0)
    return arr
