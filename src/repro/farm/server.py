"""The farm's central evaluator process.

One process owns the (forked copy of the) evaluator and serves every
worker's leaf evaluations, reproducing the Section-3.3
:class:`~repro.parallel.evaluator.AcceleratorQueue` batching semantics
across process boundaries:

- requests accumulate until the flush threshold is met -- the threshold
  tracks the number of *currently busy* workers (published by the
  supervisor through a shared value), exactly as the thread engine shrinks
  its queue to the surviving-producer headcount;
- a *linger* timeout flushes partial batches so the tail of a round can
  never deadlock on a threshold the remaining producers cannot reach;
- statistics (requests served, batches flushed, partial flushes) are
  maintained in cross-process :class:`~repro.farm.counters.AtomicCounter`
  slots.

The payload never rides the pipes: a request is a ``(slot, epoch)``
doorbell, the tensors live in the shared :class:`~repro.farm.rings`
slabs, and one fancy-indexed gather turns the pending set into the
stacked batch ``evaluate_encoded`` consumes.

Fault tolerance: a response to a worker that died mid-wait hits a closed
pipe and is dropped; a request from a dead worker is still evaluated (its
slab slot may be mid-rewrite by the respawned successor, which is why
``evaluate_encoded`` tolerates torn rows) and its response is discarded by
the successor's epoch fence.
"""

from __future__ import annotations

from multiprocessing.connection import Connection, wait
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.farm.counters import FarmCounters
from repro.mcts.evaluation import Evaluator
from repro.nn.infer import ensure_plan
from repro.utils.clock import WALL_CLOCK, Clock

if TYPE_CHECKING:  # pragma: no cover
    from repro.farm.rings import EvaluationRings

__all__ = ["resolve_encoded_evaluator", "evaluator_main"]


def resolve_encoded_evaluator(
    evaluator: Evaluator,
) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Return the evaluator's ``evaluate_encoded`` surface or raise.

    The farm ships encoded planes, not ``Game`` objects, so the backing
    evaluator must know how to evaluate raw ``(states, masks)`` batches.
    ``NetworkEvaluator`` and ``UniformEvaluator`` both do; rollout-style
    evaluators (which need to *step* the game) structurally cannot.
    """
    fn = getattr(evaluator, "evaluate_encoded", None)
    if fn is None:
        raise TypeError(
            f"{type(evaluator).__name__} has no evaluate_encoded(states, masks); "
            "the process farm evaluates shared-memory encoded states and "
            "cannot use evaluators that need live Game objects"
        )
    return fn


def evaluator_main(
    evaluator: Evaluator,
    rings: "EvaluationRings",
    doorbells: list[Connection],
    control: Connection,
    active_workers,  # multiprocessing.Value('i')
    counters: FarmCounters,
    linger: float,
    batch_cap: int,
    clock: Clock | None = None,
) -> None:
    """Entry point of the evaluator process (invoked post-fork).

    *clock* times the linger window (ages of pending requests); wall by
    default.  The blocking ``wait()`` on the doorbells is necessarily
    real OS time -- a virtual clock only makes the linger *bookkeeping*
    simulable, which is what the in-thread harness tests drive.
    """
    clock = WALL_CLOCK if clock is None else clock
    evaluate = resolve_encoded_evaluator(evaluator)
    # compile the fused plan before serving: the parent's thread-local
    # workspaces did not survive the fork, and the first worker batch
    # should not pay compilation either
    ensure_plan(getattr(evaluator, "network", None))
    by_conn = {conn: wid for wid, conn in enumerate(doorbells)}
    pending: list[tuple[int, int, int]] = []  # (worker_id, slot, epoch)
    oldest = 0.0  # monotonic time of the oldest pending request

    def flush() -> None:
        nonlocal pending
        batch, pending = pending[:batch_cap], pending[batch_cap:]
        if not batch:
            return
        threshold = _threshold(active_workers, batch_cap)
        wids = [b[0] for b in batch]
        slots = [b[1] for b in batch]
        states, masks = rings.gather(wids, slots)
        priors, values = evaluate(states, masks)
        rings.scatter(wids, slots, priors, values)
        counters.batches_flushed.add(1)
        counters.requests_served.add(len(batch))
        if len(batch) < threshold:
            counters.partial_flushes.add(1)
        for wid, slot, epoch in batch:
            try:
                doorbells[wid].send((slot, epoch))
            except (BrokenPipeError, OSError):
                pass  # worker died mid-wait; its successor re-requests

    while True:
        timeout = None
        if pending:
            timeout = max(0.0, linger - (clock.monotonic() - oldest))
        ready = wait([*doorbells, control], timeout=timeout)
        stop = False
        for conn in ready:
            if conn is control:
                msg = control.recv()
                if msg[0] == "stop":
                    stop = True
                elif msg[0] == "weights":
                    network = getattr(evaluator, "network", None)
                    if network is None:
                        control.send(("err", "evaluator has no network"))
                    else:
                        network.load_state_dict(msg[1])
                        # recompile the fused plan eagerly: load_state_dict
                        # bumped weights_version, and the weight sync runs
                        # between rounds -- off the evaluation hot path
                        ensure_plan(network)
                        control.send(("ok",))
                continue
            wid = by_conn[conn]
            try:
                while conn.poll():
                    if not pending:
                        oldest = clock.monotonic()
                    slot, epoch = conn.recv()
                    pending.append((wid, slot, epoch))
            except (EOFError, OSError):  # pragma: no cover - parent holds ends
                continue
        while len(pending) >= _threshold(active_workers, batch_cap):
            if not pending:
                break
            flush()
        if pending and clock.monotonic() - oldest >= linger:
            flush()
            oldest = clock.monotonic()
        if stop:
            while pending:
                flush()
            try:
                control.send(("stopped",))
            except (BrokenPipeError, OSError):
                pass
            return


def _threshold(active_workers, batch_cap: int) -> int:
    """Current flush threshold: one request per busy worker, capped."""
    return max(1, min(batch_cap, int(active_workers.value)))
