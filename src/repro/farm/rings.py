"""Shared-memory evaluation rings: the farm's request/response fabric.

Each worker owns a small ring of ``depth`` slots in four shared slabs:

    states : (W, depth, planes, rows, cols)  encoded leaf positions
    masks  : (W, depth, A)                   legal-move masks (0/1)
    priors : (W, depth, A)                   evaluator output, written back
    values : (W, depth)                      evaluator output, written back

A request is "the payload is in my slot" -- the worker writes its encoded
state and mask into ``(worker_id, slot)``, then rings the evaluator's
doorbell with a tiny ``(slot, epoch)`` message over its dedicated pipe.
The evaluator batches doorbells, reads the slabs with one fancy-indexed
gather, runs the batched forward, scatters priors/values back, and rings
each worker's doorbell in return.  Only doorbell tuples ever cross a pipe;
the tensors themselves move through shared memory, which is the whole
point of the design.

Doorbell messages are far below ``PIPE_BUF``, so the kernel writes them
atomically -- a SIGKILLed worker can never leave a torn frame in the
evaluator's pipe (the supervision tests rely on this).

*Epochs* fence worker restarts: a respawned worker reuses its dead
predecessor's ring and pipe, so a late response to the dead worker's
in-flight request may still arrive.  Responses echo the request epoch and
the client discards any token whose epoch (or slot) is not the one it is
waiting on.
"""

from __future__ import annotations

import threading
from multiprocessing.connection import Connection
from typing import TYPE_CHECKING

import numpy as np

from repro.farm.shm import SegmentRegistry, alloc_array
from repro.games.base import Game
from repro.mcts.evaluation import Evaluation, Evaluator

if TYPE_CHECKING:  # pragma: no cover
    from repro.farm.cache import SharedEvaluationCache

__all__ = ["EvaluationRings", "RingClient"]


class EvaluationRings:
    """The four shared slabs, allocated through a :class:`SegmentRegistry`."""

    def __init__(
        self,
        registry: SegmentRegistry,
        num_workers: int,
        depth: int,
        planes_shape: tuple[int, ...],
        action_size: int,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.num_workers = num_workers
        self.depth = depth
        self.planes_shape = tuple(planes_shape)
        self.action_size = action_size
        w, d, a = num_workers, depth, action_size
        self.states = alloc_array(registry, (w, d, *self.planes_shape), np.float64)
        self.masks = alloc_array(registry, (w, d, a), np.float64)
        self.priors = alloc_array(registry, (w, d, a), np.float64)
        self.values = alloc_array(registry, (w, d), np.float64)

    def gather(self, wids: list[int], slots: list[int]) -> tuple[np.ndarray, np.ndarray]:
        """Evaluator-side: copy the pending requests out as one batch."""
        return self.states[wids, slots], self.masks[wids, slots]

    def scatter(
        self, wids: list[int], slots: list[int], priors: np.ndarray, values: np.ndarray
    ) -> None:
        """Evaluator-side: write the batch results back into the rings."""
        self.priors[wids, slots] = priors
        self.values[wids, slots] = values


class RingClient(Evaluator):
    """Worker-side :class:`Evaluator` that evaluates through the rings.

    The search scheme inside a worker process calls :meth:`evaluate` like
    any other evaluator; under the hood a miss on the shared cache becomes
    a slot write + doorbell + blocking wait on the response doorbell.

    Concurrency contract: one request is in flight at a time.  The ring
    transaction runs under a client lock, so a scheme that evaluates from
    several threads (leaf-parallel) is *safe* but serialised -- within a
    worker process, parallelism should come from the search, with the
    farm's cross-worker batching providing the evaluation concurrency.
    (The extra ring slots exist so a respawned worker's writes never race
    the evaluator's read of its dead predecessor's in-flight slot.)
    """

    def __init__(
        self,
        worker_id: int,
        epoch: int,
        rings: EvaluationRings,
        doorbell: Connection,
        cache: "SharedEvaluationCache | None" = None,
    ) -> None:
        self.worker_id = worker_id
        self.epoch = epoch
        self.rings = rings
        self.doorbell = doorbell
        self.cache = cache
        self._next_slot = 0
        self._lock = threading.Lock()

    def evaluate(self, game: Game) -> Evaluation:
        if self.cache is not None:
            cached = self.cache.get(game)
            if cached is not None:
                return cached
        w = self.worker_id
        with self._lock:
            slot = self._next_slot
            self._next_slot = (slot + 1) % self.rings.depth
            self.rings.states[w, slot] = game.encode()
            self.rings.masks[w, slot] = game.legal_mask()
            self.doorbell.send((slot, self.epoch))
            while True:
                r_slot, r_epoch = self.doorbell.recv()
                if r_epoch == self.epoch and r_slot == slot:
                    break
                # stale token addressed to a previous life of this worker
            evaluation = Evaluation(
                priors=self.rings.priors[w, slot].copy(),
                value=float(self.rings.values[w, slot]),
            )
        if self.cache is not None:
            self.cache.put(game, evaluation)
        return evaluation

    def evaluate_batch(self, games: list[Game]) -> list[Evaluation]:
        return [self.evaluate(g) for g in games]
