"""Multiprocess self-play farm: true multi-core scale-out for self-play.

Where :mod:`repro.serving` multiplexes concurrent games over one shared
accelerator queue *inside one process*, this package moves each game's
search into its own worker process and batches their leaf evaluations in
a dedicated evaluator process over shared memory:

- :mod:`repro.farm.shm`      -- segment registry (leak-accounted
  ``/dev/shm`` allocation) and shared NumPy arrays.
- :mod:`repro.farm.rings`    -- per-worker request/response slabs plus the
  worker-side :class:`~repro.farm.rings.RingClient` evaluator.
- :mod:`repro.farm.cache`    -- lock-striped shared-memory evaluation
  cache keyed by ``Game.canonical_key()`` digests.
- :mod:`repro.farm.server`   -- the evaluator process (AcceleratorQueue
  batching semantics across process boundaries).
- :mod:`repro.farm.counters` -- cross-process atomic statistics.
- :mod:`repro.farm.farm`     -- :class:`~repro.farm.farm.SelfPlayFarm`,
  the supervisor: seeding, scheduling, restart-and-requeue.

The thread engine gains a ``backend="process"`` option that wraps a farm
behind the same ``play_round`` interface; see
:class:`repro.serving.engine.MultiGameSelfPlayEngine`.
"""

from repro.farm.cache import SharedEvaluationCache
from repro.farm.counters import AtomicCounter, FarmCounters
from repro.farm.farm import FarmError, FarmStats, SelfPlayFarm
from repro.farm.rings import EvaluationRings, RingClient
from repro.farm.shm import SegmentRegistry, alloc_array

__all__ = [
    "AtomicCounter",
    "EvaluationRings",
    "FarmCounters",
    "FarmError",
    "FarmStats",
    "RingClient",
    "SegmentRegistry",
    "SelfPlayFarm",
    "SharedEvaluationCache",
    "alloc_array",
]
