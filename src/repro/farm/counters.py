"""Cross-process atomic counters for farm serving statistics.

PR-1 hardening moved the thread engine's queue statistics under the queue
lock because unsynchronised ``+=`` read-modify-write updates silently lose
counts.  The process backend has the same hazard one level down: counter
updates now race across *processes*, where a plain ``multiprocessing.Value``
``+=`` is still a non-atomic read-modify-write.  :class:`AtomicCounter`
pins every update under the value's own cross-process lock, so the round
deltas the engine reports (``partial_flushes`` above all -- the counter the
PR-1 note called out) are exact no matter how many workers and evaluator
flushes race.
"""

from __future__ import annotations

import ctypes
import multiprocessing as mp

__all__ = ["AtomicCounter", "FarmCounters"]


class AtomicCounter:
    """A 64-bit counter shared across forked processes; atomic increments.

    All mutation goes through :meth:`add`, which holds the underlying
    ``Value`` lock for the whole read-modify-write.  Reads take the same
    lock, so a read never observes a torn update.
    """

    def __init__(self, ctx: mp.context.BaseContext | None = None) -> None:
        ctx = ctx or mp.get_context("fork")
        self._value = ctx.Value(ctypes.c_int64, 0)

    def add(self, n: int = 1) -> None:
        with self._value.get_lock():
            self._value.value += n

    @property
    def value(self) -> int:
        with self._value.get_lock():
            return int(self._value.value)


class FarmCounters:
    """The evaluator-server statistics triple, mirroring AcceleratorQueue.

    ``requests_served`` / ``batches_flushed`` / ``partial_flushes`` carry
    the same meaning as on :class:`repro.parallel.evaluator.AcceleratorQueue`
    (a *partial* flush went out below the flush threshold in force at the
    time), but live in shared memory because the producer (the evaluator
    process) and the consumer (the engine, computing round deltas) are
    different processes.
    """

    def __init__(self, ctx: mp.context.BaseContext | None = None) -> None:
        ctx = ctx or mp.get_context("fork")
        self.requests_served = AtomicCounter(ctx)
        self.batches_flushed = AtomicCounter(ctx)
        self.partial_flushes = AtomicCounter(ctx)

    def snapshot(self) -> dict[str, int]:
        return {
            "requests_served": self.requests_served.value,
            "batches_flushed": self.batches_flushed.value,
            "partial_flushes": self.partial_flushes.value,
        }
