"""Lock-striped shared-memory evaluation cache.

The PR-1 :class:`repro.serving.cache.EvaluationCache` keeps hot leaf
evaluations in front of the accelerator queue, but it is an in-process
``OrderedDict`` -- useless once self-play workers are separate processes.
This is its shared-memory counterpart: a fixed-capacity table of
``(digest, priors, value)`` records living entirely in
:class:`~repro.farm.shm.SegmentRegistry` segments, indexed by an
open-addressing hash table and guarded by *S* independent stripe locks.

Keys are 16-byte BLAKE2b digests of :meth:`repro.games.base.Game.canonical_key`
(pickled with a pinned protocol so every process derives identical bytes).
A digest selects its stripe, and each stripe is a self-contained sub-table
-- buckets, record slots, insert cursor, counters -- so two processes
touching different stripes never contend, and a probe chain never crosses
a stripe boundary (which is what makes per-stripe locking sound).

Eviction is clock-style overwrite: when a stripe's slots are exhausted the
insert cursor wraps and the oldest-written record is replaced; the stale
bucket that pointed at the reused slot is tombstoned via a reverse
slot->bucket map so probe chains stay short.  That is deliberately weaker
than the thread cache's LRU -- cross-process LRU bookkeeping would put a
global lock back on every *hit* -- and self-play traffic is recent-biased
enough that overwrite-oldest behaves comparably.

Determinism note: evaluations are pure functions of the state, so farm
runs remain transcript-exact with the cache on -- a hit returns bit-for-bit
the float64 values a fresh evaluation would (everything is stored at full
precision).
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import pickle

import numpy as np

from repro.farm.shm import SegmentRegistry, alloc_array
from repro.games.base import Game
from repro.mcts.evaluation import Evaluation

__all__ = ["SharedEvaluationCache"]

_DIGEST_SIZE = 16
_EMPTY = -1
_TOMBSTONE = -2
#: pickle protocol pinned so every process derives identical key bytes
_PICKLE_PROTOCOL = 4


def _digest(key: tuple) -> bytes:
    return hashlib.blake2b(
        pickle.dumps(key, protocol=_PICKLE_PROTOCOL), digest_size=_DIGEST_SIZE
    ).digest()


def _next_pow2(n: int) -> int:
    return 1 << max(1, int(n - 1).bit_length())


class SharedEvaluationCache:
    """Fixed-capacity cross-process evaluation cache with striped locking.

    Parameters
    ----------
    action_size : width of the cached prior vectors.
    capacity : total number of cached states across all stripes.
    stripes : number of independently locked sub-tables; higher values
        reduce cross-process contention at a small memory cost.
    registry : shared-memory owner; the cache allocates all of its state
        through it (and therefore shares its lifetime).
    ctx : multiprocessing context the stripe locks come from (must be the
        same fork context the worker processes are spawned with).
    lock_timeout : seconds a stripe-lock acquisition may wait before the
        operation degrades to a cache bypass (a ``get`` misses without
        counting, a ``put`` is skipped).  A worker SIGKILLed *inside* a
        stripe critical section leaves that stripe's semaphore locked
        forever; the timeout turns that from a farm-wide deadlock into a
        slightly colder cache, which is the correct failure mode for a
        cache.
    """

    def __init__(
        self,
        action_size: int,
        capacity: int = 8192,
        stripes: int = 8,
        registry: SegmentRegistry | None = None,
        ctx: mp.context.BaseContext | None = None,
        lock_timeout: float = 0.2,
    ) -> None:
        if action_size < 1:
            raise ValueError("action_size must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if stripes < 1:
            raise ValueError("stripes must be >= 1")
        ctx = ctx or mp.get_context("fork")
        self.registry = registry if registry is not None else SegmentRegistry()
        self.action_size = action_size
        self.num_stripes = min(stripes, capacity)
        self.slots_per_stripe = max(1, capacity // self.num_stripes)
        self.capacity = self.slots_per_stripe * self.num_stripes
        self.num_buckets = _next_pow2(2 * self.slots_per_stripe)
        self._probe_limit = min(self.num_buckets, 128)

        s, c, b = self.num_stripes, self.slots_per_stripe, self.num_buckets
        self._buckets = alloc_array(self.registry, (s, b), np.int32)
        self._buckets.fill(_EMPTY)
        self._digests = alloc_array(self.registry, (s, c, _DIGEST_SIZE), np.uint8)
        self._priors = alloc_array(self.registry, (s, c, action_size), np.float64)
        self._values = alloc_array(self.registry, (s, c), np.float64)
        #: reverse map slot -> owning bucket, for tombstoning on eviction
        self._slot_bucket = alloc_array(self.registry, (s, c), np.int32)
        self._slot_bucket.fill(_EMPTY)
        self._cursor = alloc_array(self.registry, (s,), np.int64)
        self._filled = alloc_array(self.registry, (s,), np.int64)
        # [hits, misses, evictions, insert_failures] per stripe, mutated
        # only under the stripe lock -> cross-process atomic
        self._stats = alloc_array(self.registry, (s, 4), np.int64)
        self._locks = [ctx.Lock() for _ in range(s)]
        self.lock_timeout = lock_timeout

    # -- key plumbing --------------------------------------------------------
    def _locate(self, game: Game) -> tuple[int, np.ndarray, int]:
        digest = _digest(game.canonical_key())
        stripe = int.from_bytes(digest[:2], "little") % self.num_stripes
        h0 = int.from_bytes(digest[2:6], "little") & (self.num_buckets - 1)
        return stripe, np.frombuffer(digest, dtype=np.uint8), h0

    # -- lookup --------------------------------------------------------------
    def get(self, game: Game) -> Evaluation | None:
        """Look up *game*'s state; counts a hit or a miss either way."""
        stripe, digest, h0 = self._locate(game)
        mask = self.num_buckets - 1
        if not self._locks[stripe].acquire(timeout=self.lock_timeout):
            return None  # wedged stripe (dead lock holder): bypass, uncounted
        try:
            buckets = self._buckets[stripe]
            for j in range(self._probe_limit):
                slot = int(buckets[(h0 + j) & mask])
                if slot == _EMPTY:
                    break
                if slot == _TOMBSTONE:
                    continue
                if np.array_equal(self._digests[stripe, slot], digest):
                    self._stats[stripe, 0] += 1
                    return Evaluation(
                        priors=self._priors[stripe, slot].copy(),
                        value=float(self._values[stripe, slot]),
                    )
            self._stats[stripe, 1] += 1
            return None
        finally:
            self._locks[stripe].release()

    def put(self, game: Game, evaluation: Evaluation) -> None:
        """Insert (or refresh) *game*'s evaluation, overwriting the oldest
        record of the stripe when it is full."""
        priors = np.asarray(evaluation.priors, dtype=np.float64)
        if priors.shape != (self.action_size,):
            raise ValueError(
                f"priors shape {priors.shape} != ({self.action_size},)"
            )
        stripe, digest, h0 = self._locate(game)
        mask = self.num_buckets - 1
        if not self._locks[stripe].acquire(timeout=self.lock_timeout):
            return  # wedged stripe: skip the insert
        try:
            buckets = self._buckets[stripe]
            target_bucket = _EMPTY
            for j in range(self._probe_limit):
                bucket = (h0 + j) & mask
                slot = int(buckets[bucket])
                if slot == _TOMBSTONE:
                    if target_bucket == _EMPTY:
                        target_bucket = bucket  # reusable, but keep probing
                    continue
                if slot == _EMPTY:
                    if target_bucket == _EMPTY:
                        target_bucket = bucket
                    break
                if np.array_equal(self._digests[stripe, slot], digest):
                    # refresh in place (equal value for a deterministic
                    # evaluator; harmless either way)
                    self._priors[stripe, slot] = priors
                    self._values[stripe, slot] = evaluation.value
                    return
            if target_bucket == _EMPTY:
                self._stats[stripe, 3] += 1  # probe window exhausted
                return
            slot = int(self._cursor[stripe])
            self._cursor[stripe] = (slot + 1) % self.slots_per_stripe
            if self._filled[stripe] >= self.slots_per_stripe:
                # evict: tombstone the bucket still pointing at this slot
                old_bucket = int(self._slot_bucket[stripe, slot])
                if old_bucket != _EMPTY and int(buckets[old_bucket]) == slot:
                    buckets[old_bucket] = _TOMBSTONE
                self._stats[stripe, 2] += 1
            else:
                self._filled[stripe] += 1
            self._digests[stripe, slot] = digest
            self._priors[stripe, slot] = priors
            self._values[stripe, slot] = evaluation.value
            self._slot_bucket[stripe, slot] = target_bucket
            buckets[target_bucket] = slot
        finally:
            self._locks[stripe].release()

    # -- maintenance ---------------------------------------------------------
    def clear(self) -> None:
        """Drop every entry (hit/miss counters are kept, like the thread
        cache); used by the training pipeline after each SGD stage."""
        for stripe in range(self.num_stripes):
            locked = self._locks[stripe].acquire(timeout=self.lock_timeout)
            try:
                # proceed even on a wedged stripe: clear() runs between
                # rounds when workers are idle, and a stale-entry wipe is
                # exactly what the caller needs after a weight update
                self._buckets[stripe].fill(_EMPTY)
                self._slot_bucket[stripe].fill(_EMPTY)
                self._cursor[stripe] = 0
                self._filled[stripe] = 0
            finally:
                if locked:
                    self._locks[stripe].release()

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return int(self._filled.sum())

    @property
    def hits(self) -> int:
        return int(self._stats[:, 0].sum())

    @property
    def misses(self) -> int:
        return int(self._stats[:, 1].sum())

    @property
    def evictions(self) -> int:
        return int(self._stats[:, 2].sum())

    @property
    def insert_failures(self) -> int:
        return int(self._stats[:, 3].sum())

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0
