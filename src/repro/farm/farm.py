r"""Multiprocess self-play farm with shared-memory batched evaluation.

The thread-based :class:`repro.serving.engine.MultiGameSelfPlayEngine`
multiplexes G games over one accelerator queue, but all G searches share
one GIL -- sims/sec plateaus near single-core throughput no matter the
hardware.  The farm moves each game's search into its own *process*:

    worker 0 (SerialMCTS) --\                       doorbell pipes
    worker 1 (SerialMCTS) ---+--> shared-memory --> evaluator process
       ...                   |    state slabs       (batched forward,
    worker N-1 -------------/       ^                writes priors/values
            ^                       |                back into the slabs)
            |              SharedEvaluationCache
       task pipes          (lock-striped, shm)
      (supervisor)

Workers run the unchanged array-backed search schemes; only *where* leaf
evaluation happens differs (the Section-3.2 program-template property,
now across address spaces).  Evaluation requests ride shared-memory rings
(:mod:`repro.farm.rings`) and are batched by the evaluator process with
the thread engine's AcceleratorQueue semantics (flush at the busy-worker
headcount, linger timeout for tails -- :mod:`repro.farm.server`).  Leaf
states any process has already evaluated are served from the lock-striped
:class:`~repro.farm.cache.SharedEvaluationCache` without touching a pipe.

Determinism: episodes are seeded by a ladder of generators spawned from
one root ``SeedSequence`` and an episode's transcript depends only on its
own generator (workers pull episodes, but the rng travels with the
episode, not the worker), so a farm round reproduces a serial loop over
the same ladder transcript-for-transcript.

Supervision: worker processes can die mid-episode (OOM killer, segfault,
the fault-injection suite's SIGKILL).  The supervisor detects death via
process sentinels, respawns the worker slot (same ring, same doorbell,
epoch bumped so stale responses are fenced off), and requeues the lost
episode -- re-running it under the *same* generator, so a crash never
changes the round's transcripts.  Each episode has a bounded retry
budget; exhausting it raises :class:`FarmError`.

Everything is fork-based: workers inherit the game template, the scheme
factory and the slabs directly, so nothing but doorbell tuples, episode
seeds and finished episodes ever crosses a pipe.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait
from typing import Callable

import numpy as np

from repro.farm.cache import SharedEvaluationCache
from repro.farm.counters import FarmCounters
from repro.farm.rings import EvaluationRings, RingClient
from repro.farm.server import evaluator_main, resolve_encoded_evaluator
from repro.farm.shm import SegmentRegistry
from repro.farm.supervision import EpochFence, RetryBudget
from repro.games.base import Game
from repro.mcts.backend import TreeBackend, resolve_backend
from repro.mcts.evaluation import Evaluator
from repro.serving.engine import ServingStats
from repro.training.selfplay import EpisodeResult, play_episode
from repro.utils.clock import WALL_CLOCK, Clock
from repro.utils.rng import seed_ladder

__all__ = ["FarmError", "FarmStats", "SelfPlayFarm"]

#: builds one episode's search scheme around the worker's ring evaluator
SchemeFactory = Callable[[Evaluator, np.random.Generator], object]


class FarmError(RuntimeError):
    """Unrecoverable farm failure (retry budget exhausted, evaluator died)."""


@dataclass(frozen=True)
class FarmStats(ServingStats):
    """Round statistics of a farm round.

    A strict superset of :class:`~repro.serving.engine.ServingStats` (so
    the training pipeline's metrics fold it in unchanged) plus the
    process-farm specifics: worker headcount, supervision activity, and
    the figure of merit the E14 benchmark tracks, :attr:`sims_per_sec`.
    """

    # defaults are required by dataclass field ordering now that
    # ServingStats carries defaulted latency fields; the farm always
    # fills all three explicitly
    num_workers: int = 0
    worker_restarts: int = 0
    episodes_requeued: int = 0

    @property
    def sims_per_sec(self) -> float:
        return self.playouts / self.wall_time if self.wall_time > 0 else 0.0

    def as_dict(self) -> dict:
        d = super().as_dict()
        d.update(
            {
                "num_workers": self.num_workers,
                "worker_restarts": self.worker_restarts,
                "episodes_requeued": self.episodes_requeued,
                "sims_per_sec": round(self.sims_per_sec, 3),
            }
        )
        return d


def _worker_main(farm: "SelfPlayFarm", worker_id: int, epoch: int) -> None:
    """Worker-process entry point (runs post-fork; *farm* is inherited)."""
    task_conn = farm._task_child_conns[worker_id]
    client = RingClient(
        worker_id,
        epoch,
        farm._rings,
        farm._doorbell_worker_conns[worker_id],
        farm.cache,
    )
    while True:
        try:
            msg = task_conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        episode_index, rng = msg
        try:
            scheme = farm.scheme_factory(client, rng)
            try:
                result = play_episode(
                    farm.game,
                    scheme,
                    farm.num_playouts,
                    temperature_moves=farm.temperature_moves,
                    temperature=farm.temperature,
                    max_moves=farm.max_moves,
                    rng=rng,
                )
            finally:
                close = getattr(scheme, "close", None)
                if close is not None:
                    close()
        except BaseException:
            try:
                task_conn.send(("error", episode_index, traceback.format_exc()))
            except (BrokenPipeError, OSError):
                pass
            raise
        task_conn.send(("done", episode_index, result))


class SelfPlayFarm:
    """N self-play worker processes sharing one batched evaluator process.

    Parameters
    ----------
    game : template state; every episode plays from a fresh copy.
    evaluator : backing evaluator; must expose ``evaluate_encoded`` (the
        network and uniform evaluators do) because workers ship encoded
        planes, not ``Game`` objects.
    num_workers : worker-process count N.
    num_playouts : per-move search budget of every episode.
    scheme_factory : builds each episode's search scheme around the
        worker's ring evaluator; defaults to :class:`SerialMCTS` on the
        array backend.  Must be fork-inheritable (plain function, bound
        method or closure -- it is never pickled).
    cache_capacity : shared evaluation-cache size in states; 0 disables
        the cache.
    cache_stripes : lock stripes of the shared cache.
    linger : evaluator partial-flush timeout in seconds.
    ring_depth : in-flight evaluation slots per worker (serial schemes
        need 1; headroom is harmless).
    max_retries : how many times one episode may be re-run after worker
        deaths before the round fails with :class:`FarmError`.
    tree_backend : storage layout for the default per-episode trees.
    clock : time source for round wall-clock accounting and the
        evaluator's linger bookkeeping (wall by default; process joins
        and pipe waits are always real OS time).

    Use :meth:`run_round` for episodes + stats; :meth:`close` (or the
    context-manager form) terminates the processes and unlinks every
    shared-memory segment.
    """

    def __init__(
        self,
        game: Game,
        evaluator: Evaluator,
        num_workers: int = 2,
        num_playouts: int = 50,
        scheme_factory: SchemeFactory | None = None,
        temperature_moves: int = 8,
        temperature: float = 1.0,
        max_moves: int | None = None,
        cache_capacity: int = 8192,
        cache_stripes: int = 8,
        linger: float = 0.002,
        ring_depth: int = 2,
        max_retries: int = 2,
        tree_backend: TreeBackend | str | None = None,
        clock: Clock | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if num_playouts < 1:
            raise ValueError("num_playouts must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        resolve_encoded_evaluator(evaluator)  # fail fast on rollout-style
        self.game = game
        self.evaluator = evaluator
        self.num_workers = num_workers
        self.num_playouts = num_playouts
        self.temperature_moves = temperature_moves
        self.temperature = temperature
        self.max_moves = max_moves
        self.linger = linger
        self.clock: Clock = WALL_CLOCK if clock is None else clock
        self.ring_depth = ring_depth
        self.max_retries = max_retries
        self.tree_backend = resolve_backend(tree_backend, TreeBackend.ARRAY)
        if scheme_factory is None:
            from repro.mcts.serial import SerialMCTS

            scheme_factory = lambda ev, rng: SerialMCTS(  # noqa: E731
                ev, rng=rng, tree_backend=self.tree_backend
            )
        self.scheme_factory = scheme_factory

        self._ctx = mp.get_context("fork")
        self.registry = SegmentRegistry()
        self._rings = EvaluationRings(
            self.registry,
            num_workers,
            ring_depth,
            (game.num_planes, *game.board_shape),
            game.action_size,
        )
        self.cache: SharedEvaluationCache | None = (
            SharedEvaluationCache(
                game.action_size,
                capacity=cache_capacity,
                stripes=cache_stripes,
                registry=self.registry,
                ctx=self._ctx,
            )
            if cache_capacity > 0
            else None
        )
        self.counters = FarmCounters(self._ctx)
        self._active = self._ctx.Value("i", 0)
        self._batch_cap = num_workers * ring_depth

        self._started = False
        self._closed = False
        self.worker_restarts = 0
        self.episodes_requeued = 0
        # one fence per worker slot (the cluster's shard supervision
        # reuses the same primitive -- see repro.farm.supervision)
        self._epochs = [EpochFence() for _ in range(num_workers)]
        self._workers: list[mp.process.BaseProcess | None] = [None] * num_workers
        self._evaluator_proc: mp.process.BaseProcess | None = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Fork the evaluator and all worker processes (idempotent)."""
        if self._closed:
            raise RuntimeError("farm is closed")
        if self._started:
            return
        ctx = self._ctx
        # doorbell pipes: worker <-> evaluator, one duplex pair per worker
        pairs = [ctx.Pipe(duplex=True) for _ in range(self.num_workers)]
        self._doorbell_server_conns = [p[0] for p in pairs]
        self._doorbell_worker_conns = [p[1] for p in pairs]
        self._control_parent, self._control_child = ctx.Pipe(duplex=True)

        # the evaluator forks BEFORE any task pipe exists, so it can never
        # hold a task-pipe fd open (see _spawn_worker's EOF contract)
        self._evaluator_proc = ctx.Process(
            target=evaluator_main,
            args=(
                self.evaluator,
                self._rings,
                self._doorbell_server_conns,
                self._control_child,
                self._active,
                self.counters,
                self.linger,
                self._batch_cap,
                self.clock,
            ),
            name="farm-evaluator",
            daemon=True,
        )
        self._evaluator_proc.start()
        self._task_parent_conns: list = [None] * self.num_workers
        self._task_child_conns: list = [None] * self.num_workers
        for w in range(self.num_workers):
            self._spawn_worker(w)
        self._started = True

    def _spawn_worker(self, worker_id: int) -> None:
        """Fork worker *worker_id* with a fresh task pipe.

        EOF contract: after the fork, the parent drops its copy of the
        worker-side pipe end, and pipes are created one-per-spawn (never
        before another process forks), so the dying worker is the *only*
        holder of that end.  A worker SIGKILLed mid-``send`` therefore
        yields ``EOFError`` on the supervisor's blocking ``recv`` of the
        torn frame instead of hanging it forever.
        """
        parent, child = self._ctx.Pipe(duplex=True)
        self._task_parent_conns[worker_id] = parent
        self._task_child_conns[worker_id] = child
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self, worker_id, self._epochs[worker_id].current),
            name=f"farm-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        # the child inherited its end at fork; closing the parent's copy
        # does not touch the child's fd
        child.close()
        self._workers[worker_id] = proc

    def _respawn_worker(self, worker_id: int) -> None:
        """Replace a dead worker: fresh task pipe (discarding any torn
        frame the SIGKILL left mid-result), same doorbell pipe and ring
        (doorbell frames are atomic; the bumped epoch fences stale
        responses)."""
        dead = self._workers[worker_id]
        if dead is not None:
            dead.join(timeout=1.0)
        try:
            self._task_parent_conns[worker_id].close()
        except OSError:
            pass
        self._epochs[worker_id].bump()
        self.worker_restarts += 1
        self._spawn_worker(worker_id)

    @property
    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (fault-injection hook)."""
        return [p.pid for p in self._workers if p is not None and p.pid]

    @property
    def evaluator_pid(self) -> int | None:
        return self._evaluator_proc.pid if self._evaluator_proc else None

    def sync_weights(self, state: dict[str, np.ndarray]) -> None:
        """Push new network weights into the running evaluator process.

        No-op before :meth:`start` -- the fork will inherit the weights.
        Blocks until the evaluator acknowledges, so the next round is
        guaranteed to evaluate with the new parameters.
        """
        if not self._started:
            return
        self._control_parent.send(("weights", state))
        reply = self._control_parent.recv()
        if reply[0] != "ok":
            raise FarmError(f"weight sync failed: {reply!r}")

    def close(self) -> None:
        """Terminate all processes and unlink shared memory; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            for w, proc in enumerate(self._workers):
                if proc is None:
                    continue
                try:
                    self._task_parent_conns[w].send(None)
                except (BrokenPipeError, OSError):
                    pass
            deadline = time.monotonic() + 2.0
            for proc in self._workers:
                if proc is not None:
                    proc.join(timeout=max(0.0, deadline - time.monotonic()))
                    if proc.is_alive():
                        proc.terminate()
                        proc.join(timeout=1.0)
                    if proc.is_alive():  # pragma: no cover - stuck in D state
                        proc.kill()
                        proc.join(timeout=1.0)
            if self._evaluator_proc is not None:
                try:
                    self._control_parent.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
                self._evaluator_proc.join(timeout=2.0)
                if self._evaluator_proc.is_alive():
                    self._evaluator_proc.terminate()
                    self._evaluator_proc.join(timeout=1.0)
            for conn in (
                *self._task_parent_conns,
                *self._task_child_conns,
                *self._doorbell_server_conns,
                *self._doorbell_worker_conns,
                self._control_parent,
                self._control_child,
            ):
                try:
                    conn.close()
                except OSError:
                    pass
        self.registry.close()

    def __enter__(self) -> "SelfPlayFarm":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- rounds --------------------------------------------------------------
    def run_round(
        self,
        episode_rngs: list[np.random.Generator] | int,
        seed: int | None = None,
    ) -> tuple[list[EpisodeResult], FarmStats]:
        """Play one round of episodes across the worker pool.

        Parameters
        ----------
        episode_rngs : either an explicit list of per-episode generators
            (the determinism suite passes the same ladder to the serial
            reference), or an episode *count* -- then a ladder of that many
            generators is spawned from ``SeedSequence(seed)``.
        seed : root seed when *episode_rngs* is a count.

        Returns the episodes ordered by episode index plus the round's
        :class:`FarmStats`.
        """
        if isinstance(episode_rngs, int):
            episode_rngs = seed_ladder(seed, episode_rngs)
        if not episode_rngs:
            raise ValueError("run_round needs at least one episode")
        self.start()

        base = self.counters.snapshot()
        base_hits = self.cache.hits if self.cache else 0
        base_misses = self.cache.misses if self.cache else 0
        restarts_before = self.worker_restarts
        requeued_before = self.episodes_requeued

        queue: deque[tuple[int, np.random.Generator, RetryBudget]] = deque(
            (i, rng, RetryBudget(self.max_retries))
            for i, rng in enumerate(episode_rngs)
        )
        results: dict[int, EpisodeResult] = {}
        busy: dict[int, tuple[int, np.random.Generator, RetryBudget]] = {}
        idle = set(range(self.num_workers))
        last_error: str | None = None

        t0 = self.clock.perf_counter()
        while len(results) < len(episode_rngs):
            while idle and queue:
                w = idle.pop()
                task = queue.popleft()
                busy[w] = task
                with self._active.get_lock():
                    self._active.value = len(busy)
                self._task_parent_conns[w].send((task[0], task[1]))
            waitees: list = [self._task_parent_conns[w] for w in busy]
            waitees += [p.sentinel for p in self._workers if p is not None]
            if self._evaluator_proc is not None:
                waitees.append(self._evaluator_proc.sentinel)
            ready = set(wait(waitees, timeout=1.0))

            # results first: a worker that finished and *then* died must
            # not have its completed episode requeued
            for w in list(busy):
                conn = self._task_parent_conns[w]
                if conn not in ready:
                    continue
                proc = self._workers[w]
                if proc is None or not proc.is_alive():
                    # A worker killed mid-send leaves a torn frame a
                    # blocking recv would hang on; skip -- the sentinel
                    # path requeues, and the deterministic re-run under
                    # the same rng reproduces the same episode anyway.
                    continue
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    continue  # death handled via the sentinel below
                if msg[0] == "done":
                    _, idx, episode = msg
                    results[idx] = episode
                    del busy[w]
                    idle.add(w)
                elif msg[0] == "error":
                    last_error = msg[2]
                    # the worker re-raises and dies; the sentinel path
                    # requeues (or fails the round on budget exhaustion)

            if (
                self._evaluator_proc is not None
                and self._evaluator_proc.sentinel in ready
                and not self._evaluator_proc.is_alive()
            ):
                self._fail_round("evaluator process died", last_error)
            for w, proc in enumerate(self._workers):
                if proc is None or proc.is_alive():
                    continue
                task = busy.pop(w, None)
                if task is not None:
                    idx, rng, budget = task
                    if not budget.spend():
                        self._fail_round(
                            f"episode {idx} failed {budget.attempts} times "
                            f"(retry budget {self.max_retries})",
                            last_error,
                        )
                    # same rng -> the re-run reproduces the same transcript
                    queue.appendleft((idx, rng, budget))
                    self.episodes_requeued += 1
                self._respawn_worker(w)
                idle.add(w)
            with self._active.get_lock():
                self._active.value = len(busy)
        wall = self.clock.perf_counter() - t0
        with self._active.get_lock():
            self._active.value = 0

        snap = self.counters.snapshot()
        requests = snap["requests_served"] - base["requests_served"]
        batches = snap["batches_flushed"] - base["batches_flushed"]
        hits = (self.cache.hits if self.cache else 0) - base_hits
        misses = (self.cache.misses if self.cache else 0) - base_misses
        ordered = [results[i] for i in range(len(episode_rngs))]
        stats = FarmStats(
            games=len(ordered),
            moves=sum(r.moves for r in ordered),
            playouts=sum(r.total_playouts for r in ordered),
            wall_time=wall,
            eval_requests=requests,
            eval_batches=batches,
            mean_batch_occupancy=requests / batches if batches else 0.0,
            partial_flushes=snap["partial_flushes"] - base["partial_flushes"],
            cache_hits=hits,
            cache_misses=misses,
            cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
            num_workers=self.num_workers,
            worker_restarts=self.worker_restarts - restarts_before,
            episodes_requeued=self.episodes_requeued - requeued_before,
        )
        return ordered, stats

    def _fail_round(self, reason: str, last_error: str | None) -> None:
        detail = f"\nlast worker error:\n{last_error}" if last_error else ""
        raise FarmError(f"{reason}{detail}")
