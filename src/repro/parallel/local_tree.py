"""Local-tree tree-parallel MCTS (paper Algorithm 3, Section 3.1.2).

A centralised **master thread** (the caller of :meth:`search`) owns the
complete tree and executes *all* in-tree operations -- selection,
expansion, backup -- with no locks at all.  N worker threads are dedicated
to node evaluation (DNN inference); the master communicates with them
through FIFO pipes (here: executor futures, completion-ordered).

The ``batch_size`` parameter implements the CUDA-stream sub-batching of
Sections 3.3/4.2: the master accumulates ``B`` evaluation requests before
submitting them as one batched inference, so with N workers there are
N/B requests in flight -- the knob Algorithm 4 tunes.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait

import numpy as np

from repro.games.base import Game
from repro.mcts.backend import TreeBackend
from repro.mcts.budget import SearchBudget, as_budget
from repro.mcts.evaluation import Evaluation, Evaluator
from repro.mcts.node import Node
from repro.mcts.search import (
    action_prior_from_root,
    add_dirichlet_noise,
    backup,
    expand,
    select_leaf,
)
from repro.mcts.virtual_loss import VirtualLossPolicy, WUVirtualLoss
from repro.parallel.base import ParallelScheme, SchemeName
from repro.utils.rng import new_rng

__all__ = ["LocalTreeMCTS"]


class LocalTreeMCTS(ParallelScheme):
    """Master-thread tree with asynchronous worker-pool evaluation.

    Parameters
    ----------
    evaluator : leaf evaluator; ``evaluate_batch`` is used, so a network
        evaluator performs genuinely batched inference.
    num_workers : worker-pool capacity N (max evaluation requests in
        flight; Algorithm 3 line 12).
    batch_size : evaluation requests accumulated before submission
        (B of Section 4.2; 1 = fully asynchronous, the CPU-only default).
    vl_policy : defaults to WU-UCT unobserved-sample tracking [Liu 2020],
        the style the local-tree lineage uses; constant VL also works.
    """

    name = SchemeName.LOCAL_TREE

    def __init__(
        self,
        evaluator: Evaluator,
        num_workers: int = 4,
        batch_size: int = 1,
        c_puct: float = 5.0,
        vl_policy: VirtualLossPolicy | None = None,
        dirichlet_alpha: float = 0.3,
        dirichlet_epsilon: float = 0.0,
        rng: np.random.Generator | int | None = None,
        tree_backend: TreeBackend | str | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if not 1 <= batch_size <= num_workers:
            raise ValueError(
                f"batch_size must be in [1, num_workers={num_workers}], got {batch_size}"
            )
        if c_puct <= 0:
            raise ValueError("c_puct must be positive")
        self.evaluator = evaluator
        self.num_workers = num_workers
        self.batch_size = batch_size
        self.c_puct = c_puct
        self.vl_policy = vl_policy or WUVirtualLoss()
        self.dirichlet_alpha = dirichlet_alpha
        self.dirichlet_epsilon = dirichlet_epsilon
        self.rng = new_rng(rng)
        # only the master thread touches the tree (Algorithm 3), so the
        # array backend is exact here too; Node stays the default
        self._resolve_backend(tree_backend, TreeBackend.NODE)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="local-tree"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- search (Algorithm 3, rollout_n_times) -------------------------------
    def search(self, game: Game, num_playouts: "int | SearchBudget") -> Node:
        budget = as_budget(num_playouts)
        if game.is_terminal:
            raise ValueError("cannot search from a terminal state")
        root = self._make_root(game, budget)
        evaluation = self.evaluator.evaluate(game)
        expand(root, game, evaluation)
        root.visit_count += 1
        if self.dirichlet_epsilon > 0:
            add_dirichlet_noise(
                root, self.rng, self.dirichlet_alpha, self.dirichlet_epsilon
            )
        pool = self._ensure_pool()

        pending: list[tuple[Node, Game]] = []  # accumulating sub-batch
        inflight: dict[Future, list[tuple[Node, Game]]] = {}

        def inflight_requests() -> int:
            return sum(len(items) for items in inflight.values())

        def flush() -> None:
            if not pending:
                return
            items = pending.copy()
            fut = pool.submit(self.evaluator.evaluate_batch, [g for _, g in items])
            inflight[fut] = items
            pending.clear()

        launched = 1  # the root evaluation
        completed = 1
        clock = budget.start()
        target = clock.target  # None with a pure time budget
        # the root expansion leaves the root's children unvisited, so the
        # deadline may only fire once min_playouts real rollouts launched
        min_launched = 1 + budget.min_playouts

        def reached(n: int) -> bool:
            return target is not None and n >= target

        def deadline_hit() -> bool:
            return launched >= min_launched and clock.expired()

        while True:
            # Anytime semantics: an expired deadline stops *launching*
            # playouts; everything already in flight still completes (and
            # recovers its virtual loss) before the move returns.
            expired = deadline_hit()
            # Master-thread in-tree operations: select new leaves while
            # worker capacity remains (Algorithm 3 lines 7-11).
            while (
                not expired
                and not reached(launched)
                and inflight_requests() + len(pending) < self.num_workers
            ):
                leaf, leaf_game, _ = select_leaf(
                    root, game.copy(), self.c_puct, self.vl_policy
                )
                launched += 1
                if leaf.is_terminal:
                    value = leaf.terminal_value
                    assert value is not None
                    backup(leaf, value, self.vl_policy)
                    completed += 1
                    continue
                pending.append((leaf, leaf_game))
                if len(pending) >= self.batch_size:
                    flush()
                expired = deadline_hit()

            if completed == launched and (reached(completed) or expired):
                break
            # All selections launched (or capacity full): force out any
            # partial sub-batch so the tail of the move cannot deadlock.
            if pending and (reached(launched) or expired or not inflight):
                flush()
            if not inflight:
                # every launched playout already completed via terminal
                # leaves and nothing is pending -- but the count says we
                # still owe playouts, so selection must continue.
                continue
            # Wait for a task to finish (Algorithm 3 lines 12-16).
            done, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for fut in done:
                items = inflight.pop(fut)
                evaluations: list[Evaluation] = fut.result()
                for (leaf, leaf_game), ev in zip(items, evaluations):
                    # Master-thread expansion and backup (no locks needed:
                    # only this thread ever touches the tree).
                    value = expand(leaf, leaf_game, ev)
                    backup(leaf, value, self.vl_policy)
                    completed += 1
        return root

    def get_action_prior(
        self, game: Game, num_playouts: "int | SearchBudget"
    ) -> np.ndarray:
        root = self.search(game, num_playouts)
        return action_prior_from_root(root, game.action_size)
