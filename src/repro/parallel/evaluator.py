"""Accelerator request queue and batching evaluator (paper Section 3.3).

"We utilize a dedicated accelerator queue for accumulating DNN inference
task requests produced by the tree selection process.  When the queue size
reaches a predetermined threshold, all tasks are submitted together to the
GPU for computation."

:class:`AcceleratorQueue` is that queue: producers (shared-tree workers, or
whole concurrent games in the multi-game serving engine) submit states and
block on a per-request future; whichever submission fills the batch
executes the batched inference inline and resolves all the futures.  A
*linger timeout* flushes partial batches so the tail of a move (fewer
requests remaining than the threshold) cannot deadlock.

The linger is a **single armed window measured from the oldest pending
entry**: a partial flush fires only once that entry has aged past
``linger``, whoever happens to observe it first.  (Historically every
blocked waiter ran its own private ``linger`` timer and called ``flush()``
unconditionally on expiry, so N concurrent waiters shattered batches into
N staggered partial flushes precisely as load rose -- the thundering-herd
bug this module's stress suite pins down.)

The flush threshold is adjustable at runtime (:meth:`set_batch_size`):
the multi-game engine shrinks it as games finish so the last few producers
are not condemned to linger-timeout stalls on every request.

:class:`BatchingEvaluator` adapts the queue to the
:class:`repro.mcts.evaluation.Evaluator` interface so any search scheme
can be pointed at a batched accelerator transparently.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError

from repro.games.base import Game
from repro.mcts.evaluation import Evaluation, Evaluator

__all__ = ["AcceleratorQueue", "BatchingEvaluator"]


class AcceleratorQueue:
    """Thread-safe batch-accumulation queue in front of a batched evaluator.

    Parameters
    ----------
    evaluator : the backing (accelerator) evaluator; its ``evaluate_batch``
        is invoked with the accumulated states.
    batch_size : flush threshold (the communication batch size; for the
        shared-tree scheme the paper always sets this to N, Section 3.3).
    linger : seconds the *oldest* pending request tolerates before a
        partial flush goes out.  Needed because the last requests of a
        move may never fill a batch.  The window is armed once per
        backlog, not once per waiter: however many producers are blocked,
        a partial flush fires only when the front of the queue has aged
        past ``linger``, so late joiners ride along instead of being
        shattered into their own tiny batches.

    Statistics (``batches_flushed``, ``requests_served``, ``partial_flushes``,
    ``linger_flushes`` and the derived ``mean_batch_occupancy``) are
    maintained under the queue lock: flushes run concurrently on producer
    threads, and unsynchronised ``+=`` read-modify-write updates would
    silently lose counts under contention.
    """

    def __init__(
        self, evaluator: Evaluator, batch_size: int, linger: float = 0.005
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if linger <= 0:
            raise ValueError("linger must be positive")
        self.evaluator = evaluator
        self.linger = linger
        self._lock = threading.Lock()
        self._batch_size = batch_size
        #: (game, future, enqueued_at) in arrival order -- [0] is oldest
        self._pending: list[tuple[Game, Future, float]] = []
        self.batches_flushed = 0
        self.requests_served = 0
        #: flushes that went out below the threshold (linger/tail flushes)
        self.partial_flushes = 0
        #: partial flushes forced by the aged-oldest linger window
        #: specifically (a subset of partial_flushes)
        self.linger_flushes = 0

    @property
    def batch_size(self) -> int:
        return self._batch_size

    def set_batch_size(self, batch_size: int) -> None:
        """Retarget the flush threshold to exactly *batch_size* -- growth
        included (a gateway raising the threshold as sessions join must
        not be silently clamped to the old value; use
        :meth:`shrink_batch_size` for the monotone-min variant).  Flushes
        immediately if the pending backlog already meets the new
        (smaller) threshold."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        with self._lock:
            self._batch_size = batch_size
            flush_now = None
            if len(self._pending) >= batch_size:
                flush_now = self._pending
                self._pending = []
        if flush_now:
            self._run_batch(flush_now)

    def shrink_batch_size(self, batch_size: int) -> None:
        """Lower the flush threshold to ``min(current, batch_size)``.

        The min is taken under the queue lock, so concurrent shrinks apply
        commutatively: whatever order near-simultaneous callers land in,
        the threshold never moves back up (use :meth:`set_batch_size` for
        that).  This is the engine's end-of-game path -- as producers
        depart, the remaining ones must never wait on a threshold larger
        than their own headcount.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        with self._lock:
            self._batch_size = min(self._batch_size, batch_size)
            flush_now = None
            if len(self._pending) >= self._batch_size:
                flush_now = self._pending
                self._pending = []
        if flush_now:
            self._run_batch(flush_now)

    def submit(self, game: Game) -> Future:
        """Enqueue a state; returns a future resolving to its Evaluation."""
        fut: Future = Future()
        flush_now: list[tuple[Game, Future, float]] | None = None
        with self._lock:
            self._pending.append((game, fut, time.monotonic()))
            if len(self._pending) >= self._batch_size:
                flush_now = self._pending
                self._pending = []
        if flush_now is not None:
            self._run_batch(flush_now)
        return fut

    def evaluate_blocking(self, game: Game) -> Evaluation:
        """Submit and wait; a partial flush fires once the *oldest* pending
        entry has aged past ``linger``.

        The aging check is what keeps N concurrent waiters from shattering
        the batch: every waiter may wake, but none flushes before the
        shared window (armed by the front of the queue) expires, and
        whichever waiter takes the batch takes *all* of it.
        """
        fut = self.submit(game)
        while True:
            if fut.done():
                return fut.result()
            batch: list[tuple[Game, Future, float]] | None = None
            with self._lock:
                wait = self.linger
                if self._pending:
                    due = self._pending[0][2] + self.linger
                    now = time.monotonic()
                    if now >= due:
                        batch = self._pending
                        self._pending = []
                        self.linger_flushes += 1
                    else:
                        wait = due - now
                # an empty backlog here means our entry is inside a flush
                # another thread is running; wait for its result below
            if batch is not None:
                self._run_batch(batch)
                continue
            try:
                return fut.result(timeout=max(wait, 1e-5))
            # On Python < 3.11 concurrent.futures.TimeoutError is NOT the
            # builtin TimeoutError, so both must be caught.
            except (TimeoutError, FuturesTimeoutError):
                continue

    def flush(self) -> int:
        """Force evaluation of whatever is pending; returns the batch size."""
        with self._lock:
            batch = self._pending
            self._pending = []
        if batch:
            self._run_batch(batch)
        return len(batch)

    def _run_batch(self, batch: list[tuple[Game, Future, float]]) -> None:
        games = [g for g, _, _ in batch]
        try:
            evaluations = self.evaluator.evaluate_batch(games)
        except BaseException as err:  # propagate to all waiters
            for _, fut, _ in batch:
                fut.set_exception(err)
            return
        with self._lock:
            self.batches_flushed += 1
            self.requests_served += len(batch)
            if len(batch) < self._batch_size:
                self.partial_flushes += 1
        for (_, fut, _), ev in zip(batch, evaluations):
            fut.set_result(ev)

    @property
    def mean_batch_occupancy(self) -> float:
        """Average requests per flushed batch (the Section 3.3 figure of
        merit: higher occupancy = better accelerator utilisation)."""
        with self._lock:
            if self.batches_flushed == 0:
                return 0.0
            return self.requests_served / self.batches_flushed

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)


class BatchingEvaluator(Evaluator):
    """Evaluator facade over an :class:`AcceleratorQueue`.

    Point a :class:`repro.parallel.shared_tree.SharedTreeMCTS` at one of
    these (with ``batch_size == num_workers``) to reproduce the paper's
    shared-tree + GPU configuration: N selection threads, full-batched
    inference.
    """

    def __init__(
        self, evaluator: Evaluator, batch_size: int, linger: float = 0.005
    ) -> None:
        self.queue = AcceleratorQueue(evaluator, batch_size, linger)

    def evaluate(self, game: Game) -> Evaluation:
        return self.queue.evaluate_blocking(game)

    def evaluate_batch(self, games: list[Game]) -> list[Evaluation]:
        # Already a batch: bypass accumulation, evaluate directly.
        return self.queue.evaluator.evaluate_batch(games)
