"""Accelerator request queue and batching evaluator (paper Section 3.3).

"We utilize a dedicated accelerator queue for accumulating DNN inference
task requests produced by the tree selection process.  When the queue size
reaches a predetermined threshold, all tasks are submitted together to the
GPU for computation."

:class:`AcceleratorQueue` is that queue: producers (shared-tree workers, or
whole concurrent games in the multi-game serving engine) submit states and
block on a per-request future; whichever submission fills the batch
executes the batched inference inline and resolves all the futures.  A
*linger timeout* flushes partial batches so the tail of a move (fewer
requests remaining than the threshold) cannot deadlock.

The flush threshold is adjustable at runtime (:meth:`set_batch_size`):
the multi-game engine shrinks it as games finish so the last few producers
are not condemned to linger-timeout stalls on every request.

:class:`BatchingEvaluator` adapts the queue to the
:class:`repro.mcts.evaluation.Evaluator` interface so any search scheme
can be pointed at a batched accelerator transparently.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError

from repro.games.base import Game
from repro.mcts.evaluation import Evaluation, Evaluator

__all__ = ["AcceleratorQueue", "BatchingEvaluator"]


class AcceleratorQueue:
    """Thread-safe batch-accumulation queue in front of a batched evaluator.

    Parameters
    ----------
    evaluator : the backing (accelerator) evaluator; its ``evaluate_batch``
        is invoked with the accumulated states.
    batch_size : flush threshold (the communication batch size; for the
        shared-tree scheme the paper always sets this to N, Section 3.3).
    linger : seconds a waiting producer tolerates before forcing a partial
        flush.  Needed because the last requests of a move may never fill
        a batch.

    Statistics (``batches_flushed``, ``requests_served``, ``partial_flushes``
    and the derived ``mean_batch_occupancy``) are maintained under the queue
    lock: flushes run concurrently on producer threads, and unsynchronised
    ``+=`` read-modify-write updates would silently lose counts under
    contention.
    """

    def __init__(
        self, evaluator: Evaluator, batch_size: int, linger: float = 0.005
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if linger <= 0:
            raise ValueError("linger must be positive")
        self.evaluator = evaluator
        self.linger = linger
        self._lock = threading.Lock()
        self._batch_size = batch_size
        self._pending: list[tuple[Game, Future]] = []
        self.batches_flushed = 0
        self.requests_served = 0
        #: flushes that went out below the threshold (linger/tail flushes)
        self.partial_flushes = 0

    @property
    def batch_size(self) -> int:
        return self._batch_size

    def set_batch_size(self, batch_size: int) -> None:
        """Retarget the flush threshold; flushes immediately if the pending
        backlog already meets the new (smaller) threshold."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        with self._lock:
            self._batch_size = batch_size
            flush_now = None
            if len(self._pending) >= batch_size:
                flush_now = self._pending
                self._pending = []
        if flush_now:
            self._run_batch(flush_now)

    def shrink_batch_size(self, batch_size: int) -> None:
        """Lower the flush threshold to ``min(current, batch_size)``.

        The min is taken under the queue lock, so concurrent shrinks apply
        commutatively: whatever order near-simultaneous callers land in,
        the threshold never moves back up (use :meth:`set_batch_size` for
        that).  This is the engine's end-of-game path -- as producers
        depart, the remaining ones must never wait on a threshold larger
        than their own headcount.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        with self._lock:
            self._batch_size = min(self._batch_size, batch_size)
            flush_now = None
            if len(self._pending) >= self._batch_size:
                flush_now = self._pending
                self._pending = []
        if flush_now:
            self._run_batch(flush_now)

    def submit(self, game: Game) -> Future:
        """Enqueue a state; returns a future resolving to its Evaluation."""
        fut: Future = Future()
        flush_now: list[tuple[Game, Future]] | None = None
        with self._lock:
            self._pending.append((game, fut))
            if len(self._pending) >= self._batch_size:
                flush_now = self._pending
                self._pending = []
        if flush_now is not None:
            self._run_batch(flush_now)
        return fut

    def evaluate_blocking(self, game: Game) -> Evaluation:
        """Submit and wait; forces a partial flush after the linger timeout."""
        fut = self.submit(game)
        while True:
            try:
                return fut.result(timeout=self.linger)
            # On Python < 3.11 concurrent.futures.TimeoutError is NOT the
            # builtin TimeoutError, so both must be caught.
            except (TimeoutError, FuturesTimeoutError):
                self.flush()

    def flush(self) -> int:
        """Force evaluation of whatever is pending; returns the batch size."""
        with self._lock:
            batch = self._pending
            self._pending = []
        if batch:
            self._run_batch(batch)
        return len(batch)

    def _run_batch(self, batch: list[tuple[Game, Future]]) -> None:
        games = [g for g, _ in batch]
        try:
            evaluations = self.evaluator.evaluate_batch(games)
        except BaseException as err:  # propagate to all waiters
            for _, fut in batch:
                fut.set_exception(err)
            return
        with self._lock:
            self.batches_flushed += 1
            self.requests_served += len(batch)
            if len(batch) < self._batch_size:
                self.partial_flushes += 1
        for (_, fut), ev in zip(batch, evaluations):
            fut.set_result(ev)

    @property
    def mean_batch_occupancy(self) -> float:
        """Average requests per flushed batch (the Section 3.3 figure of
        merit: higher occupancy = better accelerator utilisation)."""
        with self._lock:
            if self.batches_flushed == 0:
                return 0.0
            return self.requests_served / self.batches_flushed

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)


class BatchingEvaluator(Evaluator):
    """Evaluator facade over an :class:`AcceleratorQueue`.

    Point a :class:`repro.parallel.shared_tree.SharedTreeMCTS` at one of
    these (with ``batch_size == num_workers``) to reproduce the paper's
    shared-tree + GPU configuration: N selection threads, full-batched
    inference.
    """

    def __init__(
        self, evaluator: Evaluator, batch_size: int, linger: float = 0.005
    ) -> None:
        self.queue = AcceleratorQueue(evaluator, batch_size, linger)

    def evaluate(self, game: Game) -> Evaluation:
        return self.queue.evaluate_blocking(game)

    def evaluate_batch(self, games: list[Game]) -> list[Evaluation]:
        # Already a batch: bypass accumulation, evaluate directly.
        return self.queue.evaluator.evaluate_batch(games)
