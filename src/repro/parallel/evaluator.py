"""Accelerator request queue and batching evaluator (paper Section 3.3).

"We utilize a dedicated accelerator queue for accumulating DNN inference
task requests produced by the tree selection process.  When the queue size
reaches a predetermined threshold, all tasks are submitted together to the
GPU for computation."

:class:`AcceleratorQueue` is that queue: producers (shared-tree workers)
submit states and block on a per-request future; whichever submission
fills the batch executes the batched inference inline and resolves all the
futures.  A *linger timeout* flushes partial batches so the tail of a move
(fewer requests remaining than the threshold) cannot deadlock.

:class:`BatchingEvaluator` adapts the queue to the
:class:`repro.mcts.evaluation.Evaluator` interface so any search scheme
can be pointed at a batched accelerator transparently.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future

from repro.games.base import Game
from repro.mcts.evaluation import Evaluation, Evaluator

__all__ = ["AcceleratorQueue", "BatchingEvaluator"]


class AcceleratorQueue:
    """Thread-safe batch-accumulation queue in front of a batched evaluator.

    Parameters
    ----------
    evaluator : the backing (accelerator) evaluator; its ``evaluate_batch``
        is invoked with the accumulated states.
    batch_size : flush threshold (the communication batch size; for the
        shared-tree scheme the paper always sets this to N, Section 3.3).
    linger : seconds a waiting producer tolerates before forcing a partial
        flush.  Needed because the last requests of a move may never fill
        a batch.
    """

    def __init__(
        self, evaluator: Evaluator, batch_size: int, linger: float = 0.005
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if linger <= 0:
            raise ValueError("linger must be positive")
        self.evaluator = evaluator
        self.batch_size = batch_size
        self.linger = linger
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: list[tuple[Game, Future]] = []
        self.batches_flushed = 0
        self.requests_served = 0

    def submit(self, game: Game) -> Future:
        """Enqueue a state; returns a future resolving to its Evaluation."""
        fut: Future = Future()
        flush_now: list[tuple[Game, Future]] | None = None
        with self._lock:
            self._pending.append((game, fut))
            if len(self._pending) >= self.batch_size:
                flush_now = self._pending
                self._pending = []
            else:
                self._cond.notify_all()
        if flush_now is not None:
            self._run_batch(flush_now)
        return fut

    def evaluate_blocking(self, game: Game) -> Evaluation:
        """Submit and wait; forces a partial flush after the linger timeout."""
        fut = self.submit(game)
        while True:
            try:
                return fut.result(timeout=self.linger)
            except TimeoutError:
                self.flush()

    def flush(self) -> int:
        """Force evaluation of whatever is pending; returns the batch size."""
        with self._lock:
            batch = self._pending
            self._pending = []
        if batch:
            self._run_batch(batch)
        return len(batch)

    def _run_batch(self, batch: list[tuple[Game, Future]]) -> None:
        games = [g for g, _ in batch]
        try:
            evaluations = self.evaluator.evaluate_batch(games)
        except BaseException as err:  # propagate to all waiters
            for _, fut in batch:
                fut.set_exception(err)
            return
        self.batches_flushed += 1
        self.requests_served += len(batch)
        for (_, fut), ev in zip(batch, evaluations):
            fut.set_result(ev)

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)


class BatchingEvaluator(Evaluator):
    """Evaluator facade over an :class:`AcceleratorQueue`.

    Point a :class:`repro.parallel.shared_tree.SharedTreeMCTS` at one of
    these (with ``batch_size == num_workers``) to reproduce the paper's
    shared-tree + GPU configuration: N selection threads, full-batched
    inference.
    """

    def __init__(
        self, evaluator: Evaluator, batch_size: int, linger: float = 0.005
    ) -> None:
        self.queue = AcceleratorQueue(evaluator, batch_size, linger)

    def evaluate(self, game: Game) -> Evaluation:
        return self.queue.evaluate_blocking(game)

    def evaluate_batch(self, games: list[Game]) -> list[Evaluation]:
        # Already a batch: bypass accumulation, evaluate directly.
        return self.queue.evaluator.evaluate_batch(games)
