"""Real-thread tree-parallel MCTS schemes (Section 3 of the paper).

- :mod:`repro.parallel.shared_tree` -- Algorithm 2: N worker threads share
  one lock-protected tree.
- :mod:`repro.parallel.local_tree`  -- Algorithm 3: a master thread owns the
  tree; N worker threads run DNN inference fed through FIFO pipes.
- :mod:`repro.parallel.leaf_parallel`, :mod:`repro.parallel.root_parallel`
  -- the related-work baselines of Section 2.2.
- :mod:`repro.parallel.evaluator`   -- the accelerator request queue of
  Section 3.3 (batch accumulation before offload).
- :mod:`repro.parallel.locks`       -- striped per-node lock table.

GIL note: these implementations are *functionally* faithful (same
algorithm, same lock discipline, genuinely concurrent evaluation when the
evaluator releases the GIL inside BLAS).  Wall-clock scaling of the
in-tree operations is limited by the GIL; figure-level timing reproduction
therefore uses :mod:`repro.simulator`, which executes the same algorithms
in virtual time.  See DESIGN.md, "Substitutions".
"""

from repro.parallel.base import ParallelScheme, SchemeName
from repro.parallel.evaluator import AcceleratorQueue, BatchingEvaluator
from repro.parallel.leaf_parallel import LeafParallelMCTS
from repro.parallel.local_tree import LocalTreeMCTS
from repro.parallel.lock_free import LockFreeSharedTreeMCTS
from repro.parallel.locks import StripedLockTable
from repro.parallel.root_parallel import RootParallelMCTS
from repro.parallel.shared_tree import SharedTreeMCTS
from repro.parallel.speculative import SpeculativeMCTS

__all__ = [
    "AcceleratorQueue",
    "BatchingEvaluator",
    "LeafParallelMCTS",
    "LocalTreeMCTS",
    "LockFreeSharedTreeMCTS",
    "ParallelScheme",
    "RootParallelMCTS",
    "SchemeName",
    "SharedTreeMCTS",
    "SpeculativeMCTS",
    "StripedLockTable",
]
