"""Speculative DNN-MCTS [Kim, Kang & Cho 2021 -- SpecMCTS] (Section 2.2).

"The Speculated DNN-MCTS complies with the sequential in-tree operations,
and uses a speculative model in addition to the main model for faster
node evaluation.  This preserves the decision-making quality of the
sequential MCTS but introduces additional computations."

Implementation: the in-tree operations stay strictly sequential (one
playout at a time, exactly the serial algorithm).  At every leaf the
cheap **draft** evaluator produces priors/value immediately, the playout
commits with them, and the expensive **main** evaluation is launched
asynchronously.  When a main result lands, a *correction pass* patches
the tree:

- the leaf's children's priors are replaced with the main model's;
- the value difference (v_main - v_draft) is propagated along the
  recorded backup path with the usual sign alternation, without touching
  visit counts.

After all corrections drain (always forced before returning the action
prior), every Q in the tree equals what a main-model-only serial search
over the same node sequence would have produced -- the SpecMCTS quality
-preservation property, which the tests assert exactly.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait

import numpy as np

from repro.games.base import Game
from repro.mcts.backend import TreeBackend
from repro.mcts.budget import SearchBudget, as_budget
from repro.mcts.evaluation import Evaluation, Evaluator
from repro.mcts.node import Node
from repro.mcts.search import (
    action_prior_from_root,
    add_dirichlet_noise,
    backup,
    expand,
    select_leaf,
)
from repro.parallel.base import ParallelScheme, SchemeName
from repro.utils.rng import new_rng

__all__ = ["SpeculativeMCTS"]


class SpeculativeMCTS(ParallelScheme):
    """Serial in-tree search with speculative (draft) leaf evaluation.

    Parameters
    ----------
    main_evaluator : the accurate, expensive model.
    draft_evaluator : the fast speculative model (e.g. a slimmer network).
    num_workers : thread-pool capacity for in-flight main evaluations;
        when full, the search blocks until a correction drains
        (mirroring SpecMCTS's bounded speculation depth).
    """

    name = SchemeName.SERIAL  # sequential in-tree semantics

    def __init__(
        self,
        main_evaluator: Evaluator,
        draft_evaluator: Evaluator,
        num_workers: int = 4,
        c_puct: float = 5.0,
        dirichlet_alpha: float = 0.3,
        dirichlet_epsilon: float = 0.0,
        rng: np.random.Generator | int | None = None,
        tree_backend: TreeBackend | str | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if c_puct <= 0:
            raise ValueError("c_puct must be positive")
        self.main_evaluator = main_evaluator
        self.draft_evaluator = draft_evaluator
        self.num_workers = num_workers
        self.c_puct = c_puct
        self.dirichlet_alpha = dirichlet_alpha
        self.dirichlet_epsilon = dirichlet_epsilon
        self.rng = new_rng(rng)
        # in-tree operations are strictly sequential (the SpecMCTS
        # property), so the array backend is exact; Node is the default
        self._resolve_backend(tree_backend, TreeBackend.NODE)
        self._pool: ThreadPoolExecutor | None = None
        #: corrections applied (observability / the "additional
        #: computations" cost SpecMCTS pays)
        self.corrections = 0
        self.speculations = 0

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="spec-mcts"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- search ------------------------------------------------------------
    def search(self, game: Game, num_playouts: "int | SearchBudget") -> Node:
        budget = as_budget(num_playouts)
        if game.is_terminal:
            raise ValueError("cannot search from a terminal state")
        pool = self._ensure_pool()
        root = self._make_root(game, budget)
        clock = budget.start()
        inflight: dict[Future, tuple[Node, float]] = {}

        first = True
        while True:
            # bounded speculation: drain one correction when full
            while len(inflight) >= self.num_workers:
                self._drain_one(inflight)
            leaf, leaf_game, _ = select_leaf(
                root, game.copy(), self.c_puct, apply_virtual_loss=False
            )
            if leaf.is_terminal:
                value = leaf.terminal_value
                assert value is not None
                backup(leaf, value)
            else:
                draft = self.draft_evaluator.evaluate(leaf_game)
                value = expand(leaf, leaf_game, draft)
                backup(leaf, value)
                self.speculations += 1
                future = pool.submit(self.main_evaluator.evaluate, leaf_game)
                inflight[future] = (leaf, float(draft.value))
            clock.note()
            if first and self.dirichlet_epsilon > 0 and not root.is_leaf:
                add_dirichlet_noise(
                    root, self.rng, self.dirichlet_alpha, self.dirichlet_epsilon
                )
            first = False
            if clock.done():
                break
        # force all corrections before the tree is read (an expired
        # deadline still pays for its outstanding speculations -- the
        # SpecMCTS quality-preservation property must hold at any cutoff)
        while inflight:
            self._drain_one(inflight)
        return root

    def get_action_prior(
        self, game: Game, num_playouts: "int | SearchBudget"
    ) -> np.ndarray:
        root = self.search(game, num_playouts)
        return action_prior_from_root(root, game.action_size)

    # -- correction machinery ----------------------------------------------
    def _drain_one(self, inflight: dict[Future, tuple[Node, float]]) -> None:
        done, _ = wait(inflight, return_when=FIRST_COMPLETED)
        for future in done:
            leaf, draft_value = inflight.pop(future)
            main: Evaluation = future.result()
            self._apply_correction(leaf, draft_value, main)

    def _apply_correction(
        self, leaf: Node, draft_value: float, main: Evaluation
    ) -> None:
        """Patch priors and retro-fit the main value along the path."""
        self.corrections += 1
        for action, child in leaf.children.items():
            child.prior = float(main.priors[action])
        delta = float(main.value) - draft_value
        if delta == 0.0:
            return
        current: Node | None = leaf
        d = delta
        while current is not None:
            # the draft backup added -value at the leaf level with
            # alternating signs above; the correction adds -delta the
            # same way, leaving visit counts untouched
            current.value_sum += -d
            d = -d
            current = current.parent
