"""Leaf-parallel MCTS baseline [Cazenave & Jouandeau 2007] (Section 2.2).

A single tree with serial in-tree operations; parallelism is spent running
N independent evaluations of the *same* selected leaf.  The paper notes
this "wastes parallelism due to the lack of diverse evaluation coverage on
different selected paths" -- it exists here as a baseline for the
related-work comparison benchmarks.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.games.base import Game
from repro.mcts.backend import TreeBackend
from repro.mcts.budget import SearchBudget, as_budget
from repro.mcts.evaluation import Evaluator
from repro.mcts.node import Node
from repro.mcts.search import (
    action_prior_from_root,
    add_dirichlet_noise,
    backup,
    expand,
    select_leaf,
)
from repro.parallel.base import ParallelScheme, SchemeName
from repro.utils.rng import new_rng

__all__ = ["LeafParallelMCTS"]


class LeafParallelMCTS(ParallelScheme):
    """Serial tree, parallel same-leaf evaluations averaged into one backup.

    Each "playout" consumes ``num_workers`` evaluator calls but performs a
    single (averaged) backup -- the visit counts advance exactly as in the
    serial algorithm, only the leaf value estimate is lower-variance.  This
    matches the classical leaf-parallelisation semantics and is what makes
    the scheme waste parallel capacity on algorithmically-redundant work.
    """

    name = SchemeName.LEAF_PARALLEL

    def __init__(
        self,
        evaluator: Evaluator,
        num_workers: int = 4,
        c_puct: float = 5.0,
        dirichlet_alpha: float = 0.3,
        dirichlet_epsilon: float = 0.0,
        rng: np.random.Generator | int | None = None,
        tree_backend: TreeBackend | str | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if c_puct <= 0:
            raise ValueError("c_puct must be positive")
        self.evaluator = evaluator
        self.num_workers = num_workers
        self.c_puct = c_puct
        self.dirichlet_alpha = dirichlet_alpha
        self.dirichlet_epsilon = dirichlet_epsilon
        self.rng = new_rng(rng)
        # in-tree operations are serial here, so the array backend is safe
        self._resolve_backend(tree_backend, TreeBackend.ARRAY)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="leaf-parallel"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def search(self, game: Game, num_playouts: "int | SearchBudget") -> Node:
        budget = as_budget(num_playouts)
        if game.is_terminal:
            raise ValueError("cannot search from a terminal state")
        pool = self._ensure_pool()
        root = self._make_root(game, budget)
        clock = budget.start()
        first = True
        while True:
            leaf, leaf_game, _ = select_leaf(
                root, game.copy(), self.c_puct, apply_virtual_loss=False
            )
            if leaf.is_terminal:
                value = leaf.terminal_value
                assert value is not None
            else:
                futures = [
                    pool.submit(self.evaluator.evaluate, leaf_game)
                    for _ in range(self.num_workers)
                ]
                evaluations = [f.result() for f in futures]
                value = float(np.mean([ev.value for ev in evaluations]))
                # priors averaged as well (identical for deterministic nets)
                priors = np.mean([ev.priors for ev in evaluations], axis=0)
                merged = evaluations[0].__class__(priors=priors, value=value)
                expand(leaf, leaf_game, merged)
            backup(leaf, value)
            clock.note()
            if first and self.dirichlet_epsilon > 0 and not root.is_leaf:
                add_dirichlet_noise(
                    root, self.rng, self.dirichlet_alpha, self.dirichlet_epsilon
                )
            first = False
            if clock.done():
                return root

    def get_action_prior(
        self, game: Game, num_playouts: "int | SearchBudget"
    ) -> np.ndarray:
        root = self.search(game, num_playouts)
        return action_prior_from_root(root, game.action_size)
