"""Root-parallel MCTS baseline [Kato & Takeuchi 2010] (Section 2.2).

N workers grow completely independent trees from the same root state; the
action prior is the sum of root visit counts across the ensemble.  No
sharing means no synchronisation, but -- as the paper notes -- "still lets
multiple workers visit repetitive states".
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.games.base import Game
from repro.mcts.backend import TreeBackend
from repro.mcts.budget import SearchBudget, as_budget
from repro.mcts.evaluation import Evaluator
from repro.mcts.node import Node
from repro.mcts.serial import SerialMCTS
from repro.parallel.base import ParallelScheme, SchemeName
from repro.utils.rng import new_rng, spawn_rngs

__all__ = ["RootParallelMCTS"]


class RootParallelMCTS(ParallelScheme):
    """Ensemble of independent serial searches with aggregated statistics.

    ``num_playouts`` is divided evenly over the workers (remainder spread
    over the first few), so the total in-tree work matches the other
    schemes at equal playout budget.
    """

    name = SchemeName.ROOT_PARALLEL

    def __init__(
        self,
        evaluator: Evaluator,
        num_workers: int = 4,
        c_puct: float = 5.0,
        dirichlet_alpha: float = 0.3,
        dirichlet_epsilon: float = 0.0,
        rng: np.random.Generator | int | None = None,
        tree_backend: TreeBackend | str | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.evaluator = evaluator
        self.num_workers = num_workers
        self.c_puct = c_puct
        self.dirichlet_alpha = dirichlet_alpha
        self.dirichlet_epsilon = dirichlet_epsilon
        self.rng = new_rng(rng)
        # each worker owns a private serial tree: array backend is safe
        self._resolve_backend(tree_backend, TreeBackend.ARRAY)
        self._pool: ThreadPoolExecutor | None = None
        #: roots of the last search, one per worker (exposed for analysis)
        self.last_roots: list[Node] = []

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="root-parallel"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _worker_budgets(self, num_playouts: int) -> list[int]:
        base, extra = divmod(num_playouts, self.num_workers)
        budgets = [base + (1 if i < extra else 0) for i in range(self.num_workers)]
        return [b for b in budgets if b > 0]

    def search(self, game: Game, num_playouts: "int | SearchBudget") -> Node:
        """Runs the ensemble and returns a *merged* root whose children
        carry the aggregated visit counts (Q is visit-weighted)."""
        budget = as_budget(num_playouts)
        if game.is_terminal:
            raise ValueError("cannot search from a terminal state")
        pool = self._ensure_pool()
        if budget.num_playouts is not None:
            budgets: list[int | None] = list(
                self._worker_budgets(budget.num_playouts)
            )
        else:  # time-only budget: every worker searches until the deadline
            budgets = [None] * self.num_workers
        rngs = spawn_rngs(self.rng, len(budgets))
        # one absolute deadline shared by the whole ensemble: each worker
        # gets a per-worker count target but races the same wall clock
        clock = budget.start()

        def run(target: int | None, worker_rng: np.random.Generator) -> Node:
            engine = SerialMCTS(
                self.evaluator,
                c_puct=self.c_puct,
                dirichlet_alpha=self.dirichlet_alpha,
                dirichlet_epsilon=self.dirichlet_epsilon,
                rng=worker_rng,
                tree_backend=self.tree_backend,
            )
            return engine.search(game, budget, clock=clock.split(target))

        futures = [pool.submit(run, b, r) for b, r in zip(budgets, rngs)]
        self.last_roots = [f.result() for f in futures]
        return self._merge_roots(self.last_roots)

    @staticmethod
    def _merge_roots(roots: list[Node]) -> Node:
        merged = Node()
        for root in roots:
            merged.visit_count += root.visit_count
            for action, child in root.children.items():
                m = merged.children.get(action)
                if m is None:
                    m = merged.add_child(action, child.prior)
                m.visit_count += child.visit_count
                m.value_sum += child.value_sum
        return merged

    def get_action_prior(
        self, game: Game, num_playouts: "int | SearchBudget"
    ) -> np.ndarray:
        root = self.search(game, num_playouts)
        prior = np.zeros(game.action_size, dtype=np.float64)
        total = 0
        for action, child in root.children.items():
            prior[action] = child.visit_count
            total += child.visit_count
        if total == 0:
            raise ValueError("no visits recorded")
        return prior / total
