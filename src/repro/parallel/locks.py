"""Striped per-node lock table for the shared-tree scheme.

The paper protects each node with a mutex (Section 3.1.1).  Allocating a
real ``threading.Lock`` on every node wastes memory on trees with ~1600
nodes per move and millions over training, so we stripe: node identity
hashes into a fixed table of locks.  Two distinct nodes may share a
stripe -- that is only a (rare) performance cost, never a correctness
issue, and is the standard trick in shared-memory tree search.
"""

from __future__ import annotations

import threading

from repro.mcts.arraytree import ArrayNodeView
from repro.mcts.node import Node

__all__ = ["StripedLockTable"]


class StripedLockTable:
    """Fixed pool of locks indexed by node identity."""

    def __init__(self, num_stripes: int = 1024) -> None:
        if num_stripes < 1:
            raise ValueError("need at least one stripe")
        self.num_stripes = num_stripes
        self._locks = [threading.Lock() for _ in range(num_stripes)]

    def lock_for(self, node: "Node | ArrayNodeView") -> threading.Lock:
        # id() is stable for the node's lifetime in CPython.  Allocator
        # addresses are pool-aligned (identical low bits for same-sized
        # objects), so a plain multiply-mod collapses onto a handful of
        # stripes; a splitmix64-style avalanche spreads them properly.
        if isinstance(node, ArrayNodeView):
            # views are transient handles: key by (tree, row) so every
            # view of the same logical node maps to the same stripe
            h = (id(node.tree) ^ (node.index * 0x9E3779B97F4A7C15)) & 0xFFFFFFFFFFFFFFFF
        else:
            h = id(node) & 0xFFFFFFFFFFFFFFFF
        h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 31
        return self._locks[h % self.num_stripes]

    def __len__(self) -> int:
        return self.num_stripes
