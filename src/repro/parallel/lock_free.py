"""Lock-free shared-tree MCTS [Mirsoleimani et al. 2018] (Section 2.2).

The paper's related work discusses a lock-free tree-parallel variant that
"attempts to address [the synchronisation overhead] by developing a
lock-free tree-parallel method", at the cost of racy statistics that can
hurt decision quality without careful tuning.

This implementation drops every per-node mutex:

- virtual-loss updates, visit/value accumulation and expansion happen
  with plain (unsynchronised) attribute updates.  Under CPython each
  individual read/write is atomic, so counters can lose increments under
  contention but never corrupt memory -- the same weak-consistency regime
  the original lock-free C++ implementation accepts via relaxed atomics.
- expansion uses a per-node claim flag (a single attribute CAS-style
  test-and-set, atomic under the GIL) so only one worker allocates the
  child list; losers back their evaluation up without expanding.

The scheme exists as a baseline for the E10 ablation benchmark: it trades
the shared tree's lock overhead for statistical noise, exactly the
trade-off the paper's Section 2.2 narrative describes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, wait

import numpy as np

from repro.games.base import Game
from repro.mcts.backend import TreeBackend
from repro.mcts.budget import SearchBudget, as_budget
from repro.mcts.evaluation import Evaluator
from repro.mcts.node import Node
from repro.mcts.search import action_prior_from_root, add_dirichlet_noise, expand
from repro.mcts.uct import select_child
from repro.mcts.virtual_loss import ConstantVirtualLoss, VirtualLossPolicy
from repro.parallel.base import ParallelScheme, SchemeName
from repro.utils.rng import new_rng

__all__ = ["LockFreeSharedTreeMCTS"]


class LockFreeSharedTreeMCTS(ParallelScheme):
    """Shared tree with no locks: weakly-consistent statistics."""

    name = SchemeName.SHARED_TREE  # same family; variant flag below
    lock_free = True

    def __init__(
        self,
        evaluator: Evaluator,
        num_workers: int = 4,
        c_puct: float = 5.0,
        vl_policy: VirtualLossPolicy | None = None,
        dirichlet_alpha: float = 0.3,
        dirichlet_epsilon: float = 0.0,
        rng: np.random.Generator | int | None = None,
        tree_backend: TreeBackend | str | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if c_puct <= 0:
            raise ValueError("c_puct must be positive")
        self.evaluator = evaluator
        self.num_workers = num_workers
        self.c_puct = c_puct
        # non-strict by default: racy updates may lose VL increments
        self.vl_policy = vl_policy or ConstantVirtualLoss(strict=False)
        # either backend runs in the same weak-consistency regime here;
        # the array backend additionally races on growth (lost updates,
        # never corruption -- slab allocation itself is locked)
        self._resolve_backend(tree_backend, TreeBackend.NODE)
        self.dirichlet_alpha = dirichlet_alpha
        self.dirichlet_epsilon = dirichlet_epsilon
        self.rng = new_rng(rng)
        self._pool: ThreadPoolExecutor | None = None
        #: nodes whose expansion raced and was discarded (observability)
        self.expansion_races = 0

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="lock-free"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def search(self, game: Game, num_playouts: "int | SearchBudget") -> Node:
        budget = as_budget(num_playouts)
        if game.is_terminal:
            raise ValueError("cannot search from a terminal state")
        root = self._make_root(game, budget)
        evaluation = self.evaluator.evaluate(game)
        expand(root, game, evaluation)
        root.visit_count += 1
        if self.dirichlet_epsilon > 0:
            add_dirichlet_noise(
                root, self.rng, self.dirichlet_alpha, self.dirichlet_epsilon
            )
        clock = budget.start()
        clock.seed(1)  # the root evaluation above
        if clock.target is not None and clock.target <= 1:
            return root
        pool = self._ensure_pool()

        def drain() -> None:
            while clock.try_claim():
                self._rollout(root, game)
                clock.note_claimed()

        workers = self.num_workers
        if clock.target is not None:
            workers = min(workers, clock.target - 1)
        futures = [pool.submit(drain) for _ in range(workers)]
        done, _ = wait(futures)
        for f in done:
            f.result()
        return root

    def get_action_prior(
        self, game: Game, num_playouts: "int | SearchBudget"
    ) -> np.ndarray:
        root = self.search(game, num_playouts)
        return action_prior_from_root(root, game.action_size)

    def _rollout(self, root: Node, environment: Game) -> None:
        game = environment.copy()
        node = root
        self.vl_policy.on_descend(node)  # unsynchronised on purpose
        while not node.is_leaf and not node.is_terminal:
            node = select_child(node, self.c_puct, self.vl_policy)
            game.step(node.action)
            self.vl_policy.on_descend(node)
            if game.is_terminal:
                node.terminal_value = game.terminal_value

        if node.is_terminal:
            value = node.terminal_value
            assert value is not None
        else:
            evaluation = self.evaluator.evaluate(game)
            try:
                value = expand(node, game, evaluation)
            except ValueError:
                # two workers raced through the leaf check and collided on
                # a child insert; the loser keeps its evaluation for
                # backup and moves on (weak consistency by design)
                self.expansion_races += 1
                value = float(evaluation.value)

        current: Node | None = node
        v = value
        while current is not None:
            # plain updates: individually atomic, jointly racy (by design)
            current.visit_count += 1
            current.value_sum += -v
            self.vl_policy.on_backup(current)
            v = -v
            current = current.parent
