"""Shared-tree tree-parallel MCTS (paper Algorithm 2, Section 3.1.1).

N worker threads each execute complete playouts
(selection -> evaluation -> expansion -> backup) against one shared tree.
Per-node locks (striped, see :mod:`repro.parallel.locks`) protect the
virtual-loss updates during descent and the statistics updates during
expansion/backup, exactly the lock placement of Algorithm 2 (lines 13-15
and 18-20).

Thread-safety notes
-------------------
- Selection *reads* child statistics without locks.  Under CPython's GIL
  individual attribute reads are atomic; a read racing a concurrent backup
  sees either the old or the new value of each counter, which is the same
  "slightly stale statistics" regime the paper's lock-free reads on a real
  machine exhibit.
- Network inference from multiple threads is safe for *forward* passes
  (layer caches are clobbered, but outputs are computed from locals); the
  training backward pass must stay single-threaded, which Algorithm 1
  guarantees (training happens after the search stage).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, wait

import numpy as np

from repro.games.base import Game
from repro.mcts.backend import TreeBackend
from repro.mcts.budget import SearchBudget, as_budget
from repro.mcts.evaluation import Evaluator
from repro.mcts.node import Node
from repro.mcts.search import action_prior_from_root, add_dirichlet_noise, expand
from repro.mcts.uct import select_child
from repro.mcts.virtual_loss import ConstantVirtualLoss, VirtualLossPolicy
from repro.parallel.base import ParallelScheme, SchemeName
from repro.parallel.locks import StripedLockTable
from repro.utils.rng import new_rng

__all__ = ["SharedTreeMCTS"]


class SharedTreeMCTS(ParallelScheme):
    """Lock-protected shared-tree parallel search.

    Parameters
    ----------
    evaluator : leaf evaluator; must tolerate concurrent ``evaluate`` calls.
    num_workers : thread-pool size N (each worker owns a full playout).
    vl_policy : virtual-loss style; defaults to constant VL [Chaslot 2008],
        the paper's primary choice.  The default is built ``strict`` only
        on the ``Node`` backend: the array backend can lose VL increments
        during concurrent growth (weak consistency), so a caller-supplied
        policy combined with ``tree_backend="array"`` and multiple workers
        should also pass ``strict=False`` -- a strict policy may raise on
        a legitimately lost increment.
    """

    name = SchemeName.SHARED_TREE

    def __init__(
        self,
        evaluator: Evaluator,
        num_workers: int = 4,
        c_puct: float = 5.0,
        vl_policy: VirtualLossPolicy | None = None,
        dirichlet_alpha: float = 0.3,
        dirichlet_epsilon: float = 0.0,
        lock_stripes: int = 1024,
        rng: np.random.Generator | int | None = None,
        tree_backend: TreeBackend | str | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if c_puct <= 0:
            raise ValueError("c_puct must be positive")
        self.evaluator = evaluator
        self.num_workers = num_workers
        self.c_puct = c_puct
        # Node is the default here: per-object locking keeps the shared
        # tree exact, while the array backend is weakly consistent under
        # concurrent growth (acceptable, but opt-in via tree_backend).
        self._resolve_backend(tree_backend, TreeBackend.NODE)
        self.vl_policy = vl_policy or ConstantVirtualLoss(
            strict=self.tree_backend is TreeBackend.NODE
        )
        self.dirichlet_alpha = dirichlet_alpha
        self.dirichlet_epsilon = dirichlet_epsilon
        self.locks = StripedLockTable(lock_stripes)
        self.rng = new_rng(rng)
        self._pool: ThreadPoolExecutor | None = None

    # -- pool lifecycle -----------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="shared-tree"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- search ------------------------------------------------------------
    def search(self, game: Game, num_playouts: "int | SearchBudget") -> Node:
        budget = as_budget(num_playouts)
        if game.is_terminal:
            raise ValueError("cannot search from a terminal state")
        root = self._make_root(game, budget)
        # Expand the root serially so workers immediately have children to
        # diverge over; this mirrors the paper's episode warm-up and avoids
        # N workers all racing to evaluate the identical root state.
        evaluation = self.evaluator.evaluate(game)
        expand(root, game, evaluation)
        root.visit_count += 1  # the root evaluation counts as a playout
        if self.dirichlet_epsilon > 0:
            add_dirichlet_noise(
                root, self.rng, self.dirichlet_alpha, self.dirichlet_epsilon
            )
        clock = budget.start()
        clock.seed(1)  # the root evaluation above
        if clock.target is not None and clock.target <= 1:
            return root
        pool = self._ensure_pool()

        def drain() -> None:
            # each worker races the shared clock: one playout per claim,
            # so the count bound is exact and the deadline stops further
            # launches between playouts (anytime semantics)
            while clock.try_claim():
                self._threadsafe_rollout(root, game)
                clock.note_claimed()

        workers = self.num_workers
        if clock.target is not None:
            workers = min(workers, clock.target - 1)
        futures = [pool.submit(drain) for _ in range(workers)]
        done, _ = wait(futures)
        for f in done:
            f.result()  # surface worker exceptions
        return root

    def get_action_prior(
        self, game: Game, num_playouts: "int | SearchBudget"
    ) -> np.ndarray:
        root = self.search(game, num_playouts)
        return action_prior_from_root(root, game.action_size)

    # -- one worker playout (Algorithm 2, threadsafe_rollout) ----------------
    def _threadsafe_rollout(self, root: Node, environment: Game) -> None:
        game = environment.copy()
        node = root
        with self.locks.lock_for(node):
            self.vl_policy.on_descend(node)
        # Node Selection: descend while the node has children.
        while True:
            if node.is_terminal or node.is_leaf:
                break
            node = select_child(node, self.c_puct, self.vl_policy)
            game.step(node.action)
            with self.locks.lock_for(node):
                self.vl_policy.on_descend(node)
            if game.is_terminal:
                node.terminal_value = game.terminal_value

        # Node Evaluation (outside any lock: the expensive DNN inference).
        if node.is_terminal:
            value = node.terminal_value
            assert value is not None
        else:
            evaluation = self.evaluator.evaluate(game)
            # Node Expansion under the leaf's lock (Algorithm 2 line 17).
            with self.locks.lock_for(node):
                value = expand(node, game, evaluation)

        # BackUp under per-node locks (Algorithm 2 lines 18-20).
        current: Node | None = node
        v = value
        while current is not None:
            with self.locks.lock_for(current):
                current.visit_count += 1
                current.value_sum += -v
                self.vl_policy.on_backup(current)
            v = -v
            current = current.parent
