"""Common interface for every parallel search scheme.

The adaptive framework (Section 3.2) treats schemes as interchangeable
implementations of ``get_action_prior``; this module pins that contract
down so the design-configuration workflow can swap them at "compile time"
(here: object construction time).
"""

from __future__ import annotations

import abc
import enum

import numpy as np

from repro.games.base import Game
from repro.mcts.arraytree import ArrayNodeView
from repro.mcts.backend import TreeBackend, capacity_hint, make_root, resolve_backend
from repro.mcts.budget import SearchBudget, as_budget
from repro.mcts.node import Node

__all__ = ["SchemeName", "ParallelScheme"]


class SchemeName(str, enum.Enum):
    """Identifiers used by the performance models and the adaptive selector."""

    SERIAL = "serial"
    SHARED_TREE = "shared_tree"
    LOCAL_TREE = "local_tree"
    LEAF_PARALLEL = "leaf_parallel"
    ROOT_PARALLEL = "root_parallel"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ParallelScheme(abc.ABC):
    """A search scheme that turns a game state into an action prior.

    Every scheme can run over either tree backend (the ``TreeBackend``
    seam): construct with ``tree_backend="node"`` or ``"array"`` and call
    :meth:`_make_root` inside :meth:`search`.  Leaf-parallel and the
    root-parallel serial workers default to the array backend (their
    in-tree operations are single-threaded, so it is exact and much
    faster); the remaining schemes default to ``Node`` objects -- the
    multi-threaded shared-tree family because the array backend is only
    weakly consistent under concurrent growth, local-tree/speculative
    purely for reference-implementation conservatism (both are exact on
    the array backend and accept ``tree_backend="array"``).
    """

    name: SchemeName

    #: resolved storage layout; subclasses assign in ``__init__`` via
    #: :meth:`_resolve_backend`
    tree_backend: TreeBackend = TreeBackend.NODE

    def _resolve_backend(
        self,
        backend: TreeBackend | str | None,
        default: TreeBackend = TreeBackend.NODE,
    ) -> TreeBackend:
        self.tree_backend = resolve_backend(backend, default)
        return self.tree_backend

    def _make_root(
        self, game: Game, budget: "int | SearchBudget"
    ) -> "Node | ArrayNodeView":
        """Fresh root on the configured backend, sized for one move."""
        return make_root(
            self.tree_backend,
            capacity_hint(game.action_size, as_budget(budget).capacity_playouts),
        )

    @abc.abstractmethod
    def search(self, game: Game, num_playouts: "int | SearchBudget") -> Node:
        """Run the tree-based search and return the root node.

        *num_playouts* is the historic playout count or a
        :class:`~repro.mcts.budget.SearchBudget`; with a deadline the
        search is *anytime* -- it stops launching playouts once the wall
        clock expires and returns the statistics accumulated so far.
        """

    @abc.abstractmethod
    def get_action_prior(
        self, game: Game, num_playouts: "int | SearchBudget"
    ) -> np.ndarray:
        """Normalised root visit counts over the full action space."""

    def close(self) -> None:
        """Release thread pools; default is a no-op."""

    def __enter__(self) -> "ParallelScheme":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
