"""Common interface for every parallel search scheme.

The adaptive framework (Section 3.2) treats schemes as interchangeable
implementations of ``get_action_prior``; this module pins that contract
down so the design-configuration workflow can swap them at "compile time"
(here: object construction time).
"""

from __future__ import annotations

import abc
import enum

import numpy as np

from repro.games.base import Game
from repro.mcts.node import Node

__all__ = ["SchemeName", "ParallelScheme"]


class SchemeName(str, enum.Enum):
    """Identifiers used by the performance models and the adaptive selector."""

    SERIAL = "serial"
    SHARED_TREE = "shared_tree"
    LOCAL_TREE = "local_tree"
    LEAF_PARALLEL = "leaf_parallel"
    ROOT_PARALLEL = "root_parallel"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ParallelScheme(abc.ABC):
    """A search scheme that turns a game state into an action prior."""

    name: SchemeName

    @abc.abstractmethod
    def search(self, game: Game, num_playouts: int) -> Node:
        """Run the tree-based search and return the root node."""

    @abc.abstractmethod
    def get_action_prior(self, game: Game, num_playouts: int) -> np.ndarray:
        """Normalised root visit counts over the full action space."""

    def close(self) -> None:
        """Release thread pools; default is a no-op."""

    def __enter__(self) -> "ParallelScheme":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
