"""The Clock seam: one time interface, wall and virtual implementations.

Every time-touching layer of the serving stack (deadline arming in
:class:`~repro.mcts.budget.BudgetClock`, session idle-GC and latency
stamps in :class:`~repro.serving.service.MatchGateway`, round timing in
:class:`~repro.serving.engine.MultiGameSelfPlayEngine`, the farm
evaluator's linger) reads time through a :class:`Clock` instead of the
``time`` module directly.  Production injects nothing and gets
:data:`WALL_CLOCK` -- behaviour is bit-identical to calling
``time.monotonic()`` / ``time.perf_counter()`` / ``asyncio.sleep()``.
Tests inject a :class:`VirtualClock` and compress hours of soak into
milliseconds of wall time.

The virtual clock follows the doeff-time ``SimClock`` / ``TimeQueue``
idiom (SNIPPETS.md snippets 2-3): time is a number that only moves when
someone moves it.  Sleepers park on a time-ordered heap; a *driver*
coroutine advances the clock straight to the next due waiter, but only
once every runnable task has parked -- so virtual time never jumps past
work that was still in progress, and a scripted scenario unfolds in one
deterministic order however many simulated hours it spans.

No global event loop is monkeypatched: :meth:`VirtualClock.sleep` is an
ordinary awaitable and the driver is an ordinary task, so virtual-time
code interoperates with real asyncio primitives (locks, gather,
``run_in_executor``) unchanged.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from contextlib import asynccontextmanager
from typing import Awaitable, Protocol, TypeVar, runtime_checkable

__all__ = [
    "Clock",
    "WallClock",
    "VirtualClock",
    "WALL_CLOCK",
    "ClockTimeout",
    "clock_timeout",
]

T = TypeVar("T")


@runtime_checkable
class Clock(Protocol):
    """What the serving stack asks of time.

    ``monotonic`` stamps activity (session idle tracking, linger ages);
    ``perf_counter`` measures intervals (deadlines, latencies); ``sleep``
    parks an asyncio task.  A virtual implementation may back all three
    with one number -- consumers must never assume the two counters share
    an epoch, only that each is individually monotonic.
    """

    def monotonic(self) -> float:  # pragma: no cover - protocol
        ...

    def perf_counter(self) -> float:  # pragma: no cover - protocol
        ...

    async def sleep(self, seconds: float) -> None:  # pragma: no cover
        ...


class ClockTimeout(TimeoutError):
    """:func:`clock_timeout` expired before the awaited work finished."""


async def clock_timeout(clock: Clock, aw: Awaitable[T], timeout_s: float) -> T:
    """``asyncio.wait_for`` against an *injected* clock.

    The stdlib's ``wait_for`` arms its deadline with ``loop.call_later``
    -- real time, invisible to a :class:`VirtualClock` and therefore
    useless in simulated failure timelines.  This helper races the
    awaitable against ``clock.sleep(timeout_s)`` instead, so cluster
    health checks and RPC read deadlines time out on whichever clock the
    stack runs on: wall in production, virtual in the chaos suite.

    On timeout the work task is cancelled (and awaited) before
    :class:`ClockTimeout` is raised, so no orphan task keeps mutating
    state after its caller has moved on.
    """
    work = asyncio.ensure_future(aw)
    timer = asyncio.ensure_future(clock.sleep(timeout_s))
    try:
        await asyncio.wait({work, timer}, return_when=asyncio.FIRST_COMPLETED)
    except asyncio.CancelledError:
        work.cancel()
        timer.cancel()
        await asyncio.gather(work, timer, return_exceptions=True)
        raise
    if work.done():
        timer.cancel()
        # a VirtualClock sleep future parked on the heap is simply
        # skipped once cancelled; a real asyncio.sleep task unwinds
        await asyncio.gather(timer, return_exceptions=True)
        return work.result()
    work.cancel()
    await asyncio.gather(work, return_exceptions=True)
    raise ClockTimeout(f"no result within {timeout_s:g}s")


class WallClock:
    """Production time: the ``time`` module and real ``asyncio.sleep``.

    Stateless, picklable (process-backend budgets carry one across the
    executor boundary), and safe to share as the :data:`WALL_CLOCK`
    singleton.
    """

    __slots__ = ()

    def monotonic(self) -> float:
        return time.monotonic()

    def perf_counter(self) -> float:
        return time.perf_counter()

    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "WallClock()"


#: the default clock every seam falls back to when nothing is injected
WALL_CLOCK = WallClock()


class VirtualClock:
    """Deterministic simulated time over a real asyncio event loop.

    ``monotonic()`` and ``perf_counter()`` both read one simulated
    second counter.  :meth:`sleep` parks the calling task on a
    time-ordered heap; time advances either *synchronously* via
    :meth:`advance` / :meth:`advance_to` (a test or a simulated-latency
    executor modelling "this took 80 ms") or *automatically* via the
    driver (:meth:`run` / :meth:`driving`), which jumps straight to the
    next due waiter whenever the event loop is otherwise quiescent --
    the SNIPPETS.md ``sim_time`` handler's idle-priority clock-driver
    daemon, translated to plain asyncio.

    Quiescence is detected by yielding to the loop until its ready queue
    drains (introspected when the loop exposes one, with a bounded
    yield-count fallback otherwise), so virtual time never overtakes a
    task that still had same-tick work to do.  Tasks blocked on *real*
    concurrency (a thread-pool search) are invisible to this check:
    deterministic scenarios must run such work inline (see
    :class:`repro.serving.simulate.InlineExecutor`).
    """

    def __init__(self, start: float = 0.0, *, grace_yields: int = 32) -> None:
        if grace_yields < 1:
            raise ValueError("grace_yields must be >= 1")
        self._now = float(start)
        self._seq = itertools.count()
        # heap of (due, seq, future): seq breaks ties FIFO, deterministically
        self._waiters: list[tuple[float, int, asyncio.Future]] = []
        self._grace = grace_yields
        self._wake: asyncio.Event | None = None
        self.sleeps = 0  # lifetime sleep() calls (telemetry for tests)
        self.fires = 0  # lifetime waiters fired

    # -- Clock surface -------------------------------------------------------
    def monotonic(self) -> float:
        return self._now

    def perf_counter(self) -> float:
        return self._now

    async def sleep(self, seconds: float) -> None:
        """Park until the virtual clock reaches ``now + seconds``.

        A non-positive delay still parks (due immediately): the waiter
        fires on the next advance/driver pass, preserving the "sleep
        yields to everyone else first" ordering real loops give.
        """
        self.sleeps += 1
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        due = self._now + max(0.0, float(seconds))
        heapq.heappush(self._waiters, (due, next(self._seq), future))
        if self._wake is not None:
            self._wake.set()
        await future

    # -- introspection -------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def waiter_count(self) -> int:
        """Live (uncancelled) parked sleepers."""
        return sum(1 for _, _, fut in self._waiters if not fut.done())

    def next_due(self) -> float | None:
        """Due time of the earliest live waiter, or ``None``."""
        for due, _, fut in sorted(self._waiters)[:]:
            if not fut.done():
                return due
        return None

    # -- synchronous advancement --------------------------------------------
    def advance(self, seconds: float) -> int:
        """Move time forward by ``seconds``; returns waiters released."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        return self.advance_to(self._now + seconds)

    def advance_to(self, target: float) -> int:
        """Jump to ``target`` (no-op if in the past), releasing every
        waiter due on the way in due order.  Released tasks *resume* on
        the event loop's next pass, not inside this call -- callers in
        async context yield (``await clock.sleep(0)`` or similar) to let
        them run."""
        fired = 0
        while self._waiters and self._waiters[0][0] <= target:
            due, _, future = heapq.heappop(self._waiters)
            self._now = max(self._now, due)
            if not future.done():  # skip sleepers whose task was cancelled
                future.set_result(None)
                fired += 1
        self._now = max(self._now, target)
        self.fires += fired
        return fired

    # -- automatic advancement (the clock driver) ----------------------------
    async def _settle(self) -> bool:
        """Yield until every runnable task has parked.

        Returns True when the loop looks quiescent.  Each ``sleep(0)``
        requeues this coroutine behind everything currently runnable, so
        an empty ready queue right after resuming means nothing else can
        make progress without time moving.
        """
        loop = asyncio.get_running_loop()
        ready = getattr(loop, "_ready", None)  # stdlib loops expose this
        for _ in range(self._grace):
            await asyncio.sleep(0)
            if ready is not None and not ready:
                return True
        # unknown loop internals: a full grace of yields is our best signal
        return ready is None

    async def _drive(self) -> None:
        self._wake = asyncio.Event()
        try:
            while True:
                settled = await self._settle()
                if not settled:
                    continue  # new same-tick work appeared; let it run
                # drop waiters cancelled while parked
                while self._waiters and self._waiters[0][2].done():
                    heapq.heappop(self._waiters)
                if self._waiters:
                    due, _, future = heapq.heappop(self._waiters)
                    self._now = max(self._now, due)
                    future.set_result(None)
                    self.fires += 1
                else:
                    # nothing due: park until a new sleeper registers
                    self._wake.clear()
                    await self._wake.wait()
        finally:
            self._wake = None

    @asynccontextmanager
    async def driving(self):
        """Async context manager running the clock driver alongside the
        body, for virtual-time blocks inside an existing event loop."""
        driver = asyncio.ensure_future(self._drive())
        try:
            yield self
        finally:
            driver.cancel()
            try:
                await driver
            except asyncio.CancelledError:
                pass

    def run(self, main: Awaitable[T]) -> T:
        """``asyncio.run`` with the clock driver: execute ``main`` to
        completion, auto-advancing virtual time whenever every task is
        parked.  The entry point virtual-time tests use."""

        async def runner() -> T:
            async with self.driving():
                return await main

        return asyncio.run(runner())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VirtualClock(now={self._now:.6f}, "
            f"waiters={self.waiter_count})"
        )
