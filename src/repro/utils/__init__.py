"""Shared utilities: seeded RNG plumbing, timing helpers, logging."""

from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.timing import AmortizedStats, Timer, WelfordAccumulator

__all__ = [
    "AmortizedStats",
    "RngMixin",
    "Timer",
    "WelfordAccumulator",
    "new_rng",
    "spawn_rngs",
]
