"""Shared utilities: seeded RNG plumbing, clocks, timing helpers, logging."""

from repro.utils.clock import WALL_CLOCK, Clock, VirtualClock, WallClock
from repro.utils.rng import RngMixin, new_rng, spawn_rngs
from repro.utils.timing import AmortizedStats, Timer, WelfordAccumulator

__all__ = [
    "AmortizedStats",
    "Clock",
    "RngMixin",
    "Timer",
    "VirtualClock",
    "WALL_CLOCK",
    "WallClock",
    "WelfordAccumulator",
    "new_rng",
    "spawn_rngs",
]
