"""Seeded random-number-generator plumbing.

Every stochastic component in the library takes either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps
experiments reproducible: a single root seed fans out deterministically to
workers, self-play episodes and weight initialisers via
:func:`spawn_rngs`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "new_rng",
    "spawn_rngs",
    "seed_ladder",
    "keyed_rng",
    "rng_state",
    "restore_rng_state",
    "RngMixin",
]


def new_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so callers can share
    a stream; anything else (``None`` or an int) seeds a fresh PCG64 stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators from *rng*.

    Uses :meth:`numpy.random.Generator.spawn` so the children are
    independent regardless of how the parent is consumed afterwards --
    important when parallel workers each own a stream.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return list(rng.spawn(n))


def seed_ladder(seed: int | None, n: int) -> list[np.random.Generator]:
    """The fixed per-episode seed ladder: *n* generators spawned from one
    root ``SeedSequence``.

    Episode *i*'s stream depends only on ``(seed, i)`` -- never on which
    worker (process or thread) happens to run the episode -- which is what
    lets a multiprocess farm round reproduce a serial loop transcript-
    for-transcript.  Passing the same ``(seed, n)`` always returns an
    identical ladder.
    """
    return spawn_rngs(new_rng(seed), n)


def keyed_rng(seed: int | None, *key: int) -> np.random.Generator:
    """A generator addressed by ``(seed, *key)`` instead of ladder position.

    :func:`seed_ladder` hands episode *i* the *i*-th rung of one root
    ``SeedSequence`` -- perfect when the consumer count is known up
    front.  Retrying RPC paths are not like that: requests are unbounded
    and interleave nondeterministically under wall clocks, so the
    cluster router keys each request's backoff-jitter stream directly by
    its request index.  Same ``(seed, *key)``, same stream, regardless
    of what any other request did in between -- the ladder's determinism
    contract without materialising a ladder.
    """
    return np.random.default_rng(
        np.random.SeedSequence([0 if seed is None else seed, *key])
    )


def _jsonify(value):
    """numpy scalars/arrays inside a bit-generator state -> plain JSON."""
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": value.dtype.str}
    if isinstance(value, np.integer):
        return int(value)
    return value


def _unjsonify(value):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value["dtype"])
        return {k: _unjsonify(v) for k, v in value.items()}
    return value


def rng_state(rng: np.random.Generator) -> dict:
    """Capture a generator's exact stream position as a JSON-able dict.

    This is what makes crash-resume *bit-identical* rather than merely
    same-seed: a checkpoint taken mid-run must restart every stochastic
    consumer (sampling temperature draws, replay-buffer batches,
    Dirichlet noise) at the exact draw it would have made next, not at
    the ladder's rung zero.
    """
    return _jsonify(rng.bit_generator.state)


def restore_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a stream position captured by :func:`rng_state` in place.

    Raises ``ValueError`` when *state* belongs to a different
    bit-generator type than *rng* carries (numpy validates the
    ``bit_generator`` field).
    """
    restored = _unjsonify(state)
    if restored.get("bit_generator") != type(rng.bit_generator).__name__:
        raise ValueError(
            f"rng state is for {restored.get('bit_generator')!r}, generator "
            f"uses {type(rng.bit_generator).__name__!r}"
        )
    rng.bit_generator.state = restored


class RngMixin:
    """Mixin giving a class a lazily-created ``self.rng`` attribute."""

    _rng: np.random.Generator | None = None

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = new_rng()
        return self._rng

    @rng.setter
    def rng(self, value: int | np.random.Generator | None) -> None:
        self._rng = new_rng(value)
