"""Minimal structured logging used across the library.

We avoid the stdlib ``logging`` global configuration foot-guns: components
get a :class:`RunLog` they can append structured records to; benchmarks and
examples render them as tables.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Any, TextIO

__all__ = ["RunLog", "format_table"]


@dataclass
class RunLog:
    """Append-only structured event log.

    Each record is a plain dict; ``echo`` mirrors records to a stream as
    single-line JSON for live progress watching.
    """

    records: list[dict[str, Any]] = field(default_factory=list)
    echo: bool = False
    stream: TextIO = field(default=sys.stderr, repr=False)

    def log(self, event: str, **fields: Any) -> dict[str, Any]:
        rec = {"event": event, **fields}
        self.records.append(rec)
        if self.echo:
            self.stream.write(json.dumps(rec, default=str) + "\n")
        return rec

    def select(self, event: str) -> list[dict[str, Any]]:
        return [r for r in self.records if r["event"] == event]

    def last(self, event: str) -> dict[str, Any] | None:
        for rec in reversed(self.records):
            if rec["event"] == event:
                return rec
        return None


def format_table(rows: list[dict[str, Any]], columns: list[str] | None = None) -> str:
    """Render dict rows as a monospace table (benchmark output helper)."""
    if not rows:
        return "(empty)"
    cols = columns or list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)]
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(row[i].ljust(widths[i]) for i in range(len(cols))) for row in cells)
    return f"{header}\n{sep}\n{body}"


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)
