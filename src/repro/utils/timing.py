"""Timing and streaming-statistics helpers used by profiling and benchmarks."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

__all__ = ["Timer", "WelfordAccumulator", "AmortizedStats"]


class Timer:
    """Context-manager wall-clock timer with nanosecond resolution.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: int | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed = (time.perf_counter_ns() - self._start) * 1e-9


class WelfordAccumulator:
    """Streaming mean/variance via Welford's algorithm.

    Numerically stable for long profiling runs where accumulating a sum of
    squares would lose precision.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        self.min = min(self.min, x)
        self.max = max(self.max, x)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "WelfordAccumulator") -> "WelfordAccumulator":
        """Combine two accumulators (parallel-merge form of Welford)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self._mean, self._m2, self.count = other._mean, other._m2, other.count
            self.min, self.max = other.min, other.max
            return self
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self


@dataclass
class AmortizedStats:
    """Per-operation amortized latency record used by the profiler.

    The paper reports *amortized per-worker-iteration latency*: total time
    for a move divided by the number of playouts (Section 5.3).  This class
    carries that convention around explicitly so callers never divide by
    the wrong denominator.
    """

    total_time: float = 0.0
    operations: int = 0
    per_op: WelfordAccumulator = field(default_factory=WelfordAccumulator)

    def record(self, elapsed: float, ops: int = 1) -> None:
        if ops <= 0:
            raise ValueError("ops must be positive")
        self.total_time += elapsed
        self.operations += ops
        self.per_op.add(elapsed / ops)

    @property
    def amortized(self) -> float:
        """Total time divided by operation count (the paper's metric)."""
        return self.total_time / self.operations if self.operations else 0.0
