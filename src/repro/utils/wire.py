"""JSON-safe encoding of numpy state dicts for control-plane RPCs.

The cluster's zero-downtime weight rollout ships full network state
dicts over the gateway's newline-JSON wire (``load_weights`` op), and
the storage layer's checkpoints persist the same encoding to disk.
JSON has no binary type, so arrays travel as base64 of their
C-contiguous bytes plus dtype/shape -- exact round trip, no float
formatting loss, and the decoded arrays are fresh writable copies
(``load_state_dict`` copies again anyway, but nothing downstream may
alias the transport buffer).

Every encoded array carries a BLAKE2b digest of its raw bytes, so a
corrupted payload -- a bit flip on disk, a mangled RPC -- fails loudly
as a typed ``ValueError`` instead of loading silently-wrong weights.
Legacy digest-free payloads (pre-digest peers, old checkpoints) still
decode: the check only runs when the field is present.
"""

from __future__ import annotations

import base64
from hashlib import blake2b

import numpy as np

__all__ = ["encode_array", "decode_array", "encode_state", "decode_state"]

_DIGEST_SIZE = 16


def _digest(raw: bytes) -> str:
    return blake2b(raw, digest_size=_DIGEST_SIZE).hexdigest()


def encode_array(array: np.ndarray) -> dict:
    """Encode one array as ``{dtype, shape, data, digest}``."""
    arr = np.ascontiguousarray(array)
    raw = arr.tobytes()
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "data": base64.b64encode(raw).decode("ascii"),
        "digest": _digest(raw),
    }


def decode_array(entry: dict, name: str = "<array>") -> np.ndarray:
    """Invert :func:`encode_array`; raises ``ValueError`` on malformed
    entries or digest mismatch (the serving boundary turns that into a
    400 reply, the storage layer into a failed checkpoint load)."""
    try:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(int(d) for d in entry["shape"])
        raw = base64.b64decode(entry["data"])
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed weight entry {name!r}: {exc}") from exc
    expected = entry.get("digest")
    if expected is not None and _digest(raw) != expected:
        raise ValueError(
            f"weight {name!r}: payload digest mismatch (corrupt transport "
            f"or storage)"
        )
    array = np.frombuffer(raw, dtype=dtype)
    if array.size != int(np.prod(shape, dtype=np.int64)):
        raise ValueError(
            f"weight {name!r}: payload holds {array.size} elements, "
            f"shape {shape} wants {int(np.prod(shape, dtype=np.int64))}"
        )
    return array.reshape(shape).copy()


def encode_state(state: dict[str, np.ndarray]) -> dict[str, dict]:
    """Encode a ``state_dict`` into a JSON-serialisable mapping."""
    return {name: encode_array(array) for name, array in state.items()}


def decode_state(encoded: dict[str, dict]) -> dict[str, np.ndarray]:
    """Invert :func:`encode_state`; raises ``ValueError`` on malformed or
    corrupt entries (see :func:`decode_array`)."""
    return {name: decode_array(entry, name) for name, entry in encoded.items()}
