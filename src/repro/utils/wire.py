"""JSON-safe encoding of numpy state dicts for control-plane RPCs.

The cluster's zero-downtime weight rollout ships full network state
dicts over the gateway's newline-JSON wire (``load_weights`` op).  JSON
has no binary type, so arrays travel as base64 of their C-contiguous
bytes plus dtype/shape -- exact round trip, no float formatting loss,
and the decoded arrays are fresh writable copies (``load_state_dict``
copies again anyway, but nothing downstream may alias the transport
buffer).
"""

from __future__ import annotations

import base64

import numpy as np

__all__ = ["encode_state", "decode_state"]


def encode_state(state: dict[str, np.ndarray]) -> dict[str, dict]:
    """Encode a ``state_dict`` into a JSON-serialisable mapping."""
    encoded = {}
    for name, array in state.items():
        arr = np.ascontiguousarray(array)
        encoded[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "data": base64.b64encode(arr.tobytes()).decode("ascii"),
        }
    return encoded


def decode_state(encoded: dict[str, dict]) -> dict[str, np.ndarray]:
    """Invert :func:`encode_state`; raises ``ValueError`` on malformed
    entries (the serving boundary turns that into a 400 reply)."""
    state = {}
    for name, entry in encoded.items():
        try:
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(d) for d in entry["shape"])
            raw = base64.b64decode(entry["data"])
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed weight entry {name!r}: {exc}") from exc
        array = np.frombuffer(raw, dtype=dtype)
        if array.size != int(np.prod(shape, dtype=np.int64)):
            raise ValueError(
                f"weight {name!r}: payload holds {array.size} elements, "
                f"shape {shape} wants {int(np.prod(shape, dtype=np.int64))}"
            )
        state[name] = array.reshape(shape).copy()
    return state
