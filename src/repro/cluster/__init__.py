"""Fault-tolerant sharded serving: router, health, draining, rollout.

The serving gateway (:mod:`repro.serving`) is one process with one
session table; this package scales it out and makes it survivable.  A
:class:`ShardRouter` consistent-hashes sessions across N shard
gateways, watches them with an active :class:`HealthMonitor`, retries
transport faults under a deterministic :class:`BackoffPolicy` with
idempotent request ids, re-admits sessions off dead or draining shards
via the gateway ``restore`` op, and rolls new network weights across
the fleet one drain-light window at a time (:func:`roll_weights`)
without dropping a session.

Everything runs on the injected :class:`~repro.utils.clock.Clock`, so
the whole failure repertoire -- crashes, lost replies, retry storms,
rolling upgrades -- replays deterministically under
:class:`~repro.utils.clock.VirtualClock` in the chaos suite.
"""

from repro.cluster.health import BackoffPolicy, HealthMonitor
from repro.cluster.rollout import RolloutReport, ShardRollout, roll_weights
from repro.cluster.router import HashRing, SessionRecord, ShardRouter, ShardSlot
from repro.cluster.shard import LocalShard, ProcessShard, ShardLink, ShardSpec
from repro.cluster.stats import ClusterStats, ShardSnapshot

__all__ = [
    "BackoffPolicy",
    "ClusterStats",
    "HashRing",
    "HealthMonitor",
    "LocalShard",
    "ProcessShard",
    "RolloutReport",
    "SessionRecord",
    "ShardLink",
    "ShardRollout",
    "ShardRouter",
    "ShardSlot",
    "ShardSnapshot",
    "ShardSpec",
    "roll_weights",
]
