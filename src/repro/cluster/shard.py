"""Shard processes and the links the router talks to them through.

A *shard* is one complete :class:`~repro.serving.service.MatchGateway`
-- sessions, admission control, idle GC, its own evaluator and cache
(shared-nothing) -- addressed by the router through a uniform
:class:`ShardLink` surface with two implementations:

- :class:`ProcessShard` -- production: a forked OS process running a
  :class:`~repro.serving.service.GatewayServer` on a kernel-assigned TCP
  port, reached through pooled hardened
  :class:`~repro.serving.service.GatewayClient` connections.  Dies for
  real (SIGTERM/SIGKILL, the CI smoke's chaos move) and is respawned by
  the router with a bumped epoch.
- :class:`LocalShard` -- the deterministic stand-in: the same gateway
  driven through its server's dispatch path in-process, with every
  payload round-tripped through JSON so anything that would not survive
  the real wire fails here too.  Runs on a
  :class:`~repro.utils.clock.VirtualClock`, supports scripted kills and
  reply-loss injection, and is what the chaos suite replays timelines
  on.

Both links raise :class:`~repro.serving.service.GatewayConnectionError`
for transport failures, so the router's retry/backoff path is transport
agnostic.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing as mp
import os
from dataclasses import dataclass, field, replace
from typing import Protocol, runtime_checkable

from repro.serving.service import (
    GatewayClient,
    GatewayConnectionError,
    GatewayServer,
    MatchGateway,
    build_game,
)
from repro.utils.clock import Clock

__all__ = ["ShardSpec", "ShardLink", "LocalShard", "ProcessShard"]


@dataclass(frozen=True)
class ShardSpec:
    """Everything needed to (re)build one shard, in plain values.

    Respawning a shard replays its spec with a bumped epoch -- the
    successor is configured identically to the corpse, so supervision
    never drifts the fleet's shape.
    """

    shard_id: int
    game: str = "tictactoe"
    size: int | None = None
    evaluator: str = "uniform"  # "uniform" | "network"
    seed: int = 0
    deadline_ms: float = 200.0
    num_playouts: int = 16
    workers: int = 2
    max_inflight: int | None = None
    max_sessions: int = 512
    idle_timeout_s: float = 300.0
    gc_interval_s: float = 5.0
    tree_backend: str | None = None
    inference_backend: str = "fused"
    rpc_timeout_s: float = 5.0
    host: str = "127.0.0.1"
    #: cross-session evaluation bus: ``None`` lets the gateway pick its
    #: default (on for the thread backend every shard uses); each shard
    #: gets its *own* bus -- shared-nothing extends to the batch queue
    evalbus: bool | None = None
    bus_linger_ms: float = 2.0
    #: base directory for durable per-session move journals (``None``
    #: journals nothing).  Each shard *life* writes under its own
    #: ``shard-{id}/epoch-{e}`` subdirectory: a respawned successor
    #: starts a fresh log (its predecessor's sessions were failed over),
    #: while the corpse's log stays readable for the router's
    #: journal-preferring failover.
    journal_dir: str | None = None
    journal_fsync: str = "batched"
    extra: dict = field(default_factory=dict, compare=False)

    def with_shard_id(self, shard_id: int) -> "ShardSpec":
        return replace(self, shard_id=shard_id)

    def journal_path(self, epoch: int) -> str | None:
        """This shard life's journal directory (``None`` = journaling off)."""
        if self.journal_dir is None:
            return None
        return os.path.join(
            self.journal_dir, f"shard-{self.shard_id}", f"epoch-{epoch}"
        )

    def build_gateway(
        self,
        *,
        clock: Clock | None = None,
        executor=None,
        epoch: int = 0,
    ) -> MatchGateway:
        """Construct the shard's gateway (evaluator included)."""
        game = build_game(self.game, self.size)
        template = None
        if self.evaluator == "network":
            from repro.games import build_network_for
            from repro.mcts.evaluation import NetworkEvaluator

            net = build_network_for(game, channels=(8, 16, 16), rng=self.seed)
            net.set_inference_backend(self.inference_backend)
            evaluator = NetworkEvaluator(net)
            template = game  # the net only fits this game's shape
        elif self.evaluator == "uniform":
            from repro.mcts.evaluation import UniformEvaluator

            evaluator = UniformEvaluator()
        else:
            raise ValueError(f"unknown evaluator {self.evaluator!r}")
        return MatchGateway(
            evaluator,
            backend="thread",
            workers=self.workers,
            deadline_ms=self.deadline_ms,
            num_playouts=self.num_playouts,
            max_inflight=self.max_inflight,
            max_sessions=self.max_sessions,
            idle_timeout_s=self.idle_timeout_s,
            gc_interval_s=self.gc_interval_s,
            game_template=template,
            tree_backend=self.tree_backend,
            # the seed ladder rung is per (shard, epoch): a respawned
            # shard must not replay its predecessor's rng stream
            seed=self.seed + 7919 * self.shard_id + epoch,
            clock=clock,
            executor=executor,
            evalbus=self.evalbus,
            bus_linger_ms=self.bus_linger_ms,
            shard_id=f"shard-{self.shard_id}",
            journal_dir=self.journal_path(epoch),
            journal_fsync=self.journal_fsync,
        )


@runtime_checkable
class ShardLink(Protocol):
    """What the router requires of a shard, transport aside."""

    shard_id: int
    epoch: int

    @property
    def alive(self) -> bool:  # pragma: no cover - protocol
        ...

    async def start(self) -> None:  # pragma: no cover - protocol
        ...

    async def request(
        self, payload: dict, *, timeout_s: float | None = None
    ) -> dict:  # pragma: no cover - protocol
        ...

    async def aclose(self) -> None:  # pragma: no cover - protocol
        ...


class LocalShard:
    """In-process shard for deterministic virtual-time cluster scenarios.

    The gateway is real and so is the server dispatch; only the TCP hop
    is elided.  Payload and reply each round-trip through ``json`` so
    wire-unsafe values fail exactly as they would on the socket.

    Fault injection:

    - :meth:`kill` -- the shard "loses power": every later request
      raises :class:`GatewayConnectionError` and the gateway's state
      (all its live sessions) is unreachable, exactly like a crashed
      process.
    - :meth:`drop_replies` -- the next *n* requests execute server-side
      but the reply is lost in transit; the client sees a connection
      error and cannot know the request applied.  The double-apply
      protection tests are built on this.
    """

    def __init__(
        self,
        spec: ShardSpec,
        *,
        clock: Clock | None = None,
        executor=None,
        epoch: int = 0,
    ) -> None:
        self.spec = spec
        self.shard_id = spec.shard_id
        self.epoch = epoch
        self.clock = clock
        self.gateway = spec.build_gateway(
            clock=clock, executor=executor, epoch=epoch
        )
        self._server = GatewayServer(self.gateway)  # dispatch only, no bind
        self._alive = False
        self._drop_next = 0
        self.requests_served = 0

    @property
    def alive(self) -> bool:
        return self._alive

    async def start(self) -> None:
        await self.gateway.start()
        self._alive = True

    def kill(self) -> None:
        """Simulated crash: state survives nowhere the router can reach."""
        self._alive = False

    def drop_replies(self, n: int = 1) -> None:
        """Lose the next *n* replies in transit (request still applies)."""
        self._drop_next += int(n)

    async def request(
        self, payload: dict, *, timeout_s: float | None = None
    ) -> dict:
        if not self._alive:
            raise GatewayConnectionError(
                f"shard {self.shard_id} (epoch {self.epoch}) is down"
            )
        line = json.dumps(payload).encode() + b"\n"
        reply = await self._server._dispatch(line)
        self.requests_served += 1
        if self._drop_next > 0:
            self._drop_next -= 1
            raise GatewayConnectionError(
                "reply lost in transit (injected fault)"
            )
        return json.loads(json.dumps(reply))

    async def aclose(self) -> None:
        self._alive = False
        await self.gateway.aclose()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LocalShard(id={self.shard_id}, epoch={self.epoch}, "
            f"alive={self._alive})"
        )


def _shard_main(spec: ShardSpec, conn) -> None:
    """Forked shard-process entry point: serve one gateway over TCP.

    Sends ``("ready", port)`` once bound, then serves until killed.
    SIGTERM is left at its default disposition -- shard death is the
    event the cluster is built to survive, not to intercept.
    """

    async def serve() -> None:
        gateway = spec.build_gateway()
        server = GatewayServer(gateway, spec.host, 0)
        host, port = await server.start()
        conn.send(("ready", host, port))
        conn.close()
        await server.serve_forever()

    asyncio.run(serve())


class ProcessShard:
    """A shard running as a forked OS process behind a TCP gateway.

    The router holds a small pool of hardened
    :class:`~repro.serving.service.GatewayClient` connections (one per
    concurrently in-flight request; a newline-JSON connection carries one
    request at a time).  Connections that see a transport error are
    discarded, not repooled -- the next request dials fresh, so a shard
    restart never leaves the pool poisoned with dead sockets.
    """

    def __init__(self, spec: ShardSpec, *, epoch: int = 0) -> None:
        self.spec = spec
        self.shard_id = spec.shard_id
        self.epoch = epoch
        self._ctx = mp.get_context("fork")
        self._proc: mp.process.BaseProcess | None = None
        self.host: str | None = None
        self.port: int | None = None
        self._pool: list[GatewayClient] = []
        self._closed = False

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    @property
    def pid(self) -> int | None:
        return self._proc.pid if self._proc is not None else None

    @property
    def sentinel(self):
        assert self._proc is not None, "shard not started"
        return self._proc.sentinel

    async def start(self) -> None:
        if self._closed:
            raise RuntimeError("shard is closed")
        parent, child = self._ctx.Pipe(duplex=False)
        self._proc = self._ctx.Process(
            target=_shard_main,
            args=(self.spec, child),
            name=f"cluster-shard-{self.shard_id}-e{self.epoch}",
            daemon=True,
        )
        self._proc.start()
        child.close()
        loop = asyncio.get_running_loop()
        # the child signals readiness over the pipe; poll it off-loop so
        # the router keeps serving while a respawned shard boots
        ready = await loop.run_in_executor(
            None, parent.poll, self.spec.rpc_timeout_s * 4
        )
        if not ready:
            parent.close()
            raise GatewayConnectionError(
                f"shard {self.shard_id} did not become ready"
            )
        try:
            msg = await loop.run_in_executor(None, parent.recv)
        except (EOFError, OSError) as exc:
            raise GatewayConnectionError(
                f"shard {self.shard_id} died during startup"
            ) from exc
        finally:
            parent.close()
        _, self.host, self.port = msg

    async def request(
        self, payload: dict, *, timeout_s: float | None = None
    ) -> dict:
        if self._closed:
            raise GatewayConnectionError(f"shard {self.shard_id} is closed")
        if self.host is None:
            raise GatewayConnectionError(f"shard {self.shard_id} not started")
        client = (
            self._pool.pop()
            if self._pool
            else await GatewayClient.connect(
                self.host, self.port, timeout_s=self.spec.rpc_timeout_s
            )
        )
        try:
            reply = await client.request(payload, timeout_s=timeout_s)
        except BaseException:
            await client.aclose()
            raise
        self._pool.append(client)
        return reply

    def terminate(self) -> None:
        """SIGTERM the shard process (the CI smoke's chaos move)."""
        if self._proc is not None and self._proc.is_alive():
            self._proc.terminate()

    def kill(self) -> None:
        if self._proc is not None and self._proc.is_alive():
            self._proc.kill()

    async def aclose(self) -> None:
        self._closed = True
        for client in self._pool:
            await client.aclose()
        self._pool.clear()
        if self._proc is not None:
            proc = self._proc
            proc.terminate()
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, proc.join, 2.0)
            if proc.is_alive():
                proc.kill()
                await loop.run_in_executor(None, proc.join, 1.0)
            self._proc = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessShard(id={self.shard_id}, epoch={self.epoch}, "
            f"pid={self.pid}, addr={self.host}:{self.port})"
        )
