"""Active health checking and retry backoff for the shard fleet.

Two pieces the router composes:

- :class:`BackoffPolicy` -- bounded exponential backoff whose jitter is
  *deterministic*: each logical operation derives its own rng stream via
  :func:`repro.utils.rng.keyed_rng` keyed by (cluster seed, session,
  move index), so a retried move's delay schedule depends only on its
  identity, never on how concurrent operations interleave.  Same seed,
  same faults => the same timeline, which is what lets the chaos suite
  compare two runs with ``==``.
- :class:`HealthMonitor` -- a single supervising task that pings every
  shard each interval on the injected :class:`~repro.utils.clock.Clock`,
  counts consecutive failures per shard, and declares a shard unhealthy
  (invoking the router's failover callback exactly once per incident)
  after ``threshold`` misses in a row.  One slow ping never marks a
  shard down; only a streak does.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Awaitable, Callable, Iterator, Sequence

from repro.utils.clock import Clock
from repro.utils.rng import keyed_rng

__all__ = ["BackoffPolicy", "HealthMonitor"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff with symmetric deterministic jitter.

    Attempt *k* (0-based) sleeps ``min(max_s, base_s * multiplier**k)``
    stretched by a uniform factor in ``[1 - jitter, 1 + jitter]`` drawn
    from the operation's keyed rng stream.  ``max_retries`` bounds the
    *retries*, not the attempts: an operation runs at most
    ``1 + max_retries`` times.
    """

    base_s: float = 0.05
    max_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.base_s <= 0 or self.max_s < self.base_s:
            raise ValueError("need 0 < base_s <= max_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def delay_s(self, attempt: int, rng) -> float:
        raw = min(self.max_s, self.base_s * self.multiplier**attempt)
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0))

    def delays(self, seed: int | None, *key: int) -> Iterator[float]:
        """The full delay schedule for one logical operation.

        The stream is keyed by the operation's identity, so interleaving
        with other operations cannot perturb it.
        """
        rng = keyed_rng(seed, *key)
        for attempt in range(self.max_retries):
            yield self.delay_s(attempt, rng)


class HealthMonitor:
    """Periodic ping sweep over the fleet with streak-based verdicts.

    The monitor knows nothing about shards beyond three callables the
    router wires in: ``targets()`` lists the slots to probe, ``ping(s)``
    probes one (raising on failure), and ``on_unhealthy(s)`` fires once
    when a slot crosses the consecutive-failure threshold.  Slots carry
    their own ``consecutive_failures`` / ``healthy`` fields so a
    respawned shard re-enters the sweep with a clean slate.
    """

    def __init__(
        self,
        *,
        clock: Clock,
        targets: Callable[[], Sequence],
        ping: Callable[[object], Awaitable[None]],
        on_unhealthy: Callable[[object], Awaitable[None]],
        interval_s: float = 1.0,
        threshold: int = 3,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.clock = clock
        self.interval_s = interval_s
        self.threshold = threshold
        self._targets = targets
        self._ping = ping
        self._on_unhealthy = on_unhealthy
        self._task: asyncio.Task | None = None
        self._stopped = False
        self.sweeps = 0

    def start(self) -> None:
        assert self._task is None, "monitor already started"
        self._stopped = False
        self._task = asyncio.create_task(self._run(), name="cluster-health")

    async def aclose(self) -> None:
        self._stopped = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _run(self) -> None:
        while not self._stopped:
            await self.clock.sleep(self.interval_s)
            if self._stopped:
                return
            await self.sweep()

    async def sweep(self) -> None:
        """One ping pass over the fleet (also callable directly in tests)."""
        slots = list(self._targets())
        if not slots:
            return
        # probe concurrently; gather keeps list order, so verdicts land
        # deterministically even under a virtual clock
        results = await asyncio.gather(
            *(self._probe(slot) for slot in slots), return_exceptions=True
        )
        self.sweeps += 1
        for slot, err in zip(slots, results):
            if isinstance(err, asyncio.CancelledError):
                raise err
            if err is None:
                slot.consecutive_failures = 0
                continue
            slot.consecutive_failures += 1
            if slot.healthy and slot.consecutive_failures >= self.threshold:
                slot.healthy = False
                await self._on_unhealthy(slot)

    async def _probe(self, slot) -> None:
        await self._ping(slot)
