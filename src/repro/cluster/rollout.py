"""Zero-downtime versioned weight rollout across the shard fleet.

:func:`roll_weights` walks the fleet one shard at a time; at every
instant at most one shard is closed to *new* sessions and every shard
keeps serving the moves it already holds:

1. ``drain_light`` -- the shard stops admitting sessions (the router's
   ring already routes new placements around draining shards, so the
   expected admission-rejection count is exactly zero -- the rollout
   gate);
2. ``load_weights`` -- the wire-encoded state dict lands and bumps the
   network's ``weights_version`` (the PR-4 seam); the compiled fused
   plan is *not* rebuilt here -- the next evaluation lazily recompiles
   from the new weights, an atomic per-process swap with no pause;
3. ``version`` -- readback confirms the shard reports the expected
   version;
4. ``resume`` -- the shard re-opens for admissions before the next
   shard begins.

The returned :class:`RolloutReport` carries per-shard before/after
versions and the admission rejections observed inside each shard's
drain window; :attr:`RolloutReport.consistent` is the all-shards-agree
check the CLI and benchmarks gate on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.service import GatewayConnectionError, GatewayError
from repro.utils.wire import encode_state

__all__ = ["ShardRollout", "RolloutReport", "roll_weights"]


@dataclass(frozen=True)
class ShardRollout:
    """One shard's passage through the rollout."""

    shard_id: int
    old_version: int | None
    new_version: int | None
    plan_version: int | None
    rejections: int        # admissions bounced during this shard's window
    duration_s: float
    skipped: bool = False  # shard was down; it picks the weights up never
                           # -- its respawn rebuilds from spec, flagged by
                           # the report's consistency check

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "old_version": self.old_version,
            "new_version": self.new_version,
            "plan_version": self.plan_version,
            "rejections": self.rejections,
            "duration_s": round(self.duration_s, 6),
            "skipped": self.skipped,
        }


@dataclass(frozen=True)
class RolloutReport:
    steps: tuple[ShardRollout, ...]
    target_version: int | None

    @property
    def rejections(self) -> int:
        return sum(s.rejections for s in self.steps)

    @property
    def consistent(self) -> bool:
        """Every reachable shard landed on the same weight version."""
        versions = {s.new_version for s in self.steps if not s.skipped}
        return len(versions) == 1 and not any(s.skipped for s in self.steps)

    def as_dict(self) -> dict:
        return {
            "target_version": self.target_version,
            "rejections": self.rejections,
            "consistent": self.consistent,
            "steps": [s.as_dict() for s in self.steps],
        }


async def _shard_snapshot(router, slot) -> dict:
    reply = await router._rpc(
        slot, {"op": "stats"}, key=(slot.index, "rollout-stats")
    )
    if not reply.get("ok"):
        raise router._typed_error(reply)
    return reply["stats"]


async def roll_weights(router, state_dict: dict) -> RolloutReport:
    """Push *state_dict* to every shard, one drain-light window at a time.

    Raises :class:`GatewayError` if a shard rejects the payload (e.g. a
    weightless evaluator); a shard that is down is skipped and recorded,
    which makes the report inconsistent rather than silently partial.
    """
    encoded = encode_state(state_dict)
    steps: list[ShardRollout] = []
    target: int | None = None
    for slot in list(router._slots):
        t0 = router.clock.monotonic()
        if not slot.usable:
            steps.append(
                ShardRollout(
                    shard_id=slot.index,
                    old_version=slot.weights_version,
                    new_version=None,
                    plan_version=None,
                    rejections=0,
                    duration_s=0.0,
                    skipped=True,
                )
            )
            router._event("rollout_skip", f"shard {slot.index} is down")
            continue
        before = await _shard_snapshot(router, slot)
        slot.draining = True  # ring routes admissions around us first
        try:
            reply = await router._rpc(
                slot, {"op": "drain_light"}, key=(slot.index, "drain_light")
            )
            if not reply.get("ok"):
                raise router._typed_error(reply)
            reply = await router._rpc(
                slot,
                {"op": "load_weights", "state": encoded},
                key=(slot.index, "load_weights"),
            )
            if not reply.get("ok"):
                raise router._typed_error(reply)
            new_version = int(reply["weights_version"])
            reply = await router._rpc(
                slot, {"op": "version"}, key=(slot.index, "rollout-verify")
            )
            if not reply.get("ok"):
                raise router._typed_error(reply)
            if reply.get("weights_version") != new_version:
                raise GatewayError(
                    f"shard {slot.index} readback disagrees: loaded "
                    f"v{new_version}, reports v{reply.get('weights_version')}"
                )
            plan_version = reply.get("plan_version")
            after = await _shard_snapshot(router, slot)
            await router.resume_shard(slot.index)
        except GatewayConnectionError:
            # the shard died mid-window; health/failover owns it now
            slot.draining = False
            steps.append(
                ShardRollout(
                    shard_id=slot.index,
                    old_version=slot.weights_version,
                    new_version=None,
                    plan_version=None,
                    rejections=0,
                    duration_s=router.clock.monotonic() - t0,
                    skipped=True,
                )
            )
            router._event(
                "rollout_skip", f"shard {slot.index} died mid-window"
            )
            continue
        rejections = int(after.get("drain_rejected", 0)) - int(
            before.get("drain_rejected", 0)
        )
        old_version = before.get("weights_version")
        slot.weights_version = new_version
        target = new_version
        steps.append(
            ShardRollout(
                shard_id=slot.index,
                old_version=old_version,
                new_version=new_version,
                plan_version=plan_version,
                rejections=rejections,
                duration_s=router.clock.monotonic() - t0,
            )
        )
        router._rollout_rejections += rejections
        router._event(
            "rollout_shard",
            f"shard {slot.index}: v{old_version} -> v{new_version} "
            f"({rejections} rejections in window)",
        )
    router._rollouts += 1
    report = RolloutReport(steps=tuple(steps), target_version=target)
    router._event(
        "rollout_done",
        f"target v{target}, rejections={report.rejections}, "
        f"consistent={report.consistent}",
    )
    return report
