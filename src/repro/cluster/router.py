"""The cluster front door: consistent-hash placement with failover.

:class:`ShardRouter` owns a fleet of shard links and presents the same
logical surface as one :class:`~repro.serving.service.MatchGateway` --
``create_session`` / ``play_move`` / ``resign`` -- while underneath it:

- places sessions on shards by consistent hashing (:class:`HashRing`,
  blake2b with virtual nodes), so adding or losing a shard relocates
  only the sessions that must move;
- keeps a *shadow action history* per session (it proxies every move,
  so it sees every confirmed action), which is what makes crash
  recovery possible: when a shard dies, its sessions are replayed onto
  survivors through the gateway's ``restore`` op -- game state
  survives, search trees are rebuilt warm from the replayed line;
- retries transport failures against the same shard under
  :class:`~repro.cluster.health.BackoffPolicy` with a *stable request
  id per logical move*, so a retry after a lost reply deduplicates
  server-side instead of double-applying;
- runs a :class:`~repro.cluster.health.HealthMonitor` that turns ping
  streak failures into failover (re-admit sessions on survivors) plus
  an epoch-fenced respawn under a bounded restart budget -- the farm's
  supervision moves (:mod:`repro.farm.supervision`) applied to whole
  gateways.

Every mutation of the fleet appends to :attr:`ShardRouter.events`, a
wall-of-history the chaos suite compares across identically-seeded runs
with ``==``.
"""

from __future__ import annotations

import asyncio
import bisect
import os
from hashlib import blake2b
from typing import Callable, Iterator

from repro.cluster.health import BackoffPolicy, HealthMonitor
from repro.cluster.shard import LocalShard, ProcessShard, ShardLink, ShardSpec
from repro.cluster.stats import ClusterStats, ShardSnapshot
from repro.farm.supervision import EpochFence, RetryBudget
from repro.serving.engine import LatencyTracker
from repro.serving.service import (
    GatewayConnectionError,
    GatewayError,
    GatewayOverloaded,
    InvalidMove,
    SessionNotFound,
)
from repro.storage import SessionJournal, SessionReplay, replay_sessions
from repro.utils.clock import WALL_CLOCK, Clock

__all__ = ["HashRing", "ShardRouter", "ShardSlot", "SessionRecord"]


def _hash64(text: str) -> int:
    return int.from_bytes(blake2b(text.encode(), digest_size=8).digest(), "big")


class HashRing:
    """Consistent hashing over shard indices with virtual nodes.

    Each shard contributes ``vnodes`` points on a 64-bit blake2b ring;
    a key lands on the first point clockwise from its own hash whose
    shard is *eligible*.  Because ineligible shards are skipped at
    lookup time (not removed from the ring), a shard coming back after
    a respawn reclaims exactly its old arcs -- placement is a pure
    function of (key, eligible set).
    """

    def __init__(self, shard_ids: list[int], vnodes: int = 64) -> None:
        if not shard_ids:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        points: list[tuple[int, int]] = []
        for sid in shard_ids:
            for v in range(vnodes):
                points.append((_hash64(f"shard-{sid}:vnode-{v}"), sid))
        points.sort()
        self._points = points

    def preference(self, key: object, eligible: set[int]) -> Iterator[int]:
        """Eligible shards in ring order from *key*'s hash (no repeats)."""
        if not eligible:
            return
        pts = self._points
        start = bisect.bisect_right(pts, (_hash64(str(key)), -1))
        seen: set[int] = set()
        for step in range(len(pts)):
            _, sid = pts[(start + step) % len(pts)]
            if sid in seen:
                continue
            seen.add(sid)
            if sid in eligible:
                yield sid

    def lookup(self, key: object, eligible: set[int]) -> int:
        for sid in self.preference(key, eligible):
            return sid
        raise LookupError("no eligible shard for placement")


class SessionRecord:
    """Router-side view of one logical session.

    ``history`` is the shadow action log (every *confirmed* action, in
    order) -- the replay line used to restore the session after a shard
    loss.  ``move_seq`` numbers logical moves and doubles as the stable
    request id, so a retried move carries the same rid no matter how
    many transport attempts or relocations it takes.
    """

    __slots__ = (
        "session_id",
        "game",
        "size",
        "shard_index",
        "remote_id",
        "history",
        "move_seq",
        "status",
        "winner",
        "readmissions",
        "recovered_replies",
    )

    def __init__(
        self, session_id: int, game: str, size: int | None
    ) -> None:
        self.session_id = session_id
        self.game = game
        self.size = size
        self.shard_index: int = -1
        self.remote_id: int = 0
        self.history: list[int] = []
        self.move_seq = 0
        self.status = "active"  # active | completed | resigned | lost
        self.winner: int | None = None
        self.readmissions = 0
        #: replies recovered from a dead shard's journal for moves that
        #: applied but whose confirmation never reached the router, keyed
        #: by move_seq -- the client's retry is answered from here instead
        #: of re-applying the move on the survivor
        self.recovered_replies: dict[int, dict] = {}


class ShardSlot:
    """One supervised position in the fleet: link + fence + budget.

    The *slot* is permanent; the *link* behind it is replaced on every
    respawn with a bumped epoch, so anything still referencing the
    corpse (an in-flight RPC, a stale health verdict) is recognisably
    from a previous life.
    """

    def __init__(
        self, index: int, spec: ShardSpec, clock: Clock, restart_limit: int
    ) -> None:
        self.index = index
        self.spec = spec
        self.fence = EpochFence()
        self.restart_budget = RetryBudget(restart_limit)
        self.link: ShardLink | None = None
        self.healthy = False  # becomes True once started
        self.draining = False
        self.consecutive_failures = 0
        self.restarts = 0
        self.weights_version: int | None = None
        self.latency = LatencyTracker(clock=clock)
        self.sessions: set[int] = set()
        self.deduped_base = 0  # dedupes from dead epochs (shard counters reset)
        self.last_deduped = 0
        self.journal_errors = 0  # current life's shard-side journal IO errors

    @property
    def alive(self) -> bool:
        return self.link is not None and self.link.alive

    @property
    def usable(self) -> bool:
        return self.healthy and not self.draining and self.alive


class ShardRouter:
    """Fault-tolerant session router over N gateway shards."""

    def __init__(
        self,
        specs: list[ShardSpec],
        shard_factory: Callable[[ShardSpec, int], ShardLink],
        *,
        clock: Clock | None = None,
        seed: int = 0,
        backoff: BackoffPolicy | None = None,
        rpc_timeout_s: float | None = None,
        health_interval_s: float = 1.0,
        health_timeout_s: float = 0.25,
        failure_threshold: int = 3,
        restart_limit: int = 2,
        respawn: bool = True,
        vnodes: int = 64,
        journal_dir: str | None = None,
        journal_fsync: str = "batched",
    ) -> None:
        if not specs:
            raise ValueError("need at least one shard spec")
        if len({s.shard_id for s in specs}) != len(specs):
            raise ValueError("shard ids must be unique")
        self.clock: Clock = WALL_CLOCK if clock is None else clock
        self.seed = seed
        self.backoff = BackoffPolicy() if backoff is None else backoff
        self.rpc_timeout_s = rpc_timeout_s
        self.respawn = respawn
        self._factory = shard_factory
        self._slots = [
            ShardSlot(i, spec, self.clock, restart_limit)
            for i, spec in enumerate(specs)
        ]
        self.ring = HashRing([s.index for s in self._slots], vnodes=vnodes)
        self.monitor = HealthMonitor(
            clock=self.clock,
            targets=lambda: [s for s in self._slots if s.healthy],
            ping=self._ping_slot,
            on_unhealthy=self._on_unhealthy,
            interval_s=health_interval_s,
            threshold=failure_threshold,
        )
        self._health_timeout_s = health_timeout_s
        self.latency = LatencyTracker(clock=self.clock)
        self.events: list[tuple[float, str, str]] = []

        self._records: dict[int, SessionRecord] = {}
        self._next_sid = 1
        self._started = False
        self._closed = False

        # fleet-lifetime counters (ClusterStats)
        self._admitted = 0
        self._completed = 0
        self._resigned = 0
        self._lost = 0
        self._rejected = 0
        self._drained = 0
        self._readmitted = 0
        self._relocation_failures = 0
        self._moves = 0
        self._move_retries = 0
        self._rpc_failures = 0
        self._restarts = 0
        self._rollouts = 0
        self._rollout_rejections = 0
        self._sessions_recovered = 0
        self._journal_preferred = 0
        self._journal_replies_recovered = 0

        # the router's own placement journal: which sessions exist and
        # their shadow histories, so a full router restart can re-adopt
        # the fleet's live sessions (defaults to the shards' base journal
        # directory so one --journal-dir flag covers both layers)
        if journal_dir is None:
            journal_dir = specs[0].journal_dir
        self._journal: SessionJournal | None = None
        if journal_dir is not None:
            self._journal = SessionJournal(
                os.path.join(journal_dir, "router"), fsync=journal_fsync
            )

    # -- construction helpers -------------------------------------------------
    @classmethod
    def local(
        cls,
        num_shards: int,
        base_spec: ShardSpec | None = None,
        *,
        clock: Clock | None = None,
        executor=None,
        **kwargs,
    ) -> "ShardRouter":
        """A fleet of in-process :class:`LocalShard`\\ s (deterministic
        chaos testing under a virtual clock)."""
        base = base_spec or ShardSpec(shard_id=0)
        specs = [base.with_shard_id(i) for i in range(num_shards)]

        def factory(spec: ShardSpec, epoch: int) -> LocalShard:
            return LocalShard(spec, clock=clock, executor=executor, epoch=epoch)

        return cls(specs, factory, clock=clock, **kwargs)

    @classmethod
    def processes(
        cls,
        num_shards: int,
        base_spec: ShardSpec | None = None,
        **kwargs,
    ) -> "ShardRouter":
        """A fleet of forked :class:`ProcessShard`\\ s behind real TCP."""
        base = base_spec or ShardSpec(shard_id=0)
        specs = [base.with_shard_id(i) for i in range(num_shards)]

        def factory(spec: ShardSpec, epoch: int) -> ProcessShard:
            return ProcessShard(spec, epoch=epoch)

        return cls(specs, factory, **kwargs)

    # -- lifecycle ------------------------------------------------------------
    def _event(self, kind: str, detail: str) -> None:
        self.events.append((round(self.clock.monotonic(), 6), kind, detail))

    async def start(self) -> "ShardRouter":
        assert not self._started, "router already started"
        self._started = True
        await asyncio.gather(*(self._spawn(slot) for slot in self._slots))
        self.monitor.start()
        return self

    async def recover_sessions(self) -> int:
        """Re-adopt sessions journaled by a previous router life.

        Call after :meth:`start` when the router was restarted over an
        existing ``--journal-dir``: every session the placement journal
        records as open is re-admitted (same cluster id, shadow history
        replayed onto whatever shard the ring now prefers) and counts
        into ``sessions_recovered``.  Returns the number re-adopted; a
        journal-less router returns 0.
        """
        if self._journal is None:
            return 0
        replays, _raw = replay_sessions(self._journal.directory)
        recovered = 0
        for sid in sorted(replays):
            rep = replays[sid]
            if not rep.open or rep.game is None or sid in self._records:
                continue
            record = SessionRecord(sid, rep.game, rep.size)
            record.history = list(rep.history)
            # any per-session-monotone value works for rid freshness: the
            # restored placement gets a new remote id, so old rids cannot
            # collide in any shard's reply cache
            record.move_seq = len(rep.history)
            self._next_sid = max(self._next_sid, sid + 1)
            self._records[sid] = record
            self._admitted += 1
            try:
                await self._place(record, record.history, planned=False)
            except GatewayError:
                continue  # loss accounted by _place
            if record.status == "active":
                recovered += 1
                self._sessions_recovered += 1
        self._event(
            "router_recovered", f"{recovered} sessions re-adopted from journal"
        )
        # compact: one open record per surviving session
        live = [
            SessionReplay(
                sid=r.session_id, game=r.game, size=r.size,
                history=list(r.history),
            )
            for r in self._records.values()
            if r.status == "active"
        ]
        self._journal.snapshot(live)
        return recovered

    async def _spawn(self, slot: ShardSlot) -> None:
        epoch = slot.fence.current
        link = self._factory(slot.spec, epoch)
        link.epoch = epoch
        await link.start()
        slot.link = link
        slot.healthy = True
        slot.consecutive_failures = 0
        try:
            reply = await link.request(
                {"op": "version"}, timeout_s=self._health_timeout_s
            )
            if reply.get("ok"):
                slot.weights_version = reply.get("weights_version")
        except GatewayConnectionError:
            pass  # health loop will judge it
        self._event("spawn", f"shard {slot.index} epoch {epoch}")

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        await self.monitor.aclose()
        await asyncio.gather(
            *(slot.link.aclose() for slot in self._slots if slot.link),
            return_exceptions=True,
        )
        if self._journal is not None:
            self._journal.close()

    # -- health / supervision -------------------------------------------------
    async def _ping_slot(self, slot: ShardSlot) -> None:
        link = slot.link
        if link is None or not link.alive:
            raise GatewayConnectionError(f"shard {slot.index} has no live link")
        reply = await link.request(
            {"op": "ping"}, timeout_s=self._health_timeout_s
        )
        if not reply.get("ok"):
            raise GatewayConnectionError(
                f"shard {slot.index} ping rejected: {reply.get('error')}"
            )

    async def _on_unhealthy(self, slot: ShardSlot) -> None:
        """Health verdict: fail the shard over, then try to respawn it."""
        epoch = slot.fence.current
        self._event(
            "shard_down",
            f"shard {slot.index} epoch {epoch} "
            f"({slot.consecutive_failures} consecutive ping failures)",
        )
        dead = slot.link
        dead_epoch: int | None = None
        if dead is not None:
            # the corpse's journal lives under its epoch; capture before
            # the fence bump renumbers the slot
            dead_epoch = dead.epoch
            # fence first: the corpse's epoch is now stale everywhere
            slot.fence.bump()
            # the successor's dedupe counter restarts at zero; bank the
            # corpse's total so the fleet sum stays monotonic
            slot.deduped_base += slot.last_deduped
            slot.last_deduped = 0
            await dead.aclose()
            slot.link = None
        # move its sessions to survivors before spending time respawning
        await self._failover_sessions(slot, dead_epoch)
        if self.respawn and not self._closed:
            if slot.restart_budget.spend():
                slot.restarts += 1
                self._restarts += 1
                try:
                    await self._spawn(slot)
                except GatewayConnectionError as exc:
                    slot.healthy = False
                    self._event(
                        "respawn_failed", f"shard {slot.index}: {exc}"
                    )
            else:
                self._event(
                    "restart_budget_exhausted",
                    f"shard {slot.index} stays down after "
                    f"{slot.restart_budget.limit} restarts",
                )

    def _read_dead_journal(
        self, slot: ShardSlot, dead_epoch: int | None
    ) -> dict[int, SessionReplay]:
        """The dead shard life's journal, keyed by *remote* session id.

        Returns ``{}`` when journaling is off or the log is unreadable --
        failover then falls back to the in-memory shadow history, exactly
        the pre-journal behaviour.
        """
        if dead_epoch is None:
            return {}
        path = slot.spec.journal_path(dead_epoch)
        if path is None:
            return {}
        replays, _raw = replay_sessions(path)
        return replays

    async def _failover_sessions(
        self, slot: ShardSlot, dead_epoch: int | None = None
    ) -> None:
        journal = self._read_dead_journal(slot, dead_epoch)
        doomed = sorted(slot.sessions)
        slot.sessions.clear()
        for sid in doomed:
            record = self._records.get(sid)
            if record is None or record.status != "active":
                continue
            self._adopt_journal(record, journal.get(record.remote_id))
            try:
                await self._place(record, record.history, planned=False)
            except GatewayError:
                continue  # _place already accounted the loss

    def _adopt_journal(
        self, record: SessionRecord, rep: SessionReplay | None
    ) -> None:
        """Prefer the dead shard's journaled history over the shadow.

        The journal saw every move the shard *applied*; the shadow only
        saw the ones whose replies made it back.  When the journal is
        longer, the extra plies are applied-but-unconfirmed moves: adopt
        the longer line (so the survivor replays the true position) and
        stash each such move's journaled reply under its rid's move_seq,
        WITHOUT advancing ``move_seq`` -- the client's retry of that seq
        is then answered from :attr:`SessionRecord.recovered_replies`
        instead of double-applying the move on the survivor.
        """
        if rep is None or not rep.open:
            return
        if len(rep.history) <= len(record.history):
            return
        if rep.history[: len(record.history)] != record.history:
            return  # journal disagrees with confirmed prefix: distrust it
        shadow_plies = len(record.history)
        record.history = list(rep.history)
        self._journal_preferred += 1
        self._event(
            "journal_preferred",
            f"session {record.session_id}: journal has "
            f"{len(rep.history)} plies vs shadow {shadow_plies}",
        )
        prefix = f"{record.session_id}."
        for move in rep.moves:
            rid = move.get("rid")
            if not isinstance(rid, str) or not rid.startswith(prefix):
                continue
            try:
                seq = int(rid[len(prefix):])
            except ValueError:
                continue
            if seq >= record.move_seq:
                record.recovered_replies[seq] = {
                    "engine_action": move.get("engine"),
                    "done": bool(move.get("done")),
                    "winner": move.get("winner"),
                }
        if self._journal is not None:
            # supersede the router journal's view with the adopted line
            self._journal.open_session(
                record.session_id, record.game, record.size, record.history
            )

    # -- placement / relocation -----------------------------------------------
    def _eligible(self) -> set[int]:
        return {s.index for s in self._slots if s.usable}

    async def _place(
        self,
        record: SessionRecord,
        actions: list[int],
        *,
        planned: bool,
    ) -> None:
        """(Re-)admit *record* on a surviving shard by replaying *actions*.

        Walks the ring's preference order so every surviving shard gets
        a chance before the session is declared lost.
        """
        sid = record.session_id
        for index in self.ring.preference(sid, self._eligible()):
            slot = self._slots[index]
            try:
                reply = await self._rpc(
                    slot,
                    {
                        "op": "restore",
                        "game": record.game,
                        "size": record.size,
                        "actions": list(actions),
                    },
                    key=(sid, "restore", record.readmissions),
                )
            except GatewayConnectionError:
                continue
            if not reply.get("ok"):
                # e.g. shard full (503): try the next survivor
                continue
            if reply.get("done"):
                # replayed line is already terminal: the game ended with
                # the move whose reply the crash swallowed
                record.status = "completed"
                record.winner = reply.get("winner")
                record.shard_index = -1
                self._completed += 1
                self._event(
                    "relocate_terminal",
                    f"session {sid} finished during restore on shard {index}",
                )
                if self._journal is not None:
                    self._journal.close_session(sid, "completed")
                return
            record.shard_index = index
            record.remote_id = int(reply["session"])
            record.readmissions += 1
            slot.sessions.add(sid)
            if planned:
                self._drained += 1
            else:
                self._readmitted += 1
            self._event(
                "relocate",
                f"session {sid} -> shard {index} "
                f"({'drain' if planned else 'failover'}, "
                f"{len(actions)} plies replayed)",
            )
            return
        record.status = "lost"
        record.shard_index = -1
        self._lost += 1
        self._relocation_failures += 1
        self._event("session_lost", f"session {sid}: no surviving shard")
        if self._journal is not None:
            self._journal.close_session(sid, "lost")
        raise GatewayConnectionError(
            f"session {sid} could not be re-admitted: no surviving shard"
        )

    # -- hardened RPC ---------------------------------------------------------
    async def _rpc(
        self, slot: ShardSlot, payload: dict, *, key: tuple
    ) -> dict:
        """One logical RPC with bounded, deterministically-jittered retries.

        Retries stay on the *same* shard: transient transport faults
        (lost reply, torn line) heal here, and the stable rid in
        *payload* makes a healed retry deduplicate server-side.  A shard
        that is actually down (no live link) fails fast so the caller
        can relocate instead of burning the backoff schedule.
        """
        delays = self.backoff.delays(self.seed, *(_hash64(str(k)) for k in key))
        while True:
            link = slot.link
            if link is None or not link.alive:
                self._rpc_failures += 1
                raise GatewayConnectionError(
                    f"shard {slot.index} is down (epoch {slot.fence.current})"
                )
            try:
                return await link.request(
                    payload, timeout_s=self.rpc_timeout_s
                )
            except GatewayConnectionError:
                self._rpc_failures += 1
                delay = next(delays, None)
                if delay is None or not link.alive:
                    raise
                self._move_retries += 1
                await self.clock.sleep(delay)

    # -- serving surface ------------------------------------------------------
    def _require(self, session_id: int) -> SessionRecord:
        record = self._records.get(session_id)
        if record is None or record.status != "active":
            raise SessionNotFound(f"no active cluster session {session_id}")
        return record

    async def create_session(
        self, game: str = "tictactoe", size: int | None = None
    ) -> int:
        """Open a session somewhere in the fleet; returns its cluster id
        (stable across relocations -- clients never see shard ids)."""
        if self._closed:
            raise GatewayError("router is closed")
        sid = self._next_sid
        self._next_sid += 1
        record = SessionRecord(sid, game, size)
        last_error: GatewayError | None = None
        for index in self.ring.preference(sid, self._eligible()):
            slot = self._slots[index]
            try:
                reply = await self._rpc(
                    slot,
                    {"op": "new", "game": game, "size": size},
                    key=(sid, "new"),
                )
            except GatewayConnectionError as exc:
                last_error = exc
                continue
            if not reply.get("ok"):
                last_error = self._typed_error(reply)
                if reply.get("code") == 503:
                    continue  # spill over to the next shard on the ring
                break
            record.shard_index = index
            record.remote_id = int(reply["session"])
            self._records[sid] = record
            slot.sessions.add(sid)
            self._admitted += 1
            self._event("admit", f"session {sid} -> shard {index}")
            if self._journal is not None:
                self._journal.open_session(sid, game, size, [])
            return sid
        self._rejected += 1
        raise last_error or GatewayOverloaded("no healthy shard available")

    def _answer_recovered(self, record: SessionRecord, recovered: dict) -> dict:
        """Answer a retried move from a dead shard's journaled reply.

        The move already applied on the shard that died (its actions are
        in the adopted history); re-sending it to the survivor would
        double-apply.  The reply is synthesized from the journal record
        -- no search runs, no history is appended.
        """
        sid = record.session_id
        record.move_seq += 1
        self._journal_replies_recovered += 1
        self._moves += 1
        done = bool(recovered.get("done"))
        if done and record.status == "active":
            record.status = "completed"
            record.winner = recovered.get("winner")
            if 0 <= record.shard_index < len(self._slots):
                self._slots[record.shard_index].sessions.discard(sid)
            record.shard_index = -1
            self._completed += 1
            if self._journal is not None:
                self._journal.close_session(sid, "completed")
        self._event(
            "reply_recovered",
            f"session {sid} move {record.move_seq - 1} answered from journal",
        )
        return {
            "ok": True,
            "session": sid,
            "engine_action": recovered.get("engine_action"),
            "done": done,
            "winner": recovered.get("winner"),
            "recovered": True,
        }

    async def play_move(
        self,
        session_id: int,
        action: int | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """Serve one move, relocating the session if its shard died.

        The logical move keeps one request id across every transport
        retry *and* every relocation, so it applies exactly once on
        whichever shard finally serves it.
        """
        record = self._records.get(session_id)
        if record is not None and record.recovered_replies:
            recovered = record.recovered_replies.pop(record.move_seq, None)
            if recovered is not None:
                return self._answer_recovered(record, recovered)
        record = self._require(session_id)
        rid = f"{session_id}.{record.move_seq}"
        t0 = self.clock.monotonic()
        for _ in range(len(self._slots) + 1):
            if record.recovered_replies:
                # a failover adopted the dead shard's journal while this
                # move was mid-retry: the move already applied there, so
                # answer from the journaled reply instead of re-sending
                recovered = record.recovered_replies.pop(record.move_seq, None)
                if recovered is not None:
                    return self._answer_recovered(record, recovered)
            if record.shard_index < 0 or not self._slots[record.shard_index].usable:
                await self._place(record, record.history, planned=False)
            slot = self._slots[record.shard_index]
            payload = {
                "op": "move",
                "session": record.remote_id,
                "action": action,
                "rid": rid,
            }
            if deadline_ms is not None:
                payload["deadline_ms"] = deadline_ms
            try:
                reply = await self._rpc(
                    slot, payload, key=(session_id, record.move_seq)
                )
            except GatewayConnectionError:
                continue  # loop re-places on a survivor and retries
            if not reply.get("ok"):
                if reply.get("code") == 404:
                    # the shard lost the session under us (idle-expired or
                    # a restore we did not perform) -- replay it in place
                    await self._place(record, record.history, planned=False)
                    continue
                raise self._typed_error(reply)
            # success: extend the shadow history with confirmed actions
            applied: list[int] = []
            if action is not None:
                applied.append(int(action))
            engine_action = reply.get("engine_action")
            if engine_action is not None:
                applied.append(int(engine_action))
            record.history.extend(applied)
            record.move_seq += 1
            elapsed = self.clock.monotonic() - t0
            slot.latency.record(elapsed)
            self.latency.record(elapsed)
            self._moves += 1
            done = bool(reply.get("done"))
            if self._journal is not None:
                self._journal.move(
                    session_id, rid, applied, engine_action, done,
                    reply.get("winner"),
                )
                if done:
                    self._journal.close_session(session_id, "completed")
            if done:
                record.status = "completed"
                record.winner = reply.get("winner")
                slot.sessions.discard(session_id)
                record.shard_index = -1
                self._completed += 1
            reply["session"] = session_id  # cluster id, not the shard's
            return reply
        record.status = "lost"
        record.shard_index = -1
        self._lost += 1
        self._event("session_lost", f"session {session_id}: retries exhausted")
        if self._journal is not None:
            self._journal.close_session(session_id, "lost")
        raise GatewayConnectionError(
            f"session {session_id}: no shard could serve move {rid}"
        )

    async def resign(self, session_id: int) -> str:
        """Close a session.  Router-side disposition is authoritative: a
        dead shard's copy is unreachable and will never act again, so
        the record resigns even when the RPC cannot be delivered."""
        record = self._require(session_id)
        if 0 <= record.shard_index < len(self._slots):
            slot = self._slots[record.shard_index]
            slot.sessions.discard(session_id)
            if slot.usable:
                try:
                    await self._rpc(
                        slot,
                        {"op": "resign", "session": record.remote_id},
                        key=(session_id, "resign"),
                    )
                except GatewayConnectionError:
                    pass
        record.status = "resigned"
        record.shard_index = -1
        self._resigned += 1
        if self._journal is not None:
            self._journal.close_session(session_id, "resigned")
        return "resigned"

    # -- draining (used directly and by rollout) ------------------------------
    async def drain_shard(self, index: int, *, resume: bool = False) -> int:
        """Gracefully drain shard *index*: stop admissions, let in-flight
        moves finish, re-admit its sessions on the rest of the fleet.

        Returns the number of sessions relocated.  With ``resume=True``
        the shard re-opens for admissions afterwards (planned
        maintenance); rollout leaves it draining until the weight swap
        lands.
        """
        slot = self._slots[index]
        slot.draining = True
        self._event("drain_begin", f"shard {index}")
        reply = await self._rpc(slot, {"op": "drain"}, key=(index, "drain"))
        if not reply.get("ok"):
            raise self._typed_error(reply)
        exported = reply.get("drained", [])
        by_remote = {
            record.remote_id: record
            for record in self._records.values()
            if record.status == "active" and record.shard_index == index
        }
        moved = 0
        for item in exported:
            record = by_remote.pop(int(item["session"]), None)
            if record is None:
                continue  # a session the router never placed (orphan)
            # the export is authoritative: it includes moves whose replies
            # were lost and never retried, which the shadow cannot know
            record.history = [int(a) for a in item.get("actions", [])]
            record.shard_index = -1
            if self._journal is not None:
                self._journal.open_session(
                    record.session_id, record.game, record.size, record.history
                )
            try:
                await self._place(record, record.history, planned=True)
                moved += 1
            except GatewayError:
                continue  # loss already accounted by _place
        slot.sessions.clear()
        self._event("drain_done", f"shard {index}: {moved} sessions moved")
        if resume:
            await self.resume_shard(index)
        return moved

    async def resume_shard(self, index: int) -> None:
        slot = self._slots[index]
        reply = await self._rpc(slot, {"op": "resume"}, key=(index, "resume"))
        if not reply.get("ok"):
            raise self._typed_error(reply)
        slot.draining = False
        self._event("resume", f"shard {index}")

    # -- faults (test/ops surface) --------------------------------------------
    def kill_shard(self, index: int) -> None:
        """Hard-kill a shard's link (chaos move).  Detection and failover
        happen through the normal health/RPC paths, not here."""
        slot = self._slots[index]
        link = slot.link
        if link is not None and hasattr(link, "kill"):
            link.kill()
        self._event("kill", f"shard {index} epoch {slot.fence.current}")

    # -- telemetry ------------------------------------------------------------
    def _typed_error(self, reply: dict) -> GatewayError:
        code = reply.get("code", 400)
        message = str(reply.get("error", "gateway error"))
        cls = {
            404: SessionNotFound,
            422: InvalidMove,
            502: GatewayConnectionError,
            503: GatewayOverloaded,
        }.get(code, GatewayError)
        return cls(message)

    async def refresh_shard_stats(self) -> None:
        """Pull per-shard counters the router cannot observe (dedupes,
        weight versions) from every live shard."""
        for slot in self._slots:
            if not slot.alive:
                continue
            try:
                reply = await slot.link.request(
                    {"op": "stats"}, timeout_s=self._health_timeout_s
                )
            except GatewayConnectionError:
                continue
            if not reply.get("ok"):
                continue
            stats = reply.get("stats", {})
            slot.last_deduped = int(stats.get("deduped_replies", 0))
            slot.weights_version = stats.get("weights_version")
            slot.journal_errors = int(stats.get("journal_errors", 0))

    def stats(self) -> ClusterStats:
        active = sum(
            1 for r in self._records.values() if r.status == "active"
        )
        snapshots = tuple(
            ShardSnapshot(
                shard_id=slot.index,
                epoch=slot.fence.current,
                healthy=slot.healthy,
                draining=slot.draining,
                alive=slot.alive,
                sessions=len(slot.sessions),
                restarts=slot.restarts,
                consecutive_failures=slot.consecutive_failures,
                weights_version=slot.weights_version,
                latency_p50_ms=slot.latency.percentile(50) * 1e3,
                latency_p99_ms=slot.latency.percentile(99) * 1e3,
            )
            for slot in self._slots
        )
        return ClusterStats(
            shards_total=len(self._slots),
            shards_healthy=sum(1 for s in self._slots if s.usable),
            sessions_admitted=self._admitted,
            sessions_active=active,
            sessions_completed=self._completed,
            sessions_resigned=self._resigned,
            sessions_lost=self._lost,
            sessions_rejected=self._rejected,
            sessions_drained=self._drained,
            sessions_readmitted=self._readmitted,
            relocation_failures=self._relocation_failures,
            moves_served=self._moves,
            move_retries=self._move_retries,
            rpc_failures=self._rpc_failures,
            deduped_replies=sum(
                s.deduped_base + s.last_deduped for s in self._slots
            ),
            shard_restarts=self._restarts,
            rollouts_completed=self._rollouts,
            rollout_rejections=self._rollout_rejections,
            latency_p50_ms=self.latency.percentile(50) * 1e3,
            latency_p95_ms=self.latency.percentile(95) * 1e3,
            latency_p99_ms=self.latency.percentile(99) * 1e3,
            latency_mean_ms=self.latency.mean * 1e3,
            sessions_recovered=self._sessions_recovered,
            journal_preferred=self._journal_preferred,
            journal_replies_recovered=self._journal_replies_recovered,
            journal_errors=sum(s.journal_errors for s in self._slots)
            + (self._journal.io_errors if self._journal is not None else 0),
            shards=snapshots,
        )
