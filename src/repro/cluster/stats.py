"""Cluster-level serving telemetry with exact session accounting.

The single gateway's :class:`~repro.serving.service.GatewayStats` counts
what one process did; :class:`ClusterStats` answers the fleet question
the chaos suite gates on: *where did every admitted session end up?*
The router maintains disposition-exclusive counters -- each admitted
session is, at any quiescent instant, in exactly one of {active,
completed, resigned, lost} -- plus relocation counters (``drained`` for
planned moves, ``readmitted`` for crash recoveries) that tally *events*,
not sessions, so a session surviving two shard deaths counts twice in
``readmitted`` and still exactly once in its final disposition.

:meth:`ClusterStats.check_accounting` asserts the identity; the chaos
tests call it after every scripted failure timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ShardSnapshot", "ClusterStats"]


@dataclass(frozen=True)
class ShardSnapshot:
    """One shard's health and serving state as the router sees it."""

    shard_id: int
    epoch: int
    healthy: bool
    draining: bool
    alive: bool
    sessions: int          # router-side records currently placed here
    restarts: int
    consecutive_failures: int
    weights_version: int | None
    latency_p50_ms: float
    latency_p99_ms: float

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "epoch": self.epoch,
            "healthy": self.healthy,
            "draining": self.draining,
            "alive": self.alive,
            "sessions": self.sessions,
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "weights_version": self.weights_version,
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
        }


@dataclass(frozen=True)
class ClusterStats:
    """Fleet-lifetime counters rolled up by the router.

    Session dispositions are exclusive and exhaustive::

        admitted == active + completed + resigned + lost

    ``drained`` / ``readmitted`` count relocation *events* (planned /
    after crash); ``relocation_failures`` counts relocations that could
    not find a surviving shard or whose restore RPC failed -- every such
    failure puts its session into ``lost``, the number the chaos gate
    pins at zero.
    """

    shards_total: int
    shards_healthy: int
    sessions_admitted: int
    sessions_active: int
    sessions_completed: int
    sessions_resigned: int
    sessions_lost: int
    sessions_rejected: int
    sessions_drained: int
    sessions_readmitted: int
    relocation_failures: int
    moves_served: int
    move_retries: int
    rpc_failures: int
    deduped_replies: int
    shard_restarts: int
    rollouts_completed: int
    rollout_rejections: int
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    # durable-state counters (defaults keep journal-less fleets unchanged)
    #: sessions re-adopted from the router's placement journal after a
    #: full router restart
    sessions_recovered: int = 0
    #: failovers that adopted a dead shard's on-disk journal history over
    #: the router's in-memory shadow (the journal knew more)
    journal_preferred: int = 0
    #: retried moves answered from a dead shard's journaled reply instead
    #: of being re-applied
    journal_replies_recovered: int = 0
    #: shard-side journal IO errors observed via stats refresh
    journal_errors: int = 0
    shards: tuple[ShardSnapshot, ...] = field(default=())

    def check_accounting(self) -> None:
        """Raise ``AssertionError`` unless every admitted session has
        exactly one disposition (the chaos suite's core invariant)."""
        total = (
            self.sessions_active
            + self.sessions_completed
            + self.sessions_resigned
            + self.sessions_lost
        )
        assert total == self.sessions_admitted, (
            f"session accounting leak: admitted={self.sessions_admitted} "
            f"!= active={self.sessions_active} + "
            f"completed={self.sessions_completed} + "
            f"resigned={self.sessions_resigned} + lost={self.sessions_lost}"
        )

    def as_dict(self) -> dict:
        return {
            "shards_total": self.shards_total,
            "shards_healthy": self.shards_healthy,
            "sessions_admitted": self.sessions_admitted,
            "sessions_active": self.sessions_active,
            "sessions_completed": self.sessions_completed,
            "sessions_resigned": self.sessions_resigned,
            "sessions_lost": self.sessions_lost,
            "sessions_rejected": self.sessions_rejected,
            "sessions_drained": self.sessions_drained,
            "sessions_readmitted": self.sessions_readmitted,
            "relocation_failures": self.relocation_failures,
            "moves_served": self.moves_served,
            "move_retries": self.move_retries,
            "rpc_failures": self.rpc_failures,
            "deduped_replies": self.deduped_replies,
            "shard_restarts": self.shard_restarts,
            "rollouts_completed": self.rollouts_completed,
            "rollout_rejections": self.rollout_rejections,
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p95_ms": round(self.latency_p95_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
            "latency_mean_ms": round(self.latency_mean_ms, 3),
            "sessions_recovered": self.sessions_recovered,
            "journal_preferred": self.journal_preferred,
            "journal_replies_recovered": self.journal_replies_recovered,
            "journal_errors": self.journal_errors,
            "shards": [s.as_dict() for s in self.shards],
        }
