"""repro: Adaptive-parallel DNN-guided MCTS (SC 2023 reproduction).

Reproduction of "Accelerating Deep Neural Network guided MCTS using
Adaptive Parallelism" (Meng, Wang, Zu, Prasanna -- SC 2023).

Subpackages
-----------
- :mod:`repro.nn`        -- from-scratch NumPy DNN framework (the paper's
  5-conv + 3-FC policy/value network, AlphaZero loss, optimisers).
- :mod:`repro.games`     -- Gomoku (the paper's benchmark), TicTacToe,
  Connect-Four, and the synthetic profiling game.
- :mod:`repro.mcts`      -- MCTS core: Equation-1 UCT, virtual loss,
  serial search.
- :mod:`repro.parallel`  -- real-thread shared-tree (Algorithm 2) and
  local-tree (Algorithm 3) schemes plus leaf-/root-parallel baselines.
- :mod:`repro.simulator` -- discrete-event hardware simulator executing the
  search schemes in virtual time on a parameterised CPU/GPU platform.
- :mod:`repro.perfmodel` -- performance models (Equations 3-6), design-time
  profiling, Algorithm-4 batch-size search, adaptive scheme selection.
- :mod:`repro.training`  -- Algorithm-1 training pipeline (self-play data
  collection + SGD).
- :mod:`repro.serving`   -- cross-game batched self-play engine (many
  concurrent games multiplexed through one accelerator queue with an LRU
  evaluation cache in front) and the async match-serving gateway:
  deadline-budgeted game sessions with admission control and latency
  percentiles over a newline-JSON TCP wire layer.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
