"""Deterministic virtual-time scenario harness for the match gateway.

The PR-5 soak suite buys its confidence with wall-clock seconds, which
caps it at dozens of sessions and zero simulated hours.  This module
drives the *real* :class:`~repro.serving.service.MatchGateway` -- real
sessions, real admission control, real idle GC, real searches -- on a
:class:`~repro.utils.clock.VirtualClock`, so a 10k-session hour of
traffic runs in seconds and, crucially, runs the *same way every time*:

- **Scripted load.**  :func:`generate_script` expands a
  :class:`ScenarioSpec` (seed, arrival window, deadline sweep,
  think-time and service-time ranges, slow-client fraction) into an
  explicit per-client schedule -- every arrival instant, think pause and
  modelled search duration is a number drawn once from the seed.  The
  run merely *performs* the script, so a failure replays from the spec
  alone.
- **Modelled search latency.**  Searches execute inline on the event
  loop thread (:class:`InlineExecutor`) -- no thread pool, no GIL races
  -- and :class:`SimulatedSearchExecutor` advances the virtual clock by
  the scripted duration as each search "runs", so latencies, deadline
  misses and idle-GC interleavings are exact functions of the script.
- **Transcripts.**  Every client event (admit, reject, move, expiry,
  completion) lands in one virtually-timestamped transcript;
  :meth:`ScenarioResult.require` turns an assertion failure into a
  replay bundle (spec JSON + summary) instead of a shrug.

The harness is product code, importable by tests (``tests/simtime``)
and benchmarks (the E17 admission sweep) alike.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import Executor, Future
from dataclasses import asdict, dataclass
from typing import Sequence

import numpy as np

from repro.mcts.evaluation import Evaluator, UniformEvaluator
from repro.serving.service import (
    GatewayConnectionError,
    GatewayOverloaded,
    GatewayStats,
    MatchGateway,
    SessionNotFound,
)
from repro.utils.clock import VirtualClock

__all__ = [
    "InlineExecutor",
    "SimulatedSearchExecutor",
    "MoveScript",
    "ClientScript",
    "FaultEvent",
    "ScenarioSpec",
    "ScenarioResult",
    "ScenarioRunner",
    "ClusterScenarioResult",
    "ClusterScenarioRunner",
    "generate_script",
]


class InlineExecutor(Executor):
    """An :class:`~concurrent.futures.Executor` that runs the callable
    synchronously in ``submit``.

    ``loop.run_in_executor(inline, fn)`` therefore completes ``fn``
    before the awaiting coroutine ever yields -- the whole search is one
    atomic step of the event loop.  That is what makes virtual-time
    scenarios deterministic: nothing real runs concurrently, so the
    clock driver can never advance time *during* a search.
    """

    def submit(self, fn, /, *args, **kwargs):
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - executor contract
            future.set_exception(exc)
        return future

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False):
        pass


class SimulatedSearchExecutor(InlineExecutor):
    """Inline executor that charges each search a scripted virtual cost.

    The client about to call ``play_move`` arms :meth:`expect` with the
    move's modelled duration; ``submit`` runs the real search inline and
    then advances the virtual clock by that amount, so the gateway's
    latency stamp *is* the modelled service time.  The path from
    ``expect`` to ``submit`` contains no await point (admission check,
    uncontended session lock and validation are all synchronous), so the
    single pending slot cannot be claimed by another client's move.

    Durations are charged *after* the search computes: the search itself
    sees the clock at request time, keeping its deadline arming aligned
    with what the gateway promised the client.
    """

    def __init__(
        self, clock: VirtualClock, default_duration_s: float = 0.0
    ) -> None:
        self.clock = clock
        self.default_duration_s = default_duration_s
        self._pending: float | None = None
        self.searches = 0

    def expect(self, duration_s: float) -> None:
        """Arm the virtual duration of the next submitted search."""
        self._pending = max(0.0, float(duration_s))

    def clear(self) -> None:
        """Disarm (the armed call was rejected before reaching submit)."""
        self._pending = None

    def submit(self, fn, /, *args, **kwargs):
        duration = self._pending
        self._pending = None
        if duration is None:
            duration = self.default_duration_s
        future = super().submit(fn, *args, **kwargs)
        self.searches += 1
        if duration > 0.0:
            self.clock.advance(duration)
        return future


# -- scripts ------------------------------------------------------------------
@dataclass(frozen=True)
class MoveScript:
    """One scripted move: how long the client thinks before asking and
    how long the modelled search takes (``stall_ms`` is the slow-client
    surcharge, kept separate so tests can reason about it)."""

    think_s: float
    service_ms: float
    stall_ms: float = 0.0

    @property
    def duration_ms(self) -> float:
        return self.service_ms + self.stall_ms


@dataclass(frozen=True)
class ClientScript:
    """One scripted client: arrival offset, per-move deadline, and the
    move-by-move schedule."""

    client_id: int
    arrival_s: float
    deadline_ms: float
    slow: bool
    moves: tuple[MoveScript, ...]


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault, fired at a virtual timestamp.

    Kinds:

    - ``"kill"`` -- hard-kill shard *shard* at ``at_s`` (power loss: its
      sessions become unreachable and must be re-admitted from shadow
      history);
    - ``"drain"`` -- gracefully drain shard *shard* (planned
      maintenance: in-flight moves finish, sessions relocate with the
      shard's authoritative export) and resume it afterwards;
    - ``"pause_swap"`` -- hold shard *shard* in its weight-swap
      drain-light window for ``duration_s`` virtual seconds (admissions
      bounce to the rest of the fleet, resident sessions keep playing),
      then resume -- the rollout's pause, scripted in isolation.
    """

    at_s: float
    kind: str  # "kill" | "drain" | "pause_swap"
    shard: int
    duration_s: float = 0.0


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything a scenario is, in numbers.  Same spec, same run.

    ``deadline_ms`` / ``think_time_s`` / ``service_time_ms`` /
    ``moves_per_session`` are inclusive uniform ranges sampled per
    client (deadline), per move (think/service) from ``seed``.

    ``shards`` and ``faults`` only matter to
    :class:`ClusterScenarioRunner`; the single-gateway
    :class:`ScenarioRunner` ignores them (defaults keep old specs
    bit-identical).
    """

    seed: int = 0
    sessions: int = 100
    arrival_window_s: float = 3600.0
    deadline_ms: tuple[float, float] = (10.0, 200.0)
    think_time_s: tuple[float, float] = (0.5, 8.0)
    service_time_ms: tuple[float, float] = (1.0, 8.0)
    moves_per_session: tuple[int, int] = (1, 3)
    slow_client_fraction: float = 0.01
    slow_stall_ms: float = 400.0
    retry_backoff_s: float = 0.25
    max_retries_per_move: int = 64
    game: str = "tictactoe"
    playouts: int = 2
    workers: int = 1
    max_inflight: int = 64
    max_sessions: int = 100_000
    idle_timeout_s: float = 300.0
    gc_interval_s: float = 60.0
    deadline_tolerance_ms: float = 0.0
    shards: int = 1
    faults: tuple[FaultEvent, ...] = ()
    # cross-session evaluation bus: ``False`` (the default) keeps every
    # pre-bus scenario transcript bit-identical; ``True`` turns the bus
    # on in the gateway under test and adds ``bus_linger_ms`` to each
    # scripted search duration (the scripted stand-in for leaves
    # lingering for cross-session batch-mates)
    evalbus: bool = False
    bus_linger_ms: float = 2.0

    def as_dict(self) -> dict:
        return asdict(self)


def generate_script(spec: ScenarioSpec) -> tuple[ClientScript, ...]:
    """Expand a spec into the explicit per-client schedule (pure:
    depends only on the spec)."""
    rng = np.random.default_rng(spec.seed)
    arrivals = np.sort(rng.uniform(0.0, spec.arrival_window_s, spec.sessions))
    deadlines = rng.uniform(*spec.deadline_ms, spec.sessions)
    slow = rng.random(spec.sessions) < spec.slow_client_fraction
    lo_m, hi_m = spec.moves_per_session
    move_counts = rng.integers(lo_m, hi_m + 1, spec.sessions)
    clients = []
    for cid in range(spec.sessions):
        moves = tuple(
            MoveScript(
                think_s=float(rng.uniform(*spec.think_time_s)),
                service_ms=float(rng.uniform(*spec.service_time_ms)),
                stall_ms=spec.slow_stall_ms if slow[cid] else 0.0,
            )
            for _ in range(int(move_counts[cid]))
        )
        clients.append(
            ClientScript(
                client_id=cid,
                arrival_s=float(arrivals[cid]),
                deadline_ms=float(deadlines[cid]),
                slow=bool(slow[cid]),
                moves=moves,
            )
        )
    return tuple(clients)


# -- results ------------------------------------------------------------------
#: transcript rows are plain tuples -- (virtual_t, client_id, kind, *detail)
#: -- so two runs compare with ``==`` and serialise with ``json.dumps``
Event = tuple


@dataclass
class ScenarioResult:
    """What one scenario run produced, with its replay handle attached."""

    spec: ScenarioSpec
    events: list[Event]
    stats: GatewayStats
    sim_seconds: float
    wall_seconds: float
    leftover_sessions: int
    searches: int

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e[2] == kind]

    @property
    def admitted(self) -> int:
        return len(self.of_kind("admit"))

    @property
    def moves(self) -> list[Event]:
        return self.of_kind("move")

    def latencies_ms(self) -> np.ndarray:
        return np.array([e[5] for e in self.moves], dtype=np.float64)

    def summary(self) -> dict:
        """The E17 benchmark row: admission + latency in *virtual* ms."""
        lats = self.latencies_ms()
        return {
            "sessions": self.spec.sessions,
            "admitted": self.admitted,
            "admission_rate": round(self.admitted / self.spec.sessions, 4)
            if self.spec.sessions
            else 0.0,
            "moves_served": len(self.moves),
            "rejected_creates": len(self.of_kind("admit_reject")),
            "rejected_moves": len(self.of_kind("move_reject")),
            "expired": len(self.of_kind("expired")),
            "deadline_misses": self.stats.deadline_misses,
            "latency_p50_virtual_ms": round(
                float(np.percentile(lats, 50)), 3
            )
            if lats.size
            else 0.0,
            "latency_p99_virtual_ms": round(
                float(np.percentile(lats, 99)), 3
            )
            if lats.size
            else 0.0,
            "sim_seconds": round(self.sim_seconds, 3),
            "wall_seconds": round(self.wall_seconds, 3),
        }

    def replay_bundle(self, clients: int | None = 20) -> str:
        """The failure dump: spec (the schedule's seed-complete source),
        run summary, and the first *clients* expanded schedules."""
        script = generate_script(self.spec)
        shown = script if clients is None else script[:clients]
        return json.dumps(
            {
                "replay": "ScenarioRunner(ScenarioSpec(**spec)).run()",
                "spec": self.spec.as_dict(),
                "summary": self.summary(),
                "script_head": [asdict(c) for c in shown],
                "script_clients_shown": len(shown),
            },
            indent=2,
        )

    def require(self, condition: bool, message: str) -> None:
        """Assert with a replay: on failure the error carries the spec
        that deterministically regenerates this exact schedule."""
        if not condition:
            raise AssertionError(
                f"{message}\n--- simtime replay schedule ---\n"
                f"{self.replay_bundle()}"
            )


# -- the runner ---------------------------------------------------------------
class ScenarioRunner:
    """Run one :class:`ScenarioSpec` against a real gateway in virtual time.

    >>> result = ScenarioRunner(ScenarioSpec(seed=7, sessions=50)).run()
    >>> result.require(result.admitted == 50, "admission shortfall")

    Construction expands the script; :meth:`run` builds a fresh
    ``VirtualClock`` + gateway each call, so running twice from one
    runner is two independent, identically-scripted simulations --
    the determinism check is literally ``run() == run()``.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        evaluator: Evaluator | None = None,
    ) -> None:
        self.spec = spec
        self.script: Sequence[ClientScript] = generate_script(spec)
        self._evaluator = evaluator

    def run(self) -> ScenarioResult:
        spec = self.spec
        clock = VirtualClock()
        executor = SimulatedSearchExecutor(clock)
        gateway = MatchGateway(
            self._evaluator or UniformEvaluator(),
            backend="thread",
            workers=spec.workers,
            deadline_ms=max(spec.deadline_ms),
            num_playouts=spec.playouts,
            max_inflight=spec.max_inflight,
            max_sessions=spec.max_sessions,
            idle_timeout_s=spec.idle_timeout_s,
            gc_interval_s=spec.gc_interval_s,
            deadline_tolerance_ms=spec.deadline_tolerance_ms,
            seed=spec.seed,
            clock=clock,
            executor=executor,
            evalbus=spec.evalbus,
            bus_linger_ms=spec.bus_linger_ms,
        )
        events: list[Event] = []
        wall0 = time.perf_counter()
        stats, leftover = clock.run(self._main(gateway, executor, clock, events))
        return ScenarioResult(
            spec=spec,
            events=events,
            stats=stats,
            sim_seconds=clock.now,
            wall_seconds=time.perf_counter() - wall0,
            leftover_sessions=leftover,
            searches=executor.searches,
        )

    async def _main(
        self,
        gateway: MatchGateway,
        executor: SimulatedSearchExecutor,
        clock: VirtualClock,
        events: list[Event],
    ) -> tuple[GatewayStats, int]:
        async with gateway:
            await asyncio.gather(
                *[
                    self._client(gateway, executor, clock, script, events)
                    for script in self.script
                ]
            )
            # one beyond-TTL sweep so sessions parked idle at script end
            # (resign raced expiry, slow stragglers) are accounted
            gateway.expire_idle(now=clock.now + self.spec.idle_timeout_s + 1.0)
            return gateway.stats(), gateway.session_count

    async def _client(
        self,
        gateway: MatchGateway,
        executor: SimulatedSearchExecutor,
        clock: VirtualClock,
        script: ClientScript,
        events: list[Event],
    ) -> None:
        spec = self.spec
        await clock.sleep(script.arrival_s)
        try:
            session = await gateway.create_session(spec.game)
        except GatewayOverloaded:
            events.append((clock.now, script.client_id, "admit_reject"))
            return
        events.append((clock.now, script.client_id, "admit", session))
        for move_idx, move in enumerate(script.moves):
            await clock.sleep(move.think_s)
            retries = 0
            while True:
                # with the bus on, every scripted search also pays the
                # linger the bus holds leaves for while courting
                # cross-session batch-mates
                executor.expect(
                    (
                        move.duration_ms
                        + (spec.bus_linger_ms if spec.evalbus else 0.0)
                    )
                    / 1e3
                )
                try:
                    reply = await gateway.play_move(
                        session, deadline_ms=script.deadline_ms
                    )
                except GatewayOverloaded:
                    executor.clear()
                    events.append(
                        (clock.now, script.client_id, "move_reject", move_idx)
                    )
                    retries += 1
                    if retries > spec.max_retries_per_move:
                        events.append(
                            (clock.now, script.client_id, "starved", move_idx)
                        )
                        return
                    await clock.sleep(spec.retry_backoff_s)
                    continue
                except SessionNotFound:
                    # idle GC expired the session mid-think (slow client)
                    executor.clear()
                    events.append((clock.now, script.client_id, "expired"))
                    return
                break
            missed = (
                reply.latency_ms
                > script.deadline_ms + spec.deadline_tolerance_ms
            )
            events.append(
                (
                    clock.now,
                    script.client_id,
                    "move",
                    session,
                    reply.move_number,
                    round(reply.latency_ms, 6),
                    int(missed),
                    retries,
                )
            )
            if reply.done:
                events.append(
                    (clock.now, script.client_id, "done", str(reply.status))
                )
                return
        try:
            await gateway.resign(session)
            events.append((clock.now, script.client_id, "resigned"))
        except SessionNotFound:
            events.append((clock.now, script.client_id, "expired"))


# -- cluster scenarios --------------------------------------------------------
@dataclass
class ClusterScenarioResult:
    """One cluster scenario run: client transcript + router transcript.

    Two identically-seeded runs must satisfy ``a.events == b.events and
    a.cluster_events == b.cluster_events`` -- the chaos suite's
    bit-identical-timeline gate.  ``stats`` is the router's
    :class:`~repro.cluster.stats.ClusterStats` (call
    ``stats.check_accounting()`` for the disposition invariant).
    """

    spec: ScenarioSpec
    events: list[Event]
    cluster_events: list[tuple]
    stats: object  # ClusterStats (typed loosely: repro.cluster imports us)
    sim_seconds: float
    wall_seconds: float
    searches: int

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self.events if e[2] == kind]

    def summary(self) -> dict:
        s = self.stats
        return {
            "shards": self.spec.shards,
            "faults": len(self.spec.faults),
            "admitted": s.sessions_admitted,
            "completed": s.sessions_completed,
            "resigned": s.sessions_resigned,
            "lost": s.sessions_lost,
            "rejected": s.sessions_rejected,
            "drained": s.sessions_drained,
            "readmitted": s.sessions_readmitted,
            "moves_served": s.moves_served,
            "move_retries": s.move_retries,
            "shard_restarts": s.shard_restarts,
            "latency_p99_virtual_ms": round(s.latency_p99_ms, 3),
            "sim_seconds": round(self.sim_seconds, 3),
            "wall_seconds": round(self.wall_seconds, 3),
        }

    def require(self, condition: bool, message: str) -> None:
        if not condition:
            raise AssertionError(
                f"{message}\n--- cluster replay spec ---\n"
                + json.dumps(
                    {
                        "replay": "ClusterScenarioRunner("
                        "ScenarioSpec(**spec)).run()",
                        "spec": self.spec.as_dict(),
                        "summary": self.summary(),
                        "cluster_events_tail": self.cluster_events[-30:],
                    },
                    indent=2,
                )
            )


class ClusterScenarioRunner:
    """Drive scripted load *and* scripted faults against a shard fleet.

    Same construction as :class:`ScenarioRunner` -- the spec is the
    whole run -- but the gateway is a
    :class:`~repro.cluster.router.ShardRouter` over ``spec.shards``
    in-process :class:`~repro.cluster.shard.LocalShard`\\ s, and a fault
    task performs ``spec.faults`` at their virtual timestamps while the
    clients play.  Clients are relocation-oblivious: they hold one
    cluster session id for the whole game and the router hides every
    shard death behind it.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        health_interval_s: float = 1.0,
        failure_threshold: int = 2,
        restart_limit: int = 2,
        respawn: bool = True,
    ) -> None:
        self.spec = spec
        self.script: Sequence[ClientScript] = generate_script(spec)
        self.health_interval_s = health_interval_s
        self.failure_threshold = failure_threshold
        self.restart_limit = restart_limit
        self.respawn = respawn

    def run(self) -> ClusterScenarioResult:
        from repro.cluster import BackoffPolicy, ShardRouter, ShardSpec

        spec = self.spec
        clock = VirtualClock()
        executor = SimulatedSearchExecutor(clock)
        base = ShardSpec(
            shard_id=0,
            game=spec.game,
            seed=spec.seed,
            deadline_ms=max(spec.deadline_ms),
            num_playouts=spec.playouts,
            workers=spec.workers,
            max_inflight=spec.max_inflight,
            max_sessions=spec.max_sessions,
            idle_timeout_s=spec.idle_timeout_s,
            gc_interval_s=spec.gc_interval_s,
            evalbus=spec.evalbus,
            bus_linger_ms=spec.bus_linger_ms,
        )
        router = ShardRouter.local(
            spec.shards,
            base,
            clock=clock,
            executor=executor,
            seed=spec.seed,
            backoff=BackoffPolicy(base_s=0.05, max_s=1.0, max_retries=3),
            health_interval_s=self.health_interval_s,
            failure_threshold=self.failure_threshold,
            restart_limit=self.restart_limit,
            respawn=self.respawn,
        )
        events: list[Event] = []
        wall0 = time.perf_counter()
        stats = clock.run(self._main(router, executor, clock, events))
        return ClusterScenarioResult(
            spec=spec,
            events=events,
            cluster_events=list(router.events),
            stats=stats,
            sim_seconds=clock.now,
            wall_seconds=time.perf_counter() - wall0,
            searches=executor.searches,
        )

    async def _main(self, router, executor, clock, events):
        await router.start()
        try:
            await asyncio.gather(
                self._faults(router, clock, events),
                *[
                    self._client(router, executor, clock, script, events)
                    for script in self.script
                ],
            )
            await router.refresh_shard_stats()
            return router.stats()
        finally:
            await router.aclose()

    async def _faults(self, router, clock, events) -> None:
        for fault in sorted(self.spec.faults, key=lambda f: (f.at_s, f.shard)):
            if fault.at_s > clock.now:
                await clock.sleep(fault.at_s - clock.now)
            events.append((clock.now, -1, f"fault_{fault.kind}", fault.shard))
            if fault.kind == "kill":
                router.kill_shard(fault.shard)
            elif fault.kind == "drain":
                await router.drain_shard(fault.shard, resume=True)
            elif fault.kind == "pause_swap":
                slot = router._slots[fault.shard]
                if not slot.usable:
                    continue
                slot.draining = True
                await router._rpc(
                    slot,
                    {"op": "drain_light"},
                    key=(fault.shard, "fault-pause", fault.at_s),
                )
                await clock.sleep(max(0.0, fault.duration_s))
                await router.resume_shard(fault.shard)
            else:
                raise ValueError(f"unknown fault kind {fault.kind!r}")

    async def _client(self, router, executor, clock, script, events) -> None:
        spec = self.spec
        await clock.sleep(script.arrival_s)
        try:
            session = await router.create_session(spec.game)
        except (GatewayOverloaded, GatewayConnectionError):
            events.append((clock.now, script.client_id, "admit_reject"))
            return
        events.append((clock.now, script.client_id, "admit", session))
        for move_idx, move in enumerate(script.moves):
            await clock.sleep(move.think_s)
            retries = 0
            while True:
                # with the bus on, every scripted search also pays the
                # linger the bus holds leaves for while courting
                # cross-session batch-mates
                executor.expect(
                    (
                        move.duration_ms
                        + (spec.bus_linger_ms if spec.evalbus else 0.0)
                    )
                    / 1e3
                )
                try:
                    reply = await router.play_move(
                        session, deadline_ms=script.deadline_ms
                    )
                except GatewayOverloaded:
                    executor.clear()
                    events.append(
                        (clock.now, script.client_id, "move_reject", move_idx)
                    )
                    retries += 1
                    if retries > spec.max_retries_per_move:
                        events.append(
                            (clock.now, script.client_id, "starved", move_idx)
                        )
                        return
                    await clock.sleep(spec.retry_backoff_s)
                    continue
                except GatewayConnectionError:
                    # the router exhausted every shard for this move; the
                    # session is gone (already accounted as lost)
                    executor.clear()
                    events.append(
                        (clock.now, script.client_id, "lost", move_idx)
                    )
                    return
                except SessionNotFound:
                    executor.clear()
                    events.append((clock.now, script.client_id, "expired"))
                    return
                break
            events.append(
                (
                    clock.now,
                    script.client_id,
                    "move",
                    session,
                    reply["move_number"],
                    round(reply["latency_ms"], 6),
                    retries,
                )
            )
            if reply["done"]:
                events.append(
                    (clock.now, script.client_id, "done", reply["status"])
                )
                return
        try:
            await router.resign(session)
            events.append((clock.now, script.client_id, "resigned"))
        except SessionNotFound:
            events.append((clock.now, script.client_id, "expired"))
