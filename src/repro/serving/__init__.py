"""Serving layer: cross-game batched evaluation at scale.

Where :mod:`repro.parallel` parallelises *one* search tree, this package
multiplexes many concurrent games through a single accelerator queue so
batch occupancy scales with the number of games (the stepping stone from
single-game self-play to request-serving):

- :mod:`repro.serving.cache`  -- LRU evaluation cache keyed by
  :meth:`repro.games.base.Game.canonical_key`; a hit never reaches the
  accelerator.
- :mod:`repro.serving.engine` -- :class:`MultiGameSelfPlayEngine`, the
  G-games-one-queue orchestrator with round-level serving statistics
  (``backend="process"`` swaps the thread pool for the multiprocess
  :mod:`repro.farm` behind the same interface).
- :mod:`repro.serving.evalbus` -- :class:`EvaluationBus`, the shared
  deadline-aware evaluation service: leaves from *all* live gateway
  sessions fuse into cross-session accelerator batches, scheduled by
  budget urgency (closest-to-deadline first) with a single armed linger
  window.
- :mod:`repro.serving.service` -- :class:`MatchGateway`, the async
  request-facing front door: deadline-budgeted match sessions with
  admission control, idle GC and latency percentiles, plus the
  newline-JSON TCP :class:`GatewayServer` / :class:`GatewayClient` pair.
- :mod:`repro.serving.simulate` -- the virtual-time scenario harness:
  scripted client populations driving a real gateway on a
  :class:`~repro.utils.clock.VirtualClock`, compressing hours of soak
  into deterministic seconds (``tests/simtime`` and the E17 sweep).
"""

from repro.serving.cache import CachingEvaluator, EvaluationCache
from repro.serving.engine import (
    LatencyTracker,
    MultiGameSelfPlayEngine,
    ServingStats,
)
from repro.serving.evalbus import BusEvaluator, EvalBusStats, EvaluationBus
from repro.serving.simulate import (
    ClusterScenarioResult,
    ClusterScenarioRunner,
    FaultEvent,
    InlineExecutor,
    ScenarioResult,
    ScenarioRunner,
    ScenarioSpec,
    SimulatedSearchExecutor,
    generate_script,
)
from repro.serving.service import (
    GatewayClient,
    GatewayConnectionError,
    GatewayError,
    GatewayOverloaded,
    GatewayServer,
    GatewayStats,
    InvalidMove,
    MatchGateway,
    MoveReply,
    SessionNotFound,
    SessionStatus,
)

__all__ = [
    "BusEvaluator",
    "CachingEvaluator",
    "ClusterScenarioResult",
    "ClusterScenarioRunner",
    "EvalBusStats",
    "EvaluationBus",
    "EvaluationCache",
    "FaultEvent",
    "GatewayClient",
    "GatewayConnectionError",
    "GatewayError",
    "GatewayOverloaded",
    "GatewayServer",
    "GatewayStats",
    "InlineExecutor",
    "InvalidMove",
    "LatencyTracker",
    "MatchGateway",
    "MoveReply",
    "MultiGameSelfPlayEngine",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "ServingStats",
    "SessionNotFound",
    "SessionStatus",
    "SimulatedSearchExecutor",
    "generate_script",
]
