"""Cross-game batched self-play engine.

The paper's accelerator queue (Section 3.3) accumulates leaf-evaluation
requests and flushes them as one batched DNN inference -- but fed by a
single game's search tree, occupancy is capped by that tree's worker
count and the accelerator starves between moves.  This module multiplexes
*G concurrent games* through one shared queue:

    game 0 --search--> |                         |
    game 1 --search--> | EvaluationCache (LRU)   |        batched
       ...             |   miss ->               | -->  DNN forward
    game G-1 -------->  |  AcceleratorQueue       |     (one stacked array)

so batch occupancy scales with G rather than per-tree parallelism, and a
state any game has already evaluated is never sent to the accelerator
again.  Each game keeps running the unmodified search algorithm -- the
engine only changes *where* leaf evaluations execute, preserving the
Section-3.2 program-template property.

As games finish, the engine shrinks the queue's flush threshold to the
number of still-active games so the tail of the round is not condemned to
linger-timeout stalls on every request.

All of the above runs on a thread pool sharing one GIL.  For true
multi-core scale-out, ``backend="process"`` keeps the same ``play_round``
surface but delegates the round to a :class:`repro.farm.farm.SelfPlayFarm`:
worker processes, shared-memory batched evaluation, a lock-striped shared
cache, and restart-and-requeue supervision.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.games.base import Game
from repro.mcts.backend import TreeBackend, resolve_backend
from repro.mcts.evaluation import Evaluator
from repro.mcts.serial import SerialMCTS
from repro.nn.infer import ensure_plan
from repro.parallel.evaluator import BatchingEvaluator
from repro.serving.cache import CachingEvaluator, EvaluationCache
from repro.training.selfplay import EpisodeResult, play_episode
from repro.utils.clock import WALL_CLOCK, Clock
from repro.utils.rng import new_rng, spawn_rngs

__all__ = ["LatencyTracker", "ServingStats", "MultiGameSelfPlayEngine"]


class LatencyTracker:
    """Thread-safe per-request latency reservoir with percentile summaries.

    Keeps the most recent *window* samples in a ring buffer (plus running
    count/total over the full lifetime), which bounds memory while the
    percentiles track current behaviour -- the serving-telemetry trade-off
    every production latency histogram makes.  Used for per-move search
    latency in both the self-play engine and the match gateway.

    *clock* feeds :meth:`measure`; recording pre-computed durations via
    :meth:`record` never reads it.  Defaults to wall time.
    """

    def __init__(self, window: int = 4096, clock: Clock | None = None) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._window = window
        self._samples: list[float] = []
        self._next = 0  # ring cursor once the window is full
        self._lock = threading.Lock()
        self.clock: Clock = WALL_CLOCK if clock is None else clock
        self.count = 0
        self.total = 0.0

    @contextmanager
    def measure(self):
        """Record the body's duration (by this tracker's clock) on exit."""
        t0 = self.clock.perf_counter()
        try:
            yield self
        finally:
            self.record(self.clock.perf_counter() - t0)

    def record(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total += seconds
            if len(self._samples) < self._window:
                self._samples.append(seconds)
            else:
                self._samples[self._next] = seconds
                self._next = (self._next + 1) % self._window

    def percentile(self, q: float) -> float:
        """Latency (seconds) at quantile *q* in [0, 100] over the window;
        0.0 before any sample."""
        with self._lock:
            if not self._samples:
                return 0.0
            return float(np.percentile(self._samples, q))

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def summary_ms(self) -> dict:
        """p50/p95/p99/mean in milliseconds plus the sample count."""
        return {
            "p50_ms": round(self.percentile(50) * 1e3, 3),
            "p95_ms": round(self.percentile(95) * 1e3, 3),
            "p99_ms": round(self.percentile(99) * 1e3, 3),
            "mean_ms": round(self.mean * 1e3, 3),
            "count": self.count,
        }

#: builds one game's search scheme around the shared (cached, batched)
#: evaluator; anything with ``get_action_prior(game, num_playouts)`` works
SchemeFactory = Callable[[Evaluator, np.random.Generator], object]


class _TimedScheme:
    """Forwarding wrapper that times each ``get_action_prior`` call into a
    shared :class:`LatencyTracker` (the engine's per-move latency axis)."""

    __slots__ = ("_scheme", "_tracker")

    def __init__(self, scheme, tracker: LatencyTracker) -> None:
        self._scheme = scheme
        self._tracker = tracker

    def get_action_prior(self, game: Game, num_playouts) -> np.ndarray:
        with self._tracker.measure():
            return self._scheme.get_action_prior(game, num_playouts)

    def close(self) -> None:
        close = getattr(self._scheme, "close", None)
        if close is not None:
            close()


@dataclass(frozen=True)
class ServingStats:
    """Round-level serving telemetry (what the throughput benchmark reports)."""

    games: int
    moves: int
    playouts: int
    wall_time: float
    eval_requests: int
    eval_batches: int
    mean_batch_occupancy: float
    partial_flushes: int
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    #: partial flushes forced specifically by the queue's aged-oldest
    #: linger window (a subset of ``partial_flushes``; high counts mean
    #: games are too few or too slow to fill the threshold).  Default 0:
    #: the process farm's headcount-flushing evaluator has no linger.
    linger_flushes: int = 0
    #: per-move search latency percentiles over the round (milliseconds);
    #: 0.0 where untracked (the process backend runs moves in worker
    #: processes and reports throughput-level stats only)
    move_latency_p50_ms: float = 0.0
    move_latency_p95_ms: float = 0.0
    move_latency_p99_ms: float = 0.0

    @property
    def games_per_sec(self) -> float:
        return self.games / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def moves_per_sec(self) -> float:
        return self.moves / self.wall_time if self.wall_time > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "games": self.games,
            "moves": self.moves,
            "playouts": self.playouts,
            "wall_time": round(self.wall_time, 4),
            "games_per_sec": round(self.games_per_sec, 3),
            "moves_per_sec": round(self.moves_per_sec, 3),
            "eval_requests": self.eval_requests,
            "eval_batches": self.eval_batches,
            "mean_batch_occupancy": round(self.mean_batch_occupancy, 3),
            "partial_flushes": self.partial_flushes,
            "linger_flushes": self.linger_flushes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "move_latency_p50_ms": round(self.move_latency_p50_ms, 3),
            "move_latency_p95_ms": round(self.move_latency_p95_ms, 3),
            "move_latency_p99_ms": round(self.move_latency_p99_ms, 3),
        }


class MultiGameSelfPlayEngine:
    """Run G self-play games concurrently over one shared accelerator queue.

    Parameters
    ----------
    game : template state; each concurrent game plays from a fresh copy.
    evaluator : the backing accelerator evaluator (its ``evaluate_batch``
        receives the accumulated cross-game batches).
    num_games : G, the number of games multiplexed per round.
    num_playouts : per-move search budget of every game.
    scheme_factory : builds each game's search scheme around the shared
        evaluator; defaults to :class:`SerialMCTS` (one outstanding leaf
        evaluation per game, so queue occupancy ~ number of active games).
    batch_size : queue flush threshold; defaults to ``num_games``.
        Thread backend only -- the process backend's evaluator flushes at
        the busy-worker headcount and rejects this knob.
    cache_capacity : LRU evaluation-cache size (states).
    linger : queue partial-flush timeout in seconds.
    tree_backend : storage layout for the default per-game search trees
        (array by default -- each game's tree is single-threaded, so the
        vectorised backend is exact); custom ``scheme_factory`` callables
        own their backend choice and can read :attr:`tree_backend`.
    backend : ``"thread"`` (default) runs the G games on a thread pool
        over the in-process queue + LRU cache; ``"process"`` delegates to
        a :class:`repro.farm.farm.SelfPlayFarm` -- N worker processes,
        shared-memory batched evaluation, lock-striped shared cache, and
        restart-and-requeue supervision -- for true multi-core scale-out.
        Episodes stay seeded per-game from the engine rng, so both
        backends produce identical transcripts for a deterministic
        evaluator.
    num_workers : process backend only -- worker-process count (defaults
        to ``min(num_games, cpu_count)``).
    max_retries : process backend only -- per-episode retry budget after
        worker deaths.

    Use :meth:`play_round` for episodes + stats, or :meth:`close` /
    context-manager form to release the game-thread pool (and, for the
    process backend, the farm's processes and shared memory).
    """

    def __init__(
        self,
        game: Game,
        evaluator: Evaluator,
        num_games: int = 8,
        num_playouts: int = 50,
        scheme_factory: SchemeFactory | None = None,
        batch_size: int | None = None,
        cache_capacity: int = 8192,
        linger: float = 0.002,
        temperature_moves: int = 8,
        temperature: float = 1.0,
        max_moves: int | None = None,
        rng: np.random.Generator | int | None = None,
        tree_backend: TreeBackend | str | None = None,
        backend: str = "thread",
        num_workers: int | None = None,
        max_retries: int = 2,
        clock: Clock | None = None,
    ) -> None:
        if num_games < 1:
            raise ValueError("num_games must be >= 1")
        if num_playouts < 1:
            raise ValueError("num_playouts must be >= 1")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        self.game = game
        self.backend = backend
        self.num_games = num_games
        self.num_playouts = num_playouts
        self.tree_backend = resolve_backend(tree_backend, TreeBackend.ARRAY)
        self.scheme_factory = scheme_factory or (
            lambda ev, game_rng: SerialMCTS(
                ev, rng=game_rng, tree_backend=self.tree_backend
            )
        )
        self.temperature_moves = temperature_moves
        self.temperature = temperature
        self.max_moves = max_moves
        self.rng = new_rng(rng)
        self.clock: Clock = WALL_CLOCK if clock is None else clock
        # compile the fused inference plan up front (no-op for network-less
        # or reference-backend evaluators) so the round's first batch never
        # pays plan compilation; the farm's evaluator process does the same
        # on its side of the fork
        ensure_plan(getattr(evaluator, "network", None))

        self._farm = None
        if backend == "process":
            if batch_size is not None:
                raise ValueError(
                    "batch_size is a thread-backend knob (the in-process "
                    "queue's flush threshold); the process backend's "
                    "evaluator flushes at the busy-worker headcount"
                )
            from repro.farm import SelfPlayFarm

            self._farm = SelfPlayFarm(
                game,
                evaluator,
                num_workers=num_workers or min(num_games, os.cpu_count() or 1),
                num_playouts=num_playouts,
                scheme_factory=self.scheme_factory,
                temperature_moves=temperature_moves,
                temperature=temperature,
                max_moves=max_moves,
                cache_capacity=cache_capacity,
                linger=linger,
                max_retries=max_retries,
                tree_backend=self.tree_backend,
                clock=self.clock,
            )
            # the process backend's cache/queue counterparts: the farm's
            # shared cache serves the role of the LRU cache (same clear()
            # contract the training pipeline relies on); there is no
            # in-process queue to expose.
            self.cache = self._farm.cache
            self.batching = None
            self.queue = None
            self.shared_evaluator = None
            self._pool = None
            return

        self.cache = EvaluationCache(cache_capacity)
        self._round_batch_size = batch_size or num_games
        self.batching = BatchingEvaluator(
            evaluator, self._round_batch_size, linger=linger
        )
        #: the shared accelerator queue all games feed
        self.queue = self.batching.queue
        #: what each game's scheme actually evaluates against
        self.shared_evaluator: Evaluator = CachingEvaluator(
            self.batching, self.cache
        )
        self._pool: ThreadPoolExecutor | None = None
        self._active_lock = threading.Lock()
        self._active_games = 0
        self._round_latency = LatencyTracker(clock=self.clock)

    # -- lifecycle -----------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_games, thread_name_prefix="selfplay-game"
            )
        return self._pool

    def close(self) -> None:
        if self._farm is not None:
            self._farm.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "MultiGameSelfPlayEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- play ---------------------------------------------------------------
    def _play_one(self, game_rng: np.random.Generator) -> EpisodeResult:
        scheme = _TimedScheme(
            self.scheme_factory(self.shared_evaluator, game_rng),
            self._round_latency,
        )
        try:
            return play_episode(
                self.game,
                scheme,
                self.num_playouts,
                temperature_moves=self.temperature_moves,
                temperature=self.temperature,
                max_moves=self.max_moves,
                rng=game_rng,
            )
        finally:
            scheme.close()
            with self._active_lock:
                self._active_games -= 1
                active = self._active_games
            if active > 0:
                # shrink_batch_size is an atomic min, so near-simultaneous
                # finishes applying out of order can only over-shrink (fixed
                # by the round-start reset), never strand the remaining
                # producers above their headcount -- and any inline flush it
                # triggers runs outside _active_lock.
                self.queue.shrink_batch_size(active)

    def play_round(self) -> tuple[list[EpisodeResult], ServingStats]:
        """Play ``num_games`` episodes concurrently; returns them with the
        round's serving statistics (throughput, occupancy, cache rates).

        Under ``backend="process"`` the round runs on the farm and the
        returned stats are a :class:`repro.farm.farm.FarmStats` (a
        superset of :class:`ServingStats` that adds supervision fields).
        """
        if self._farm is not None:
            self._sync_farm_weights()
            rngs = spawn_rngs(self.rng, self.num_games)
            return self._farm.run_round(rngs)
        pool = self._ensure_pool()
        rngs = spawn_rngs(self.rng, self.num_games)
        base_requests = self.queue.requests_served
        base_batches = self.queue.batches_flushed
        base_partial = self.queue.partial_flushes
        base_linger = self.queue.linger_flushes
        base_hits = self.cache.hits
        base_misses = self.cache.misses
        with self._active_lock:
            self._active_games = self.num_games
        # restore the full threshold (a previous round's tail shrank it)
        self.queue.set_batch_size(self._round_batch_size)
        # fresh tracker per round: the stats below are per-round deltas
        self._round_latency = LatencyTracker(clock=self.clock)

        t0 = self.clock.perf_counter()
        results = list(pool.map(self._play_one, rngs))
        wall = self.clock.perf_counter() - t0

        requests = self.queue.requests_served - base_requests
        batches = self.queue.batches_flushed - base_batches
        hits = self.cache.hits - base_hits
        misses = self.cache.misses - base_misses
        stats = ServingStats(
            games=len(results),
            moves=sum(r.moves for r in results),
            playouts=sum(r.total_playouts for r in results),
            wall_time=wall,
            eval_requests=requests,
            eval_batches=batches,
            mean_batch_occupancy=requests / batches if batches else 0.0,
            partial_flushes=self.queue.partial_flushes - base_partial,
            linger_flushes=self.queue.linger_flushes - base_linger,
            cache_hits=hits,
            cache_misses=misses,
            cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
            move_latency_p50_ms=self._round_latency.percentile(50) * 1e3,
            move_latency_p95_ms=self._round_latency.percentile(95) * 1e3,
            move_latency_p99_ms=self._round_latency.percentile(99) * 1e3,
        )
        return results, stats

    def _sync_farm_weights(self) -> None:
        """Propagate post-SGD network weights into the evaluator process.

        The farm's evaluator holds a *forked copy* of the evaluator, so
        in-place weight updates in this process (the training loop's SGD
        stage) would otherwise go unseen.  A no-op before the farm's
        first round (the fork inherits current weights) and for
        network-less evaluators.
        """
        network = getattr(self._farm.evaluator, "network", None)
        state_dict = getattr(network, "state_dict", None)
        if state_dict is not None:
            self._farm.sync_weights(state_dict())
