"""Evaluation cache: memoised leaf evaluations for the serving layer.

Self-play traffic is extremely repetitive: every game of a multi-game
round starts from the same position, searches overlap heavily near the
root, and the synthetic profiling workload revisits identical paths across
episodes.  Re-running DNN inference for a state already evaluated wastes
exactly the accelerator capacity the Section-3.3 batching queue exists to
protect, so the serving engine puts this LRU cache *in front* of the
queue: a hit never touches the accelerator at all.

Keys come from :meth:`repro.games.base.Game.canonical_key`, which each
game implements as a cheap digest of its raw state (two states with equal
keys produce identical ``encode()`` planes and legal-move masks, so their
evaluations are interchangeable).

Thread safety: all operations take the cache lock; the cache is shared by
every concurrent game of a :class:`repro.serving.engine.MultiGameSelfPlayEngine`.
Two threads missing the same key concurrently both evaluate and both
insert -- the second insert overwrites with an equal value, which is
harmless and cheaper than per-key in-flight futures.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.games.base import Game
from repro.mcts.evaluation import Evaluation, Evaluator

__all__ = ["EvaluationCache", "CachingEvaluator"]


class EvaluationCache:
    """Thread-safe LRU cache of :class:`Evaluation` results.

    Parameters
    ----------
    capacity : maximum number of cached states; the least recently *used*
        (looked up or inserted) entry is evicted first.

    Counters
    --------
    ``hits + misses == lookups`` always holds; ``evictions`` counts entries
    dropped to respect *capacity*.
    """

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, Evaluation] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def lookups(self) -> int:
        with self._lock:
            return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def get(self, game: Game) -> Evaluation | None:
        """Look up *game*'s state; counts a hit or a miss either way."""
        key = game.canonical_key()
        with self._lock:
            ev = self._entries.get(key)
            if ev is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return ev

    def put(self, game: Game, evaluation: Evaluation) -> None:
        """Insert (or refresh) *game*'s evaluation, evicting LRU entries."""
        key = game.canonical_key()
        with self._lock:
            self._entries[key] = evaluation
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class CachingEvaluator(Evaluator):
    """Evaluator decorator: consult an :class:`EvaluationCache` first.

    Misses are delegated to the wrapped evaluator (typically a
    :class:`repro.parallel.evaluator.BatchingEvaluator` whose queue is
    shared across games) and inserted on the way back.  The batched path
    partitions the batch into hits and misses and evaluates only the
    misses -- as one sub-batch, preserving the vectorised forward.
    """

    def __init__(self, evaluator: Evaluator, cache: EvaluationCache | None = None) -> None:
        self.evaluator = evaluator
        # explicit None check: an *empty* EvaluationCache is falsy (__len__)
        self.cache = cache if cache is not None else EvaluationCache()

    def evaluate(self, game: Game) -> Evaluation:
        cached = self.cache.get(game)
        if cached is not None:
            return cached
        evaluation = self.evaluator.evaluate(game)
        self.cache.put(game, evaluation)
        return evaluation

    def evaluate_batch(self, games: list[Game]) -> list[Evaluation]:
        results: list[Evaluation | None] = []
        miss_indices: list[int] = []
        for i, game in enumerate(games):
            cached = self.cache.get(game)
            results.append(cached)
            if cached is None:
                miss_indices.append(i)
        if miss_indices:
            fresh = self.evaluator.evaluate_batch([games[i] for i in miss_indices])
            for i, ev in zip(miss_indices, fresh):
                self.cache.put(games[i], ev)
                results[i] = ev
        return results  # type: ignore[return-value]
