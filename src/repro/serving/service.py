"""Async match-serving gateway: game sessions under wall-clock deadlines.

PRs 1-4 built *throughput* -- batched engines, array trees, the process
farm, fused inference -- with nowhere to point it: every entry point
budgeted search by playout count and served nobody.  This module is the
request-facing front door the ROADMAP's "heavy traffic" north star
needs:

- **Sessions.**  The gateway owns game sessions (create / move / resign
  / expire) with monotonic ids, per-session move serialisation, and idle
  garbage collection, multiplexing many concurrent sessions onto one
  evaluator backend.
- **Deadlines.**  Every move request carries a wall-clock allowance; the
  remaining budget (after queueing) is threaded into the anytime search
  as a :class:`~repro.mcts.budget.SearchBudget`, so the reply is the
  best prior accumulated within "best move in D milliseconds" -- the
  question the paper's Figure 4/5 latency benchmarks are really asking.
- **Backpressure.**  A bounded in-flight limit rejects excess move
  requests 503-style instead of queueing unboundedly, and
  :class:`GatewayStats` tracks p50/p95/p99 move latency, deadline
  misses, and rejection counts.
- **Backends.**  ``backend="thread"`` runs searches on a thread pool
  against the shared in-process evaluator stack (LRU evaluation cache +
  fused-inference network, the PR-1/PR-4 components), with a warm
  :class:`~repro.mcts.reuse.TreeReuseMCTS` tree per session.
  ``backend="process"`` uses the farm's fork model: worker processes
  inherit the evaluator at executor creation and run stateless per-move
  searches, for multi-core scale-out past the GIL.

A thin newline-delimited-JSON TCP layer (:class:`GatewayServer` /
:class:`GatewayClient`, pure stdlib asyncio) exposes the same surface to
external clients and the load harness; the in-process async API is what
the test suites drive.
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import json
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.games import make_game
from repro.games.base import Game
from repro.mcts.budget import SearchBudget
from repro.mcts.evaluation import Evaluator, UniformEvaluator
from repro.mcts.reuse import TreeReuseMCTS
from repro.mcts.serial import SerialMCTS
from repro.nn.infer import ensure_plan
from repro.serving.cache import CachingEvaluator, EvaluationCache
from repro.serving.engine import LatencyTracker
from repro.serving.evalbus import BusEvaluator, EvaluationBus
from repro.storage import SessionJournal, SessionReplay, replay_sessions
from repro.utils.clock import (
    WALL_CLOCK,
    Clock,
    ClockTimeout,
    WallClock,
    clock_timeout,
)
from repro.utils.rng import new_rng

__all__ = [
    "GatewayError",
    "GatewayConnectionError",
    "SessionNotFound",
    "GatewayOverloaded",
    "InvalidMove",
    "SessionStatus",
    "MoveReply",
    "GatewayStats",
    "MatchGateway",
    "GatewayServer",
    "GatewayClient",
    "build_game",
]


# -- errors (wire codes follow HTTP conventions) ------------------------------
class GatewayError(Exception):
    """Base gateway failure; :attr:`code` is the wire/status code."""

    code = 400


class SessionNotFound(GatewayError):
    """Unknown, finished, or expired session id."""

    code = 404


class GatewayOverloaded(GatewayError):
    """Admission control rejected the request (503-style backpressure)."""

    code = 503


class InvalidMove(GatewayError):
    """The client's action is illegal in the session's current state.

    Carries its own wire code (422, unprocessable) so remote callers --
    the cluster router above all -- can re-raise the *typed* error
    instead of guessing from a generic 400's message text.
    """

    code = 422


class GatewayConnectionError(GatewayError, ConnectionError):
    """Transport-level failure talking to a gateway: torn reply line,
    peer disconnect mid-request, connect/read timeout.

    The defining property is *ambiguity* -- the caller cannot know
    whether the request was applied before the connection died, so this
    (unlike the wire-coded :class:`GatewayError` replies) is the one
    failure a client may retry.  Pair retries with an idempotent request
    id (``rid`` on the ``move`` op) and a retried move is answered from
    the gateway's reply cache instead of being applied twice.

    Subclasses ``ConnectionError`` so pre-existing ``except
    ConnectionError`` call sites keep working.
    """

    code = 502


def build_game(name: str, size: int | None = None) -> Game:
    """The shared :func:`repro.games.make_game` registry behind a
    wire-safe error: unknown names become a 400 reply, not a 500.

    The gateway defaults Gomoku to 9x9 -- a 15x15 search rarely fits an
    interactive deadline; ask for ``size=15`` explicitly to serve the
    paper's board.
    """
    if name == "gomoku" and size is None:
        size = 9
    try:
        return make_game(name, size)
    except ValueError as exc:
        raise GatewayError(str(exc)) from exc


_WIRE_GAME_NAMES = {
    "TicTacToe": "tictactoe",
    "ConnectFour": "connect4",
    "Gomoku": "gomoku",
}


def game_wire_name(game: Game) -> tuple[str | None, int | None]:
    """Invert :func:`build_game` for journaling: ``(name, size)`` such
    that ``build_game(name, size)`` rebuilds an equivalent fresh game, or
    ``(None, None)`` for games outside the wire registry (synthetic
    fixtures) -- their sessions are served but not recoverable."""
    name = _WIRE_GAME_NAMES.get(type(game).__name__)
    if name == "gomoku":
        return name, int(game.board_shape[0])
    return name, None


class SessionStatus(str, enum.Enum):
    ACTIVE = "active"
    FINISHED = "finished"
    RESIGNED = "resigned"
    EXPIRED = "expired"
    DRAINED = "drained"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class _Session:
    """One hosted match: game state + (thread backend) a warm search tree."""

    __slots__ = (
        "session_id",
        "game",
        "agent",
        "rng",
        "status",
        "created_at",
        "last_active",
        "moves",
        "history",
        "lock",
    )

    def __init__(
        self,
        session_id: int,
        game: Game,
        agent: TreeReuseMCTS | None,
        rng: np.random.Generator,
        now: float,
        history: list[int] | None = None,
    ) -> None:
        self.session_id = session_id
        self.game = game
        self.agent = agent
        self.rng = rng
        self.status = SessionStatus.ACTIVE
        self.created_at = now
        self.last_active = now
        self.moves = len(history) if history else 0
        # every action applied to the game, client and engine alike --
        # the replay script a drained session is restored from
        self.history: list[int] = list(history) if history else []
        self.lock = asyncio.Lock()


@dataclass(frozen=True)
class MoveReply:
    """One served move: what the engine played and how long it took."""

    session_id: int
    engine_action: int | None  # None when the client's move ended the game
    prior: np.ndarray | None  # normalised root prior behind engine_action
    done: bool
    winner: int | None  # +1 / -1 / 0 once done, else None
    status: SessionStatus
    latency_ms: float
    deadline_ms: float
    move_number: int


@dataclass(frozen=True)
class GatewayStats:
    """Gateway-lifetime serving telemetry (the request-facing counterpart
    of the self-play round's :class:`~repro.serving.engine.ServingStats`)."""

    sessions_created: int
    sessions_active: int
    sessions_finished: int
    sessions_resigned: int
    sessions_expired: int
    moves_served: int
    rejected: int
    deadline_misses: int
    inflight: int
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    # cluster-era fields (defaults keep single-gateway callers unchanged)
    sessions_drained: int = 0
    sessions_restored: int = 0
    deduped_replies: int = 0
    drain_rejected: int = 0
    draining: bool = False
    shard_id: str | None = None
    weights_version: int | None = None
    # evaluation-bus fields (zero/False when the bus is off, so bus-less
    # gateways and old stats consumers are unchanged)
    bus_enabled: bool = False
    bus_requests: int = 0
    bus_batches: int = 0
    bus_occupancy: float = 0.0
    bus_deadline_flushes: int = 0
    bus_linger_flushes: int = 0
    # durable-state fields (zero/False when journaling is off, so
    # journal-less gateways and old stats consumers are unchanged)
    journal_enabled: bool = False
    journal_fsync: str | None = None
    journal_records: int = 0
    journal_errors: int = 0
    journal_recovered: int = 0
    journal_unrecoverable: int = 0

    def as_dict(self) -> dict:
        return {
            "sessions_created": self.sessions_created,
            "sessions_active": self.sessions_active,
            "sessions_finished": self.sessions_finished,
            "sessions_resigned": self.sessions_resigned,
            "sessions_expired": self.sessions_expired,
            "sessions_drained": self.sessions_drained,
            "sessions_restored": self.sessions_restored,
            "moves_served": self.moves_served,
            "rejected": self.rejected,
            "drain_rejected": self.drain_rejected,
            "deadline_misses": self.deadline_misses,
            "deduped_replies": self.deduped_replies,
            "inflight": self.inflight,
            "draining": self.draining,
            "shard_id": self.shard_id,
            "weights_version": self.weights_version,
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p95_ms": round(self.latency_p95_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
            "latency_mean_ms": round(self.latency_mean_ms, 3),
            "bus_enabled": self.bus_enabled,
            "bus_requests": self.bus_requests,
            "bus_batches": self.bus_batches,
            "bus_occupancy": round(self.bus_occupancy, 3),
            "bus_deadline_flushes": self.bus_deadline_flushes,
            "bus_linger_flushes": self.bus_linger_flushes,
            "journal_enabled": self.journal_enabled,
            "journal_fsync": self.journal_fsync,
            "journal_records": self.journal_records,
            "journal_errors": self.journal_errors,
            "journal_recovered": self.journal_recovered,
            "journal_unrecoverable": self.journal_unrecoverable,
        }


# -- process-backend worker plumbing ------------------------------------------
# Evaluators are installed in a module-level registry *before* the
# fork-context ProcessPoolExecutor spawns its workers, so children
# inherit them through the fork (the farm's model) -- no pickling of
# networks, plans, or the thread-local workspaces they carry.  The
# registry is keyed per gateway because workers fork *lazily* at first
# submit: with a single slot, a second gateway constructed in between
# would silently swap the first gateway's evaluator.
_FORK_REGISTRY: dict[int, Evaluator] = {}
_FORK_KEYS = itertools.count(1)


def _install_fork_evaluator(evaluator: Evaluator) -> int:
    key = next(_FORK_KEYS)
    _FORK_REGISTRY[key] = evaluator
    return key


def _process_move_search(
    fork_key: int,
    game: Game,
    budget: SearchBudget,
    c_puct: float,
    tree_backend,
    seed: int,
) -> np.ndarray:
    """Stateless per-move search inside a forked worker process."""
    evaluator = _FORK_REGISTRY.get(fork_key)
    assert evaluator is not None, "fork evaluator not installed"
    agent = SerialMCTS(
        evaluator, c_puct=c_puct, rng=seed, tree_backend=tree_backend
    )
    return agent.get_action_prior(game, budget)


class MatchGateway:
    """Asyncio gateway hosting concurrent deadline-budgeted match sessions.

    Parameters
    ----------
    evaluator : leaf evaluator behind every session's search (defaults to
        :class:`~repro.mcts.evaluation.UniformEvaluator` -- tests and
        demos; serve a real model by passing a ``NetworkEvaluator``).
    backend : ``"thread"`` (shared cached evaluator, warm per-session
        trees) or ``"process"`` (forked stateless workers).
    workers : search executor size (threads or processes).
    deadline_ms : default per-move wall-clock allowance; each request may
        override it.
    num_playouts : per-move playout cap -- search returns at the cap or
        the deadline, whichever binds first.
    max_inflight : concurrent move computations admitted before requests
        are rejected 503-style (defaults to ``2 * workers``).
    max_sessions : active-session cap; session creation beyond it is
        rejected with :class:`GatewayOverloaded`.
    idle_timeout_s : sessions idle longer than this are expired by the
        GC sweep (:meth:`expire_idle`, run every *gc_interval_s* by the
        background task :meth:`start` spawns).
    game_template : when the evaluator only fits one game (a network is
        shaped for specific planes/actions), pass the game it was built
        for and session creation rejects mismatched requests with a 400
        instead of admitting sessions whose every move would 500.
        ``None`` (the default) accepts any game -- correct for
        shape-agnostic evaluators like the uniform one.
    deadline_tolerance_ms : slack before a served move counts as a
        deadline miss in :class:`GatewayStats` (queueing, scheduling and
        one in-flight leaf evaluation live inside this).
    clock : time source for everything the gateway stamps or schedules --
        deadline arming, per-move latency, session ``last_active``, the
        idle-GC sweep cadence.  ``None`` (the default) is
        :data:`~repro.utils.clock.WALL_CLOCK`: production behaviour,
        bit-identical to the pre-seam gateway.  Virtual-time tests
        inject a :class:`~repro.utils.clock.VirtualClock`; the process
        backend rejects non-wall clocks (a forked worker cannot share a
        simulated timeline).
    executor : search executor override (thread backend only).  The
        deterministic simulation harness injects an inline executor so
        searches run synchronously on the event-loop thread and virtual
        time cannot advance mid-search; ``None`` builds the usual
        :class:`~concurrent.futures.ThreadPoolExecutor`.  Injected
        executors are *borrowed*: :meth:`aclose` does not shut them
        down.
    evalbus : route the thread backend's leaf evaluations through one
        cross-session :class:`~repro.serving.evalbus.EvaluationBus`, so
        leaves from *different* concurrent sessions fuse into shared
        accelerator batches instead of racing N singleton forwards
        through the GIL.  ``None`` (the default) auto-enables it for the
        thread backend and leaves the process backend bus-less (forked
        workers cannot share an in-process queue; explicitly passing
        ``True`` there raises).  ``False`` forces per-session evaluation
        -- the pre-bus behaviour, kept for A/B benchmarks.
    bus_max_batch : largest fused batch the bus emits; ``None`` sizes it
        to ``max_inflight`` (the most concurrent searches the gateway
        admits, hence the most leaves that can ever be pending at once).
    bus_linger_ms : how long the oldest pending leaf may wait for
        batch-mates before a partial flush goes out.
    bus_deadline_lead_ms : urgency horizon -- a leaf whose session has no
        more than this many milliseconds of move budget left flushes
        immediately rather than lingering.
    shard_id : cluster-assigned label stamped into stats / ``version``
        replies so fleet telemetry can attribute numbers to shards
        (``None`` for a standalone gateway).
    reply_cache_size : completed rid-tagged move replies retained for
        retry dedupe (see the ``request_id`` parameter of
        :meth:`play_move`).
    journal_dir : directory for a durable per-session move journal
        (``None``, the default, journals nothing -- behaviour is then
        bit-identical to a journal-less gateway).  Every admission, every
        completed move (with its idempotency rid and reply essentials)
        and every close is appended as a checksummed WAL record;
        :meth:`start` on a fresh gateway pointed at the same directory
        replays the log and re-admits every session that was live at the
        crash, at its exact position, with its original id.  IO failures
        (ENOSPC above all) never take serving down: journaling degrades
        to a no-op and ``journal_errors`` surfaces in stats.
    journal_fsync : durability policy for the journal -- ``"per-move"``
        (fsync every record: survives power loss), ``"batched"`` (flush
        every record, fsync at most every 50 ms: survives SIGKILL,
        bounds power-loss exposure, keeps fsync out of the latency
        tail), or ``"off"`` (flush only: survives clean exits).
    """

    def __init__(
        self,
        evaluator: Evaluator | None = None,
        *,
        backend: str = "thread",
        workers: int = 4,
        deadline_ms: float = 200.0,
        num_playouts: int = 256,
        max_inflight: int | None = None,
        max_sessions: int = 512,
        idle_timeout_s: float = 300.0,
        gc_interval_s: float = 5.0,
        deadline_tolerance_ms: float = 50.0,
        game_template: Game | None = None,
        c_puct: float = 5.0,
        tree_backend: str | None = None,
        cache_capacity: int = 8192,
        seed: int | np.random.Generator | None = 0,
        clock: Clock | None = None,
        executor: Executor | None = None,
        evalbus: bool | None = None,
        bus_max_batch: int | None = None,
        bus_linger_ms: float = 2.0,
        bus_deadline_lead_ms: float = 5.0,
        shard_id: str | None = None,
        reply_cache_size: int = 1024,
        journal_dir: str | os.PathLike | None = None,
        journal_fsync: str = "batched",
    ) -> None:
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend == "process" and evalbus:
            raise ValueError(
                "evalbus is a thread-backend feature: forked workers "
                "cannot share an in-process evaluation queue"
            )
        if bus_linger_ms <= 0:
            raise ValueError("bus_linger_ms must be positive")
        if bus_max_batch is not None and bus_max_batch < 1:
            raise ValueError("bus_max_batch must be >= 1")
        if backend == "process" and clock is not None and not isinstance(
            clock, WallClock
        ):
            raise ValueError(
                "backend='process' only serves wall time: forked workers "
                "cannot observe an in-process virtual clock"
            )
        if backend == "process" and executor is not None:
            raise ValueError("executor injection is a thread-backend knob")
        if deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if num_playouts < 1:
            raise ValueError("num_playouts must be >= 1")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.evaluator = evaluator or UniformEvaluator()
        self.backend = backend
        self.workers = workers
        self.deadline_ms = deadline_ms
        self.num_playouts = num_playouts
        self.max_inflight = 2 * workers if max_inflight is None else max_inflight
        self.max_sessions = max_sessions
        self.idle_timeout_s = idle_timeout_s
        self.gc_interval_s = gc_interval_s
        self.deadline_tolerance_ms = deadline_tolerance_ms
        self.game_template = game_template
        self.c_puct = c_puct
        self.tree_backend = tree_backend
        self.rng = new_rng(seed)
        self.clock: Clock = WALL_CLOCK if clock is None else clock
        self.latency = LatencyTracker(clock=self.clock)
        self.shard_id = shard_id
        if reply_cache_size < 1:
            raise ValueError("reply_cache_size must be >= 1")

        self._sessions: dict[int, _Session] = {}
        self._next_session_id = 1  # monotonic, never reused
        self._inflight = 0
        self._closed = False
        self._draining = False
        self._gc_task: asyncio.Task | None = None

        # idempotent-move bookkeeping: completed replies keyed by
        # (session, rid) in insertion order (a bounded FIFO cache), plus
        # the futures of rid-tagged moves still executing, so a retry
        # racing its original awaits the one in flight instead of
        # re-applying the move
        self._reply_cache: dict[tuple[int, str], MoveReply] = {}
        self._reply_cache_size = reply_cache_size
        self._inflight_rids: dict[tuple[int, str], asyncio.Future] = {}

        # durable per-session move journal (None = journaling off).  A
        # broken journal *directory* raises here -- that is a config
        # error at startup; IO failures later merely degrade.
        self._journal: SessionJournal | None = None
        self._journal_recovered = 0
        self._journal_unrecoverable = 0
        self._journal_recovery_done = False
        self._journal_muted = False  # True while recovery re-admits
        if journal_dir is not None:
            self._journal = SessionJournal(journal_dir, fsync=journal_fsync)

        # lifetime counters behind GatewayStats
        self._created = 0
        self._finished = 0
        self._resigned = 0
        self._expired = 0
        self._drained = 0
        self._restored = 0
        self._moves_served = 0
        self._rejected = 0
        self._drain_rejected = 0
        self._deduped = 0
        self._deadline_misses = 0

        self._executor: Executor
        self._owns_executor = executor is None
        self._fork_key: int | None = None
        if backend == "process":
            import multiprocessing

            # compile the fused plan before forking so workers inherit it
            ensure_plan(getattr(self.evaluator, "network", None))
            self._fork_key = _install_fork_evaluator(self.evaluator)
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
            )
            self._shared_evaluator = None
            self._bus = None
        else:
            ensure_plan(getattr(self.evaluator, "network", None))
            self._executor = executor if executor is not None else (
                ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="gateway-search"
                )
            )
            # the cross-session bus fuses cache *misses* from all live
            # sessions into shared accelerator batches; the LRU cache
            # sits above it so hits never pay bus latency.  Sized to
            # max_inflight: the gateway never admits more concurrent
            # searches than that, so no larger batch can ever fill.
            self._bus: EvaluationBus | None = None
            base: Evaluator = self.evaluator
            if evalbus or evalbus is None:
                self._bus = EvaluationBus(
                    self.evaluator,
                    max_batch=(
                        bus_max_batch
                        if bus_max_batch is not None
                        else self.max_inflight
                    ),
                    linger=bus_linger_ms / 1e3,
                    deadline_lead_ms=bus_deadline_lead_ms,
                    clock=self.clock,
                )
                base = BusEvaluator(self._bus)
            # sessions share one LRU evaluation cache: a position any
            # session has evaluated never reaches the network again
            self._shared_evaluator = CachingEvaluator(
                base, EvaluationCache(cache_capacity)
            )

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "MatchGateway":
        """Recover journaled sessions (first call), then spawn the
        idle-GC background task (idempotent)."""
        if self._journal is not None and not self._journal_recovery_done:
            self._recover_from_journal()
        if self._gc_task is None:
            self._gc_task = asyncio.create_task(self._gc_loop())
        return self

    async def aclose(self) -> None:
        self._closed = True
        if self._gc_task is not None:
            self._gc_task.cancel()
            try:
                await self._gc_task
            except asyncio.CancelledError:
                pass
            self._gc_task = None
        self._sessions.clear()
        if self._owns_executor:
            self._executor.shutdown(wait=True)
        # after the executor drains: in-flight searches must be able to
        # submit their last leaves before the bus refuses them
        if self._bus is not None:
            self._bus.close()
        if self._fork_key is not None:
            _FORK_REGISTRY.pop(self._fork_key, None)
            self._fork_key = None
        if self._journal is not None:
            self._journal.close()

    async def __aenter__(self) -> "MatchGateway":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.aclose()

    async def _gc_loop(self) -> None:
        while True:
            await self.clock.sleep(self.gc_interval_s)
            self.expire_idle()

    def expire_idle(self, now: float | None = None) -> list[int]:
        """Expire sessions idle past ``idle_timeout_s``; returns their ids."""
        now = self.clock.monotonic() if now is None else now
        stale = [
            s
            for s in list(self._sessions.values())
            # a held lock means a move is in flight right now -- not idle,
            # however stale last_active looks
            if now - s.last_active > self.idle_timeout_s and not s.lock.locked()
        ]
        for session in stale:
            session.status = SessionStatus.EXPIRED
            self._sessions.pop(session.session_id, None)
            self._expired += 1
            if self._journal is not None:
                self._journal.close_session(session.session_id, "expired")
        return [s.session_id for s in stale]

    # -- draining (cluster control plane) -------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting new or restored sessions (idempotent).  Moves on
        existing sessions keep serving -- this is the *drain-light* state a
        weight rollout holds a shard in during its recompile window."""
        self._draining = True

    def resume_admission(self) -> None:
        self._draining = False

    async def export_sessions(self) -> list[dict]:
        """Full drain: close every active session and hand back its replay
        script (``{"session", "moves", "actions"}`` rows).

        Each session's lock is taken first, so an in-flight move completes
        (and lands in the history) before the session is exported -- the
        "in-flight moves finish, then the session relocates" half of the
        cluster's drain contract.  Exported sessions read as
        :attr:`SessionStatus.DRAINED` and count into ``sessions_drained``.
        """
        exported: list[dict] = []
        for session in list(self._sessions.values()):
            async with session.lock:
                if session.status is not SessionStatus.ACTIVE:
                    continue
                session.status = SessionStatus.DRAINED
                self._sessions.pop(session.session_id, None)
                self._drained += 1
                if self._journal is not None:
                    # a drained session relocates; a crash here must not
                    # resurrect it on this shard
                    self._journal.close_session(session.session_id, "drained")
                name, size = game_wire_name(session.game)
                exported.append(
                    {
                        "session": session.session_id,
                        "moves": session.moves,
                        "actions": list(session.history),
                        "game": name,
                        "size": size,
                    }
                )
        return exported

    def journal_shutdown(self, exported: list[dict]) -> bool:
        """Persist *exported* rows (from :meth:`export_sessions`) as the
        journal's snapshot, so a restart recovers every one of them.

        This is the graceful-shutdown (SIGTERM) flow: export finishes
        in-flight moves and closes the sessions, then this compaction
        rewrites the log as one ``open``-with-history record per exported
        session -- superseding the ``drained`` closes export just wrote.
        Returns False when journaling is off or degraded.
        """
        if self._journal is None:
            return False
        replays = [
            SessionReplay(
                sid=int(row["session"]),
                game=row.get("game"),
                size=row.get("size"),
                history=[int(a) for a in row.get("actions", [])],
            )
            for row in exported
        ]
        ok = self._journal.snapshot(replays)
        self._journal.sync()
        return ok

    def load_weights(self, encoded_state: dict) -> int:
        """Install a new checkpoint (``load_weights`` control RPC).

        Decodes the :mod:`repro.utils.wire` payload and feeds it through
        ``load_state_dict``, which bumps ``weights_version`` -- the PR-4
        seam: the next fused evaluation lazily recompiles its plan from
        the new weights, atomically per process.  Returns the new
        version.  Raises a 400-coded error for evaluators without
        network weights (uniform) or malformed payloads.
        """
        network = getattr(self.evaluator, "network", None)
        if network is None:
            raise GatewayError(
                "this gateway's evaluator carries no network weights"
            )
        from repro.utils.wire import decode_state

        try:
            state = decode_state(encoded_state)
            network.load_state_dict(state)
        except (ValueError, KeyError, TypeError) as exc:
            raise GatewayError(f"bad weights payload: {exc}") from exc
        return int(network.weights_version)

    @property
    def weights_version(self) -> int | None:
        """The evaluator network's current weight version (``None`` for
        weightless evaluators)."""
        network = getattr(self.evaluator, "network", None)
        if network is None:
            return None
        return int(getattr(network, "weights_version", 0))

    @property
    def plan_version(self) -> int | None:
        """Weight version of the currently *compiled* fused plan -- lags
        :attr:`weights_version` inside the lazy-recompile window."""
        network = getattr(self.evaluator, "network", None)
        plan = getattr(network, "_plan", None)
        if plan is None:
            return None
        return int(plan.weights_version)

    # -- session management ---------------------------------------------------
    @property
    def session_count(self) -> int:
        return len(self._sessions)

    async def create_session(
        self, game: str | Game = "tictactoe", size: int | None = None
    ) -> int:
        """Open a match and return its (monotonic) session id."""
        self._check_admission()
        state = game.copy() if isinstance(game, Game) else build_game(game, size)
        return self._admit(state, history=None)

    async def restore_session(
        self,
        game: str | Game = "tictactoe",
        size: int | None = None,
        actions: list[int] | None = None,
    ) -> tuple[int, bool, int | None]:
        """Re-admit a session drained (or lost) elsewhere in the cluster.

        *actions* is the full move history of the original session; the
        game is replayed to the same position and a fresh session (new
        id, fresh search tree -- search statistics do not survive
        relocation, only game state) is admitted.  Returns ``(session_id,
        done, winner)``; when the replayed game is already terminal, no
        session is admitted and ``session_id`` is 0.
        """
        self._check_admission()
        state = game.copy() if isinstance(game, Game) else build_game(game, size)
        history = [int(a) for a in (actions or [])]
        for ply, action in enumerate(history):
            if state.is_terminal or not (
                0 <= action < state.action_size
                and bool(state.legal_mask()[action])
            ):
                raise GatewayError(
                    f"restore history is not a legal line: "
                    f"action {action} at ply {ply}"
                )
            state.step(action)
        if state.is_terminal:
            return 0, True, int(state.winner)
        session_id = self._admit(state, history=history)
        self._restored += 1
        return session_id, False, None

    def _check_admission(self) -> None:
        if self._closed:
            raise GatewayError("gateway is closed")
        if self._draining:
            self._drain_rejected += 1
            self._rejected += 1
            raise GatewayOverloaded("gateway is draining (shard rollout)")
        if len(self._sessions) >= self.max_sessions:
            self._rejected += 1
            raise GatewayOverloaded(
                f"session table full ({self.max_sessions} active)"
            )

    def _admit(
        self,
        state: Game,
        history: list[int] | None,
        session_id: int | None = None,
    ) -> int:
        template = self.game_template
        if template is not None and (
            type(state) is not type(template)
            or state.board_shape != template.board_shape
        ):
            raise GatewayError(
                f"this gateway serves {type(template).__name__} "
                f"{template.board_shape}; cannot host "
                f"{type(state).__name__} {state.board_shape}"
            )
        agent = None
        if self.backend == "thread":
            # a warm tree per session: the subtree behind each played move
            # carries over, so later moves start from reused statistics
            agent = TreeReuseMCTS(
                self._shared_evaluator,
                c_puct=self.c_puct,
                rng=self.rng.spawn(1)[0],
                tree_backend=self.tree_backend,
            )
        if session_id is None:
            session_id = self._next_session_id
            self._next_session_id += 1
        else:
            # journal recovery re-admits under the *original* id; ids
            # stay monotonic and never reused across the restart
            self._next_session_id = max(self._next_session_id, session_id + 1)
        self._sessions[session_id] = _Session(
            session_id,
            state,
            agent,
            self.rng.spawn(1)[0],
            self.clock.monotonic(),
            history=history,
        )
        self._created += 1
        if self._journal is not None and not self._journal_muted:
            name, size = game_wire_name(state)
            self._journal.open_session(session_id, name, size, history or [])
        return session_id

    def _get(self, session_id: int) -> _Session:
        session = self._sessions.get(session_id)
        if session is None or session.status is not SessionStatus.ACTIVE:
            raise SessionNotFound(f"no active session {session_id}")
        return session

    async def resign(self, session_id: int) -> SessionStatus:
        """Client resigns; the session is closed and removed."""
        session = self._get(session_id)
        async with session.lock:
            # recheck under the lock: an in-flight move we queued behind
            # may just have finished the game (same pattern as play_move)
            if session.status is not SessionStatus.ACTIVE:
                raise SessionNotFound(f"no active session {session_id}")
            session.status = SessionStatus.RESIGNED
            self._sessions.pop(session_id, None)
            self._resigned += 1
            if self._journal is not None:
                self._journal.close_session(session_id, "resigned")
        return session.status

    # -- moves ---------------------------------------------------------------
    async def play_move(
        self,
        session_id: int,
        action: int | None = None,
        deadline_ms: float | None = None,
        request_id: str | None = None,
    ) -> MoveReply:
        """Serve one move under a wall-clock deadline.

        *action* is the client's move to apply first (``None`` asks the
        engine to move in the current position -- e.g. when the engine
        plays first, or for engine-vs-engine driving).  If the client's
        move ends the game no search runs and ``engine_action`` is
        ``None``.  Otherwise the engine searches under
        ``SearchBudget(num_playouts, remaining deadline)`` and plays the
        visit-count argmax.

        *request_id* makes the move idempotent: a repeat of a completed
        ``(session, request_id)`` returns the cached reply, and a repeat
        racing the original awaits the original's result -- so a client
        retrying after a :class:`GatewayConnectionError` (reply lost in
        transit) can never double-apply a move.  Retries short-circuit
        *before* admission control: answering from cache is not new
        load.

        Latency stamps, ``last_active`` and the idle-GC sweep all read
        the *same* injected clock's ``monotonic()``: a session's
        activity and the sweep judging it can never disagree about what
        time it is (the historic ``perf_counter``-vs-``monotonic`` mix).
        """
        if request_id is None:
            return await self._play_move_once(session_id, action, deadline_ms, None)
        key = (session_id, str(request_id))
        cached = self._reply_cache.get(key)
        if cached is not None:
            self._deduped += 1
            return cached
        pending = self._inflight_rids.get(key)
        if pending is not None:
            self._deduped += 1
            # shield: cancelling this duplicate must not cancel the
            # original computation other callers may be awaiting
            return await asyncio.shield(pending)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight_rids[key] = future
        try:
            reply = await self._play_move_once(
                session_id, action, deadline_ms, str(request_id)
            )
        except BaseException as exc:
            self._inflight_rids.pop(key, None)
            future.set_exception(exc)
            # failures are NOT cached: a retry re-executes.  Touch the
            # exception so a duplicate-free future never warns.
            future.exception()
            raise
        self._inflight_rids.pop(key, None)
        future.set_result(reply)
        self._reply_cache[key] = reply
        while len(self._reply_cache) > self._reply_cache_size:
            self._reply_cache.pop(next(iter(self._reply_cache)))
        return reply

    async def _play_move_once(
        self,
        session_id: int,
        action: int | None,
        deadline_ms: float | None,
        rid: str | None = None,
    ) -> MoveReply:
        t0 = self.clock.monotonic()
        deadline = self.deadline_ms if deadline_ms is None else float(deadline_ms)
        if deadline <= 0:
            raise GatewayError("deadline_ms must be positive")
        session = self._get(session_id)
        # admission control BEFORE queueing on the session lock or the
        # executor: over capacity, shed load instead of growing a queue
        if self._inflight >= self.max_inflight:
            self._rejected += 1
            raise GatewayOverloaded(
                f"{self._inflight} moves in flight (limit {self.max_inflight})"
            )
        self._inflight += 1
        try:
            async with session.lock:
                if session.status is not SessionStatus.ACTIVE:
                    raise SessionNotFound(f"no active session {session_id}")
                reply = await self._play_move_locked(
                    session, action, deadline, t0, rid
                )
        finally:
            self._inflight -= 1
        latency_ms = (self.clock.monotonic() - t0) * 1e3
        self.latency.record(latency_ms / 1e3)
        self._moves_served += 1
        if latency_ms > deadline + self.deadline_tolerance_ms:
            self._deadline_misses += 1
        session.last_active = self.clock.monotonic()
        return MoveReply(
            session_id=session_id,
            engine_action=reply[0],
            prior=reply[1],
            done=reply[2],
            winner=reply[3],
            status=session.status,
            latency_ms=latency_ms,
            deadline_ms=deadline,
            move_number=session.moves,
        )

    async def _play_move_locked(
        self,
        session: _Session,
        action: int | None,
        deadline: float,
        t0: float,
        rid: str | None = None,
    ) -> tuple[int | None, np.ndarray | None, bool, int | None]:
        result = await self._apply_move_locked(session, action, deadline, t0)
        if self._journal is not None:
            # journal under the session lock, so records land in the same
            # order the moves applied.  One record per *completed* logical
            # move: a move that errors after partially applying is not
            # journaled -- the journal may trail live state by at most the
            # in-flight move, the same guarantee the cluster's shadow
            # history gives.  The rid and reply essentials ride along so a
            # survivor can answer a retry whose reply died with this shard.
            engine_action, _prior, done, winner = result
            applied: list[int] = []
            if action is not None:
                applied.append(int(action))
            if engine_action is not None:
                applied.append(int(engine_action))
            self._journal.move(
                session.session_id, rid, applied, engine_action, done, winner
            )
            if done:
                self._journal.close_session(session.session_id, "finished")
        return result

    async def _apply_move_locked(
        self,
        session: _Session,
        action: int | None,
        deadline: float,
        t0: float,
    ) -> tuple[int | None, np.ndarray | None, bool, int | None]:
        # stamp activity at move *start* as well as completion: a GC
        # sweep during a long search sees a fresh timestamp, not one
        # stale since the previous move (the held lock is the backstop)
        session.last_active = t0
        game = session.game
        if action is not None:
            # validate the untrusted wire value before it indexes anything
            if not isinstance(action, (int, np.integer)) or isinstance(
                action, bool
            ):
                raise InvalidMove(f"action must be an integer, got {action!r}")
            if not 0 <= action < game.action_size:
                raise InvalidMove(
                    f"action {action} out of range [0, {game.action_size})"
                )
            if game.is_terminal or not bool(game.legal_mask()[action]):
                raise InvalidMove(f"illegal action {action}")
            game.step(int(action))
            session.moves += 1
            session.history.append(int(action))
            if session.agent is not None:
                session.agent.observe(int(action))
            if game.is_terminal:
                self._finish(session)
                return None, None, True, int(game.winner)
        elif game.is_terminal:  # defensive: table never holds terminal actives
            self._finish(session)
            return None, None, True, int(game.winner)

        # the search gets whatever wall clock the request has left after
        # validation/queueing; floor at 1ms so an exhausted allowance
        # still yields the budget's min_playouts (a valid, if tiny, prior)
        elapsed_ms = (self.clock.monotonic() - t0) * 1e3
        budget = SearchBudget(
            num_playouts=self.num_playouts,
            time_budget_ms=max(1.0, deadline - elapsed_ms),
            clock=self.clock,
        )
        loop = asyncio.get_running_loop()
        if self.backend == "process":
            prior = await loop.run_in_executor(
                self._executor,
                _process_move_search,
                self._fork_key,
                game.copy(),
                budget,
                self.c_puct,
                self.tree_backend,
                int(session.rng.integers(np.iinfo(np.int64).max)),
            )
        else:
            agent = session.agent
            assert agent is not None
            if self._bus is not None:
                # busy-headcount bracketing: the bus flushes a fused
                # batch as soon as every *currently searching* session
                # has a leaf pending, so the threshold tracks real
                # concurrency instead of a static guess
                self._bus.begin_search()
                try:
                    prior = await loop.run_in_executor(
                        self._executor, agent.get_action_prior, game, budget
                    )
                finally:
                    self._bus.end_search()
            else:
                prior = await loop.run_in_executor(
                    self._executor, agent.get_action_prior, game, budget
                )
        engine_action = int(np.argmax(prior))
        game.step(engine_action)
        session.moves += 1
        session.history.append(engine_action)
        if session.agent is not None:
            session.agent.observe(engine_action)
        if game.is_terminal:
            self._finish(session)
            return engine_action, prior, True, int(game.winner)
        return engine_action, prior, False, None

    def _finish(self, session: _Session) -> None:
        session.status = SessionStatus.FINISHED
        self._sessions.pop(session.session_id, None)
        self._finished += 1

    # -- journal recovery ------------------------------------------------------
    def _recover_from_journal(self) -> None:
        """Re-admit every session the journal says was live at the crash.

        Each open session's history is replayed through a fresh game
        (legality-checked: a corrupt-but-checksum-valid record must not
        admit an impossible position) and re-admitted under its
        *original* id at its exact position.  Unreplayable sessions
        (unknown game, illegal line) are counted, not fatal.  The log is
        then snapshot-compacted so the next crash replays one record per
        session instead of the full move history.
        """
        self._journal_recovery_done = True
        assert self._journal is not None
        replays, _raw = replay_sessions(self._journal.directory)
        live: list[SessionReplay] = []
        self._journal_muted = True
        try:
            for sid in sorted(replays):
                rep = replays[sid]
                if not rep.open:
                    continue
                if rep.game is None:
                    self._journal_unrecoverable += 1
                    continue
                try:
                    state = build_game(rep.game, rep.size)
                    for ply, a in enumerate(rep.history):
                        if state.is_terminal or not (
                            0 <= a < state.action_size
                            and bool(state.legal_mask()[a])
                        ):
                            raise GatewayError(
                                f"illegal journaled action {a} at ply {ply}"
                            )
                        state.step(a)
                except GatewayError:
                    self._journal_unrecoverable += 1
                    continue
                if state.is_terminal:
                    continue  # last journaled move ended the game
                self._admit(state, history=rep.history, session_id=sid)
                self._journal_recovered += 1
                live.append(rep)
        finally:
            self._journal_muted = False
        self._journal.snapshot(live)

    # -- telemetry -----------------------------------------------------------
    def stats(self) -> GatewayStats:
        bus = self._bus.stats() if self._bus is not None else None
        return GatewayStats(
            sessions_created=self._created,
            sessions_active=len(self._sessions),
            sessions_finished=self._finished,
            sessions_resigned=self._resigned,
            sessions_expired=self._expired,
            moves_served=self._moves_served,
            rejected=self._rejected,
            deadline_misses=self._deadline_misses,
            inflight=self._inflight,
            latency_p50_ms=self.latency.percentile(50) * 1e3,
            latency_p95_ms=self.latency.percentile(95) * 1e3,
            latency_p99_ms=self.latency.percentile(99) * 1e3,
            latency_mean_ms=self.latency.mean * 1e3,
            sessions_drained=self._drained,
            sessions_restored=self._restored,
            deduped_replies=self._deduped,
            drain_rejected=self._drain_rejected,
            draining=self._draining,
            shard_id=self.shard_id,
            weights_version=self.weights_version,
            bus_enabled=bus is not None,
            bus_requests=bus.requests if bus else 0,
            bus_batches=bus.batches if bus else 0,
            bus_occupancy=bus.mean_occupancy if bus else 0.0,
            bus_deadline_flushes=bus.deadline_flushes if bus else 0,
            bus_linger_flushes=bus.linger_flushes if bus else 0,
            journal_enabled=(
                self._journal is not None and not self._journal.disabled
            ),
            journal_fsync=(
                self._journal.fsync if self._journal is not None else None
            ),
            journal_records=(
                self._journal.records_written if self._journal is not None else 0
            ),
            journal_errors=(
                self._journal.io_errors if self._journal is not None else 0
            ),
            journal_recovered=self._journal_recovered,
            journal_unrecoverable=self._journal_unrecoverable,
        )


# -- wire layer ---------------------------------------------------------------
class GatewayServer:
    """Newline-delimited-JSON TCP front for a :class:`MatchGateway`.

    One request per line, one reply per line.  Ops: ``new`` (game, size),
    ``move`` (session, action, deadline_ms), ``resign`` (session),
    ``stats``, ``ping``.  Failures reply ``{"ok": false, "error": ...,
    "code": ...}`` with the HTTP-style code of the gateway error (503 for
    backpressure rejections), keeping the connection open.
    """

    def __init__(
        self, gateway: MatchGateway, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.gateway = gateway
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._handlers: set[asyncio.Task] = set()

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns ``(host, port)`` (the port is
        the kernel-assigned one when constructed with ``port=0``)."""
        await self.gateway.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            # Server.close() only stops accepting -- it does not end open
            # connections, and on Python >= 3.12.1 wait_closed() blocks
            # until every handler finishes.  Cancel the live handlers
            # (parked on readline) so shutdown cannot hang on an idle
            # client.
            for task in list(self._handlers):
                task.cancel()
            if self._handlers:
                await asyncio.gather(*self._handlers, return_exceptions=True)
            await self._server.wait_closed()
            self._server = None
        await self.gateway.aclose()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                reply = await self._dispatch(line)
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # aclose() cancels live connection handlers; absorb the
            # cancellation so shutdown closes the socket without noise
            pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
            op = request.get("op")
            if op == "ping":
                return {
                    "ok": True,
                    "op": "ping",
                    "shard_id": self.gateway.shard_id,
                    "draining": self.gateway.draining,
                }
            if op == "new":
                session_id = await self.gateway.create_session(
                    request.get("game", "tictactoe"), request.get("size")
                )
                return {"ok": True, "session": session_id}
            if op == "restore":
                session_id, done, winner = await self.gateway.restore_session(
                    request.get("game", "tictactoe"),
                    request.get("size"),
                    request.get("actions"),
                )
                return {
                    "ok": True,
                    "session": session_id,
                    "done": done,
                    "winner": winner,
                }
            if op == "drain":
                self.gateway.begin_drain()
                drained = await self.gateway.export_sessions()
                return {"ok": True, "drained": drained}
            if op == "drain_light":
                self.gateway.begin_drain()
                return {"ok": True, "draining": True}
            if op == "resume":
                self.gateway.resume_admission()
                return {"ok": True, "draining": False}
            if op == "version":
                return {
                    "ok": True,
                    "shard_id": self.gateway.shard_id,
                    "weights_version": self.gateway.weights_version,
                    "plan_version": self.gateway.plan_version,
                    "draining": self.gateway.draining,
                    "sessions": self.gateway.session_count,
                }
            if op == "load_weights":
                version = self.gateway.load_weights(request["state"])
                return {"ok": True, "weights_version": version}
            if op == "move":
                rid = request.get("rid")
                reply = await self.gateway.play_move(
                    int(request["session"]),
                    request.get("action"),
                    request.get("deadline_ms"),
                    request_id=None if rid is None else str(rid),
                )
                return {
                    "ok": True,
                    "session": reply.session_id,
                    "engine_action": reply.engine_action,
                    "prior": None
                    if reply.prior is None
                    else [round(float(p), 6) for p in reply.prior],
                    "done": reply.done,
                    "winner": reply.winner,
                    "status": reply.status.value,
                    "latency_ms": round(reply.latency_ms, 3),
                    "deadline_ms": reply.deadline_ms,
                    "move_number": reply.move_number,
                }
            if op == "resign":
                status = await self.gateway.resign(int(request["session"]))
                return {"ok": True, "status": status.value}
            if op == "stats":
                return {"ok": True, "stats": self.gateway.stats().as_dict()}
            raise GatewayError(f"unknown op {op!r}")
        except GatewayError as exc:
            return {"ok": False, "error": str(exc), "code": exc.code}
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            return {"ok": False, "error": f"bad request: {exc}", "code": 400}
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 -- serving boundary
            # e.g. BrokenProcessPool after a worker OOM-kill: reply 500
            # and keep the connection alive instead of dying with a bare
            # EOF at the client
            return {
                "ok": False,
                "error": f"internal error: {type(exc).__name__}: {exc}",
                "code": 500,
            }


class GatewayClient:
    """Asyncio client for :class:`GatewayServer` (examples, load harness,
    the cluster router's shard links).

    One client = one connection = one request in flight at a time; drive
    concurrent load with one client per simulated player.

    Every transport failure surfaces as the *typed*
    :class:`GatewayConnectionError` -- a peer that dies mid-reply used to
    leak a bare ``json.JSONDecodeError`` (torn line) or
    ``ConnectionResetError`` to the caller; now the retry path has one
    exception to catch.  *timeout_s* bounds each request's read (and the
    connect), measured on *clock* so virtual-time harnesses can exercise
    timeout paths deterministically.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        timeout_s: float | None = None,
        clock: Clock | None = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.timeout_s = timeout_s
        self.clock: Clock = WALL_CLOCK if clock is None else clock

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        timeout_s: float | None = None,
        clock: Clock | None = None,
    ) -> "GatewayClient":
        clk: Clock = WALL_CLOCK if clock is None else clock
        try:
            opening = asyncio.open_connection(host, port)
            if timeout_s is not None:
                reader, writer = await clock_timeout(clk, opening, timeout_s)
            else:
                reader, writer = await opening
        except ClockTimeout as exc:
            raise GatewayConnectionError(
                f"connect to {host}:{port} timed out after {timeout_s:g}s"
            ) from exc
        except (ConnectionError, OSError) as exc:
            raise GatewayConnectionError(
                f"connect to {host}:{port} failed: {exc}"
            ) from exc
        return cls(reader, writer, timeout_s=timeout_s, clock=clk)

    async def request(
        self, payload: dict, *, timeout_s: float | None = None
    ) -> dict:
        """Raw round trip; returns the reply dict (``ok`` may be false --
        load harnesses count rejections from it).  Transport failures
        (disconnect, torn reply line, read timeout) raise
        :class:`GatewayConnectionError`."""
        timeout = self.timeout_s if timeout_s is None else timeout_s
        try:
            self._writer.write(json.dumps(payload).encode() + b"\n")
            await self._writer.drain()
            reading = self._reader.readline()
            if timeout is not None:
                line = await clock_timeout(self.clock, reading, timeout)
            else:
                line = await reading
        except ClockTimeout as exc:
            raise GatewayConnectionError(
                f"no reply within {timeout:g}s"
            ) from exc
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            OSError,
        ) as exc:
            raise GatewayConnectionError(
                f"connection failed mid-request: {exc!r}"
            ) from exc
        if not line:
            raise GatewayConnectionError("gateway closed the connection")
        if not line.endswith(b"\n"):
            # EOF mid-line: the peer died while writing this reply
            raise GatewayConnectionError(
                f"torn reply line ({len(line)} bytes, no terminator)"
            )
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise GatewayConnectionError(
                f"corrupt reply line: {exc}"
            ) from exc

    def _checked(self, reply: dict) -> dict:
        if not reply.get("ok"):
            code = reply.get("code", 400)
            exc_type = {404: SessionNotFound, 503: GatewayOverloaded}.get(
                code, GatewayError
            )
            raise exc_type(reply.get("error", "gateway error"))
        return reply

    async def new_match(
        self, game: str = "tictactoe", size: int | None = None
    ) -> int:
        reply = self._checked(
            await self.request({"op": "new", "game": game, "size": size})
        )
        return int(reply["session"])

    async def move(
        self,
        session: int,
        action: int | None = None,
        deadline_ms: float | None = None,
        request_id: str | None = None,
    ) -> dict:
        payload = {
            "op": "move",
            "session": session,
            "action": action,
            "deadline_ms": deadline_ms,
        }
        if request_id is not None:
            payload["rid"] = request_id
        return self._checked(await self.request(payload))

    async def ping(self) -> dict:
        return self._checked(await self.request({"op": "ping"}))

    async def resign(self, session: int) -> dict:
        return self._checked(await self.request({"op": "resign", "session": session}))

    async def stats(self) -> dict:
        reply = self._checked(await self.request({"op": "stats"}))
        return reply["stats"]

    async def aclose(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
