"""Cross-session fused evaluation bus: one batched pipeline for all
live gateway sessions.

E16's diagnosis: once gateway concurrency rises, every session's
TreeReuseMCTS evaluates its leaves independently -- batch-of-one
forwards, N GIL-sharing threads each serialised behind the other N-1
singleton evaluations -- and p99 move latency blows the deadline (16
sessions -> 309 ms against a 100 ms promise).  This is exactly the
batching economics the paper quantifies within one search (the E2
B*-per-N V-curves) surfacing *across users*: the accelerator wants one
fused batch, the sessions are each feeding it crumbs.

:class:`EvaluationBus` is the shared, deadline-aware service that fixes
it.  Every session's search scheme keeps calling its plain
``evaluator.evaluate(game)``; behind that seam a :class:`BusEvaluator`
facade submits the leaf to the bus tagged with the session's armed
:class:`~repro.mcts.budget.BudgetSnapshot` (published per-thread by
``BudgetClock.activated()``), and the bus fuses concurrent leaves into
one ``evaluate_batch`` call.  Scheduling policy:

- **Busy-headcount threshold.**  The flush threshold tracks the number
  of searches currently in flight (the farm's shm-ring idiom in
  in-process form): when every active search has a leaf pending, waiting
  longer buys nothing, so the submission that meets the headcount runs
  the fused batch inline.
- **Single armed linger.**  Below the threshold, exactly one scheduler
  (a daemon thread on wall clocks; the submitting caller itself in the
  deterministic inline mode) flushes when the *oldest* pending leaf has
  aged past ``linger`` -- the same aged-oldest window the
  :class:`~repro.parallel.evaluator.AcceleratorQueue` uses, never one
  private timer per waiter.
- **Deadline priority.**  A leaf whose budget has less than
  ``deadline_lead_ms`` remaining flushes immediately (an expired session
  must not linger for batch-mates it will never use), and when the
  backlog exceeds ``max_batch`` the entries closest to budget expiry go
  out first.

When the bus is disabled the gateway degrades gracefully to the
historical per-session evaluation path -- the bus is an overlay on the
evaluator seam, not a rewrite of it.  Evaluations are value-identical
either way: a fused ``evaluate_batch`` row equals the singleton
``evaluate`` result (the farm's exact-determinism suite already stands
on this), so generous-deadline bit-parity is preserved for every scheme.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from contextlib import contextmanager
from dataclasses import dataclass

from repro.games.base import Game
from repro.mcts.budget import BudgetSnapshot, active_budget_snapshot
from repro.mcts.evaluation import Evaluation, Evaluator
from repro.utils.clock import WALL_CLOCK, Clock, WallClock

__all__ = ["BusClosed", "EvalBusStats", "EvaluationBus", "BusEvaluator"]


class BusClosed(RuntimeError):
    """Submission after :meth:`EvaluationBus.close` (gateway shutdown)."""


class _Entry:
    """One pending leaf: who waits, since when, and how urgently."""

    __slots__ = ("game", "fut", "enqueued_at", "deadline_at")

    def __init__(
        self, game: Game, fut: Future, enqueued_at: float, deadline_at: float | None
    ) -> None:
        self.game = game
        self.fut = fut
        self.enqueued_at = enqueued_at
        self.deadline_at = deadline_at


@dataclass(frozen=True)
class EvalBusStats:
    """Bus-lifetime scheduling telemetry.

    ``mean_occupancy`` is the Section-3.3 figure of merit (requests per
    fused batch); the flush-cause counters say *why* batches went out --
    a healthy loaded bus flushes mostly at the threshold, a bus serving
    one idle session flushes inline, and deadline flushes count the
    moments budget expiry pre-empted batching.
    """

    requests: int
    batches: int
    mean_occupancy: float
    threshold_flushes: int
    linger_flushes: int
    deadline_flushes: int
    inline_flushes: int
    max_batch_seen: int
    busy_searches: int
    pending: int

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "mean_occupancy": round(self.mean_occupancy, 3),
            "threshold_flushes": self.threshold_flushes,
            "linger_flushes": self.linger_flushes,
            "deadline_flushes": self.deadline_flushes,
            "inline_flushes": self.inline_flushes,
            "max_batch_seen": self.max_batch_seen,
            "busy_searches": self.busy_searches,
            "pending": self.pending,
        }


class EvaluationBus:
    """Deadline-aware shared evaluation service over one batched evaluator.

    Parameters
    ----------
    evaluator : the backing evaluator; fused batches go through its
        ``evaluate_batch`` (the fused-plan pipeline when a network sits
        behind it).
    max_batch : hard cap on one fused batch; an over-full backlog is
        split with the most-urgent entries going out first.
    linger : seconds the oldest pending leaf tolerates before a partial
        flush (the batching window below the busy-headcount threshold).
    deadline_lead_ms : urgency horizon -- a leaf whose budget has at most
        this many milliseconds remaining flushes immediately, and the
        scheduler arms its timer so no pending leaf sleeps into that
        horizon.
    clock : time source for enqueue ages and deadline math (the
        gateway's clock, so budget deadlines and bus timestamps share a
        timebase).
    scheduler : ``"thread"`` (a daemon scheduler thread owns the linger
        timer -- wall clocks only), ``"inline"`` (no thread; submitters
        flush synchronously -- the deterministic mode virtual-time
        harnesses rely on), or ``None`` to pick by clock type.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        *,
        max_batch: int = 64,
        linger: float = 0.002,
        deadline_lead_ms: float = 5.0,
        clock: Clock | None = None,
        scheduler: str | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if linger <= 0:
            raise ValueError("linger must be positive")
        if deadline_lead_ms < 0:
            raise ValueError("deadline_lead_ms must be >= 0")
        self.evaluator = evaluator
        self.max_batch = max_batch
        self.linger = linger
        self.deadline_lead_ms = deadline_lead_ms
        self.clock: Clock = WALL_CLOCK if clock is None else clock
        wall = isinstance(self.clock, WallClock)
        if scheduler is None:
            scheduler = "thread" if wall else "inline"
        if scheduler not in ("thread", "inline"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        if scheduler == "thread" and not wall:
            # the scheduler thread sleeps on a condition variable in real
            # time; pairing that with virtual timestamps would deadlock
            raise ValueError(
                "scheduler='thread' requires a wall clock; virtual-time "
                "harnesses run the bus inline for determinism"
            )
        self._cond = threading.Condition()
        self._entries: list[_Entry] = []
        self._busy = 0
        self._closed = False
        # lifetime counters (all mutated under the condition's lock)
        self._requests = 0
        self._batches = 0
        self._threshold_flushes = 0
        self._linger_flushes = 0
        self._deadline_flushes = 0
        self._inline_flushes = 0
        self._max_batch_seen = 0
        self._thread: threading.Thread | None = None
        if scheduler == "thread":
            self._thread = threading.Thread(
                target=self._scheduler_main,
                name="evalbus-scheduler",
                daemon=True,
            )
            self._thread.start()

    # -- search headcount ----------------------------------------------------
    def begin_search(self) -> None:
        """A session's search entered flight: raise the flush threshold."""
        with self._cond:
            self._busy += 1

    def end_search(self) -> None:
        """A search left flight: lower the threshold, flushing any backlog
        the smaller headcount now satisfies (the round-tail rule -- the
        remaining searches must never wait on departed ones)."""
        batch = None
        with self._cond:
            self._busy = max(0, self._busy - 1)
            if self._entries and len(self._entries) >= self._threshold():
                batch = self._take_locked("threshold")
        if batch:
            self._run_batch(batch)

    @contextmanager
    def searching(self):
        """``begin_search`` / ``end_search`` as a context manager."""
        self.begin_search()
        try:
            yield self
        finally:
            self.end_search()

    def _threshold(self) -> int:
        # flush once every in-flight search has a leaf aboard; clamp to
        # the device cap, and to 1 so an unregistered caller never waits
        return max(1, min(self._busy, self.max_batch))

    # -- submission ----------------------------------------------------------
    def submit(
        self, game: Game, *, snapshot: BudgetSnapshot | None = None
    ) -> Future:
        """Enqueue a leaf; returns a future resolving to its Evaluation.

        *snapshot* tags the leaf with its search's remaining budget;
        ``None`` reads the submitting thread's active budget (the scheme
        seam).  Deadlines are converted to this bus's clock at submit
        time, so sessions running on different clocks still compare.
        """
        if snapshot is None:
            snapshot = active_budget_snapshot()
        fut: Future = Future()
        batch = None
        with self._cond:
            if self._closed:
                raise BusClosed("evaluation bus is closed")
            now = self.clock.perf_counter()
            deadline_at = None
            remaining_ms = None if snapshot is None else snapshot.remaining_ms
            if remaining_ms is not None:
                deadline_at = now + remaining_ms / 1e3
            self._entries.append(_Entry(game, fut, now, deadline_at))
            if len(self._entries) >= self._threshold():
                batch = self._take_locked("threshold")
            elif remaining_ms is not None and remaining_ms <= self.deadline_lead_ms:
                batch = self._take_locked("deadline")
            else:
                # re-arm the scheduler's timer around the new entry
                self._cond.notify_all()
        if batch is not None:
            self._run_batch(batch)
        return fut

    def evaluate(
        self, game: Game, *, snapshot: BudgetSnapshot | None = None
    ) -> Evaluation:
        """Submit and wait (the :class:`BusEvaluator` hot path).

        In thread mode waiters are active flushers sharing one armed
        window with the scheduler: whoever observes the aged-oldest (or
        deadline-pulled) due instant first takes the *whole* backlog,
        exactly the :class:`~repro.parallel.evaluator.AcceleratorQueue`
        single-window rule.  A waiter must not park passively on its
        future: the scheduler thread can be pinned inside an earlier
        batch's GIL-heavy forward pass precisely when traffic is
        heaviest, and any leaf that sleeps through that stall drags a
        whole move's tail latency with it.  In inline mode (virtual-time
        harnesses) the caller flushes synchronously -- nothing else can
        be concurrent, so the result is deterministic and immediate.
        """
        fut = self.submit(game, snapshot=snapshot)
        if self._thread is None:
            if not fut.done():
                self.flush()
            return fut.result()
        while True:
            if fut.done():
                return fut.result()
            batch = None
            with self._cond:
                wait = self.linger
                if self._entries:
                    now = self.clock.perf_counter()
                    due = self._due_locked(now)
                    if now >= due:
                        aged = (
                            now >= self._entries[0].enqueued_at + self.linger
                        )
                        batch = self._take_locked(
                            "linger" if aged else "deadline"
                        )
                    else:
                        wait = due - now
                # an empty backlog means our leaf rides a batch another
                # thread is evaluating; wait for its result below
            if batch is not None:
                self._run_batch(batch)
                continue
            try:
                return fut.result(timeout=max(wait, 1e-5))
            # On Python < 3.11 concurrent.futures.TimeoutError is NOT the
            # builtin TimeoutError, so both must be caught.
            except (TimeoutError, FuturesTimeoutError):
                continue

    def flush(self) -> int:
        """Force out whatever is pending; returns the batch size."""
        with self._cond:
            batch = self._take_locked("inline")
        if batch:
            self._run_batch(batch)
        return 0 if batch is None else len(batch)

    # -- internals -----------------------------------------------------------
    def _take_locked(self, reason: str) -> list[_Entry] | None:
        """Detach up to ``max_batch`` entries (most urgent first when the
        backlog is over-full).  Caller holds the lock and runs the batch
        *outside* it."""
        if not self._entries:
            return None
        if len(self._entries) <= self.max_batch:
            batch = self._entries
            self._entries = []
        else:
            # deadline priority: sessions closest to budget expiry go in
            # this batch; undated entries (count-only budgets) queue behind
            order = sorted(
                range(len(self._entries)),
                key=lambda i: (
                    self._entries[i].deadline_at is None,
                    self._entries[i].deadline_at
                    if self._entries[i].deadline_at is not None
                    else self._entries[i].enqueued_at,
                ),
            )
            chosen = set(order[: self.max_batch])
            batch = [e for i, e in enumerate(self._entries) if i in chosen]
            self._entries = [
                e for i, e in enumerate(self._entries) if i not in chosen
            ]
        if reason == "threshold":
            self._threshold_flushes += 1
        elif reason == "linger":
            self._linger_flushes += 1
        elif reason == "deadline":
            self._deadline_flushes += 1
        else:
            self._inline_flushes += 1
        return batch

    def _due_locked(self, now: float) -> float:
        """Earliest instant the backlog must flush: the aged-oldest linger
        window, pulled forward by any entry's deadline horizon."""
        due = self._entries[0].enqueued_at + self.linger
        lead = self.deadline_lead_ms / 1e3
        for entry in self._entries:
            if entry.deadline_at is not None:
                due = min(due, entry.deadline_at - lead)
        return due

    def _run_batch(self, batch: list[_Entry]) -> None:
        games = [e.game for e in batch]
        try:
            evaluations = self.evaluator.evaluate_batch(games)
        except BaseException as err:  # propagate to every waiter
            for entry in batch:
                entry.fut.set_exception(err)
            return
        with self._cond:
            self._batches += 1
            self._requests += len(batch)
            if len(batch) > self._max_batch_seen:
                self._max_batch_seen = len(batch)
        for entry, ev in zip(batch, evaluations):
            entry.fut.set_result(ev)

    def _scheduler_main(self) -> None:
        try:
            self._scheduler_loop()
        except BaseException as err:  # pragma: no cover - hardening
            # never strand waiters behind a dead scheduler: fail the
            # backlog loudly (the failsafe covers entries in flight)
            with self._cond:
                self._closed = True
                entries, self._entries = self._entries, []
            for entry in entries:
                if not entry.fut.done():
                    entry.fut.set_exception(err)
            raise

    def _scheduler_loop(self) -> None:
        while True:
            batch = None
            with self._cond:
                while not self._closed and not self._entries:
                    self._cond.wait()
                if not self._entries:
                    return  # closed and drained
                now = self.clock.perf_counter()
                due = self._due_locked(now)
                if len(self._entries) >= self._threshold():
                    batch = self._take_locked("threshold")
                elif now >= due or self._closed:
                    # which bound pulled the trigger decides the label
                    aged = now >= self._entries[0].enqueued_at + self.linger
                    batch = self._take_locked(
                        "linger" if aged or self._closed else "deadline"
                    )
                else:
                    self._cond.wait(timeout=due - now)
            if batch is not None:
                self._run_batch(batch)

    # -- lifecycle / telemetry ------------------------------------------------
    def close(self) -> None:
        """Stop accepting leaves, flush the backlog, reap the scheduler.

        Idempotent; in-flight waiters are resolved (or failed) rather
        than stranded.
        """
        with self._cond:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
            self._cond.notify_all()
        if already:
            return
        self.flush()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pending_count(self) -> int:
        with self._cond:
            return len(self._entries)

    @property
    def mean_occupancy(self) -> float:
        with self._cond:
            if self._batches == 0:
                return 0.0
            return self._requests / self._batches

    def stats(self) -> EvalBusStats:
        with self._cond:
            return EvalBusStats(
                requests=self._requests,
                batches=self._batches,
                mean_occupancy=(
                    self._requests / self._batches if self._batches else 0.0
                ),
                threshold_flushes=self._threshold_flushes,
                linger_flushes=self._linger_flushes,
                deadline_flushes=self._deadline_flushes,
                inline_flushes=self._inline_flushes,
                max_batch_seen=self._max_batch_seen,
                busy_searches=self._busy,
                pending=len(self._entries),
            )


class BusEvaluator(Evaluator):
    """Per-session :class:`~repro.mcts.evaluation.Evaluator` facade over a
    shared :class:`EvaluationBus`.

    The scheme's singleton ``evaluate`` rides the bus (tagged with the
    thread's active budget snapshot); an already-batched
    ``evaluate_batch`` bypasses accumulation and goes straight to the
    backing evaluator, mirroring
    :class:`~repro.parallel.evaluator.BatchingEvaluator`.
    """

    def __init__(self, bus: EvaluationBus) -> None:
        self.bus = bus

    def evaluate(self, game: Game) -> Evaluation:
        return self.bus.evaluate(game)

    def evaluate_batch(self, games: list[Game]) -> list[Evaluation]:
        return self.bus.evaluator.evaluate_batch(games)
