"""The paper's performance models (Equations 3-6).

The equations in the paper are written per *round*: one round is N worker
-iterations executing concurrently (the timelines of Figures 1-2).  The
evaluation metric, however, is the amortized **per-worker-iteration**
latency (Section 5.3), i.e. round latency divided by N.  The functions
here return the per-iteration form; multiply by N to recover the paper's
round-form equations verbatim:

Eq. 3  T^CPU_shared      ~ T_access * N + T_select + T_backup + T^CPU_DNN
Eq. 4  T^CPU-GPU_shared  ~ T_access * N + T_select + T_backup + T^GPU_DNN(batch=N)
Eq. 5  T^CPU_local       ~ max((T_select + T_backup) * N, T^CPU_DNN)
Eq. 6  T^CPU-GPU_local   ~ max((T_select + T_backup) * N, T_PCIe, T^GPU_DNN-compute(batch=B))

where T_PCIe = (N/B) * L + N / PCIe-bandwidth (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.hardware import GPUSpec

__all__ = [
    "ProfiledLatencies",
    "shared_tree_cpu_latency",
    "shared_tree_gpu_latency",
    "local_tree_cpu_latency",
    "local_tree_gpu_latency",
    "PerformanceModel",
]


@dataclass(frozen=True)
class ProfiledLatencies:
    """Design-time profiled quantities (Section 4.2, paragraph 1).

    Per-playout totals for a single worker on a single thread, in seconds.
    The shared/local split reflects the two memory regimes: the shared tree
    pays DDR costs, the local tree cache costs (Section 3.1).
    ``t_access`` is the paper's T_shared-tree-access: the serialised
    per-worker overhead of communicating root-level information through
    shared memory.
    """

    t_select_shared: float
    t_backup_shared: float
    t_select_local: float
    t_backup_local: float
    t_dnn_cpu: float
    t_access: float
    mean_expand_children: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "t_select_shared",
            "t_backup_shared",
            "t_select_local",
            "t_backup_local",
            "t_dnn_cpu",
            "t_access",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def in_tree_shared(self) -> float:
        return self.t_select_shared + self.t_backup_shared

    @property
    def in_tree_local(self) -> float:
        return self.t_select_local + self.t_backup_local


def shared_tree_cpu_latency(profile: ProfiledLatencies, num_workers: int) -> float:
    """Equation 3 (per-iteration form)."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    round_latency = (
        profile.t_access * num_workers
        + profile.in_tree_shared
        + profile.t_dnn_cpu
    )
    return round_latency / num_workers


def shared_tree_gpu_latency(
    profile: ProfiledLatencies, num_workers: int, gpu: GPUSpec
) -> float:
    """Equation 4 (per-iteration form): full-batched inference, batch = N."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    t_gpu = gpu.transfer_time(num_workers) + gpu.compute_time(num_workers)
    round_latency = profile.t_access * num_workers + profile.in_tree_shared + t_gpu
    return round_latency / num_workers


def local_tree_cpu_latency(profile: ProfiledLatencies, num_workers: int) -> float:
    """Equation 5 (per-iteration form): master in-tree vs N CPU inferences."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    return max(profile.in_tree_local, profile.t_dnn_cpu / num_workers)


def local_tree_gpu_latency(
    profile: ProfiledLatencies,
    num_workers: int,
    gpu: GPUSpec,
    batch_size: int,
) -> float:
    """Equation 6 (per-iteration form): CUDA-stream sub-batches of size B.

    The max() form of Equation 6 assumes the master's in-tree operations,
    the PCIe transfers and the GPU kernels overlap, which requires at
    least two sub-batches in flight (N/B >= 2 streams).  When B > N/2
    there is effectively a single stream, the pipeline degenerates, and
    master selections / transfer / kernel serialise -- the paper's
    Figure-3 observation that full-batch latency rises again ("the GPU
    waits for all the N [in-tree operations] before it can start").  This
    kink is what makes the sequence a V rather than monotone.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if not 1 <= batch_size <= num_workers:
        raise ValueError("batch_size must be in [1, num_workers]")
    in_tree = profile.in_tree_local
    t_pcie_per_iter = gpu.transfer_time(batch_size) / batch_size
    t_compute_per_iter = gpu.compute_time(batch_size) / batch_size
    if batch_size * 2 > num_workers:
        # fewer than two streams: no compute/selection overlap
        return in_tree + t_pcie_per_iter + t_compute_per_iter
    return max(in_tree, t_pcie_per_iter, t_compute_per_iter)


class PerformanceModel:
    """Convenience bundle: evaluate every scheme at one (N, platform)."""

    def __init__(self, profile: ProfiledLatencies, gpu: GPUSpec | None = None) -> None:
        self.profile = profile
        self.gpu = gpu

    def shared_cpu(self, n: int) -> float:
        return shared_tree_cpu_latency(self.profile, n)

    def local_cpu(self, n: int) -> float:
        return local_tree_cpu_latency(self.profile, n)

    def shared_gpu(self, n: int) -> float:
        if self.gpu is None:
            raise ValueError("no GPU spec configured")
        return shared_tree_gpu_latency(self.profile, n, self.gpu)

    def local_gpu(self, n: int, batch_size: int) -> float:
        if self.gpu is None:
            raise ValueError("no GPU spec configured")
        return local_tree_gpu_latency(self.profile, n, self.gpu, batch_size)

    def batch_latency_sequence(self, n: int) -> list[float]:
        """T[B] for B in 1..N -- the V-sequence Algorithm 4 searches."""
        return [self.local_gpu(n, b) for b in range(1, n + 1)]
