"""Performance models and the adaptive design-configuration workflow.

This package is the paper's Section 4:

- :mod:`repro.perfmodel.models`    -- Equations 3-6: per-iteration latency
  of the shared-tree and local-tree schemes on CPU-only and CPU-GPU
  platforms.
- :mod:`repro.perfmodel.profiling` -- design-time profiling of T_select,
  T_backup, T_DNN on a synthetic tree (Section 4.2, paragraph 1).
- :mod:`repro.perfmodel.vsearch`   -- Algorithm 4: O(log N) minimum search
  over the V-sequence of batch-size latencies.
- :mod:`repro.perfmodel.adaptive`  -- the design-configuration workflow
  that picks the scheme (and batch size B) at compile time.
"""

from repro.perfmodel.adaptive import AdaptiveConfig, DesignConfigurator
from repro.perfmodel.models import (
    PerformanceModel,
    ProfiledLatencies,
    local_tree_cpu_latency,
    local_tree_gpu_latency,
    shared_tree_cpu_latency,
    shared_tree_gpu_latency,
)
from repro.perfmodel.profiling import profile_virtual, profile_wallclock
from repro.perfmodel.vsearch import SearchTrace, find_v_minimum

__all__ = [
    "AdaptiveConfig",
    "DesignConfigurator",
    "PerformanceModel",
    "ProfiledLatencies",
    "SearchTrace",
    "find_v_minimum",
    "local_tree_cpu_latency",
    "local_tree_gpu_latency",
    "profile_virtual",
    "profile_wallclock",
    "shared_tree_cpu_latency",
    "shared_tree_gpu_latency",
]
