"""Design-time profiling (paper Section 4.2, first paragraph).

"We first obtain T_DNN, T_select and T_backup of a single worker on a
single thread by profiling their amortized execution time on the target
CPU for one iteration.  The DNN for profiling is filled with random
parameters and inputs of the same dimensions defined by the target
algorithm and application.  The T_select and T_backup are measured on a
synthetic tree constructed for one episode with random-generated UCT
scores, emulating the same fanout and depth limit defined by the DNN-MCTS
algorithm."

Two providers:

- :func:`profile_wallclock` -- measures the real Python implementation
  (SerialMCTS on a :class:`repro.games.synthetic.SyntheticTreeGame`), the
  literal analogue of the paper's procedure.  Useful for configuring the
  real-thread schemes on the actual host.
- :func:`profile_virtual` -- prices the same single-worker episode with a
  :class:`repro.simulator.workload.LatencyModel`, yielding the profile the
  analytic models need to predict the *simulated* platform.  This is the
  provider the figure benchmarks use (deterministic).
"""

from __future__ import annotations

import numpy as np

from repro.games.base import Game
from repro.mcts.evaluation import Evaluator, UniformEvaluator
from repro.mcts.node import Node
from repro.mcts.search import backup, expand, select_leaf
from repro.mcts.serial import SerialMCTS
from repro.perfmodel.models import ProfiledLatencies
from repro.simulator.hardware import PlatformSpec
from repro.simulator.workload import LatencyModel

__all__ = ["profile_wallclock", "profile_virtual"]


def profile_wallclock(
    game: Game,
    evaluator: Evaluator,
    num_playouts: int = 400,
    c_puct: float = 5.0,
    ddr_cache_ratio: float = 4.0,
    t_access: float = 0.0,
) -> ProfiledLatencies:
    """Profile the real implementation's amortized per-playout latencies.

    A single wall-clock profile cannot distinguish the DDR and cache
    regimes (the Python process has one memory hierarchy), so the local
    -regime numbers are taken as measured and the shared-regime numbers
    scaled by *ddr_cache_ratio* -- callers targeting real hardware should
    substitute a measured ratio.
    """
    engine = SerialMCTS(evaluator, c_puct=c_puct)
    engine.search(game, num_playouts)
    stats = engine.stats
    t_select_local = stats.select.amortized
    t_backup_local = stats.backup.amortized
    return ProfiledLatencies(
        t_select_shared=t_select_local * ddr_cache_ratio,
        t_backup_shared=t_backup_local * ddr_cache_ratio,
        t_select_local=t_select_local,
        t_backup_local=t_backup_local,
        t_dnn_cpu=stats.evaluate.amortized,
        t_access=t_access,
    )


def profile_virtual(
    game: Game,
    platform: PlatformSpec,
    evaluator: Evaluator | None = None,
    num_playouts: int = 400,
    c_puct: float = 5.0,
) -> ProfiledLatencies:
    """Price a single-worker episode with the platform's latency model.

    Runs the genuine serial search (so tree shape, path lengths and fanout
    are the real ones) and accumulates what each operation *would* cost in
    the two memory regimes.  ``t_access`` is derived from the serialised
    root handoff: one lock traversal plus one DDR node update for the
    descent and one for the backup -- the quantity Equation 3 multiplies
    by N.
    """
    if num_playouts < 1:
        raise ValueError("num_playouts must be >= 1")
    evaluator = evaluator or UniformEvaluator()
    lat = LatencyModel(platform)
    root = Node()
    select_shared = 0.0
    select_local = 0.0
    backup_shared = 0.0
    backup_local = 0.0
    expand_children: list[int] = []

    for _ in range(num_playouts):
        g = game.copy()
        node = root
        # per-playout master overheads of the local scheme: the root VL
        # update and one FIFO dispatch to the worker pool
        select_local += lat.vl_update(False) + lat.pipe()
        # descend, pricing each level in both regimes
        while not node.is_leaf and not node.is_terminal:
            nch = len(node.children)
            select_shared += lat.select_node(nch, shared=True) + lat.vl_update(True)
            select_local += lat.select_node(nch, shared=False) + lat.vl_update(False)
            from repro.mcts.uct import select_child  # local import avoids cycle

            node = select_child(node, c_puct)
            g.step(node.action)
            if g.is_terminal:
                node.terminal_value = g.terminal_value
        if node.is_terminal:
            value = node.terminal_value
            assert value is not None
        else:
            evaluation = evaluator.evaluate(g)
            nch = len(g.legal_actions())
            expand_children.append(nch)
            select_shared += lat.expand(nch, shared=True)
            select_local += lat.expand(nch, shared=False)
            value = expand(node, g, evaluation)
        depth = node.depth() + 1
        backup_shared += depth * (lat.backup_node(True) + lat.lock_overhead())
        backup_local += depth * lat.backup_node(False)
        backup(node, value)

    n = num_playouts
    t_access = 2.0 * (lat.lock_overhead() + lat.vl_update(shared=True))
    return ProfiledLatencies(
        t_select_shared=select_shared / n,
        t_backup_shared=backup_shared / n,
        t_select_local=select_local / n,
        t_backup_local=backup_local / n,
        t_dnn_cpu=lat.dnn_cpu(),
        t_access=t_access,
        mean_expand_children=float(np.mean(expand_children)) if expand_children else 0.0,
    )
