"""Runtime adaptive switching (extension of the paper's workflow).

The paper selects the parallel scheme once, at compile time, from
profiled application parameters (tree fanout, depth).  Those parameters
*drift during play*: a Gomoku board fills up, the fanout shrinks from 225
toward 1, and the in-tree/inference balance moves.  This module extends
the design-configuration workflow to **runtime**: re-profile the current
position every few moves, re-evaluate Equations 3-6, and switch the
underlying scheme between moves when the predicted winner flips.

Switching is only ever done between moves (never mid-search), so the
algorithmic guarantees of each scheme are untouched -- this is exactly
the "program template" property of Section 3.2 exercised dynamically.
"""

from __future__ import annotations

import numpy as np

from repro.games.base import Game
from repro.mcts.evaluation import Evaluator
from repro.mcts.node import Node
from repro.parallel.base import ParallelScheme, SchemeName
from repro.parallel.local_tree import LocalTreeMCTS
from repro.parallel.shared_tree import SharedTreeMCTS
from repro.perfmodel.adaptive import AdaptiveConfig, DesignConfigurator
from repro.perfmodel.profiling import profile_virtual
from repro.simulator.hardware import PlatformSpec
from repro.utils.rng import new_rng

__all__ = ["AutoSwitchingScheme"]


class AutoSwitchingScheme(ParallelScheme):
    """Re-profiles and re-selects the parallel scheme as the game evolves.

    Parameters
    ----------
    evaluator : leaf evaluator shared by whichever scheme is active.
    platform : hardware model used for re-profiling and the Eq. 3-6
        predictions.
    reprofile_every : moves between re-profiling passes (1 = every move).
    profile_playouts : playout budget of each profiling pass (it runs a
        serial search on a copy of the position; keep it modest).
    """

    def __init__(
        self,
        evaluator: Evaluator,
        platform: PlatformSpec,
        num_workers: int,
        use_gpu: bool = False,
        reprofile_every: int = 4,
        profile_playouts: int = 200,
        c_puct: float = 5.0,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if reprofile_every < 1:
            raise ValueError("reprofile_every must be >= 1")
        if profile_playouts < 1:
            raise ValueError("profile_playouts must be >= 1")
        if use_gpu and platform.gpu is None:
            raise ValueError("use_gpu=True requires a GPU spec")
        self.evaluator = evaluator
        self.platform = platform
        self.num_workers = num_workers
        self.use_gpu = use_gpu
        self.reprofile_every = reprofile_every
        self.profile_playouts = profile_playouts
        self.c_puct = c_puct
        self.rng = new_rng(rng)
        self._moves_seen = 0
        self._active: ParallelScheme | None = None
        self._active_config: AdaptiveConfig | None = None
        #: (move_index, scheme, batch_size) history of every (re)selection
        self.decisions: list[tuple[int, str, int]] = []

    # -- scheme management -----------------------------------------------------
    @property
    def name(self) -> SchemeName:  # type: ignore[override]
        if self._active_config is not None:
            return self._active_config.scheme
        return SchemeName.LOCAL_TREE

    @property
    def active_config(self) -> AdaptiveConfig | None:
        return self._active_config

    def _reconfigure(self, game: Game) -> None:
        profile = profile_virtual(
            game, self.platform, num_playouts=self.profile_playouts,
            c_puct=self.c_puct,
        )
        configurator = DesignConfigurator(profile, self.platform.gpu)
        config = configurator.configure(self.num_workers, self.use_gpu)
        previous = self._active_config
        changed = (
            previous is None
            or previous.scheme != config.scheme
            or previous.batch_size != config.batch_size
        )
        if changed:
            if self._active is not None:
                self._active.close()
            self._active = self._build(config)
            self._active_config = config
            self.decisions.append(
                (self._moves_seen, config.scheme.value, config.batch_size)
            )
        else:
            self._active_config = config

    def _build(self, config: AdaptiveConfig) -> ParallelScheme:
        if config.scheme == SchemeName.SHARED_TREE:
            return SharedTreeMCTS(
                self.evaluator,
                num_workers=self.num_workers,
                c_puct=self.c_puct,
                rng=self.rng,
            )
        batch = config.batch_size if self.use_gpu else 1
        return LocalTreeMCTS(
            self.evaluator,
            num_workers=self.num_workers,
            batch_size=max(1, min(batch, self.num_workers)),
            c_puct=self.c_puct,
            rng=self.rng,
        )

    # -- ParallelScheme interface ------------------------------------------------
    def search(self, game: Game, num_playouts: int) -> Node:
        if self._active is None or self._moves_seen % self.reprofile_every == 0:
            self._reconfigure(game)
        assert self._active is not None
        root = self._active.search(game, num_playouts)
        self._moves_seen += 1
        return root

    def get_action_prior(self, game: Game, num_playouts: int) -> np.ndarray:
        from repro.mcts.search import action_prior_from_root

        root = self.search(game, num_playouts)
        return action_prior_from_root(root, game.action_size)

    def close(self) -> None:
        if self._active is not None:
            self._active.close()
            self._active = None
