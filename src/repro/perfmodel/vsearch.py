"""Algorithm 4: O(log N) minimum search over a V-sequence.

The paper observes (Section 4.2) that the per-iteration latency of the
local-tree scheme as a function of the communication batch size B is a
"V-sequence" -- first monotonically non-increasing, then monotonically
non-decreasing -- because it is the element-wise max of decreasing
(in-tree, PCIe) and increasing (GPU compute) sequences.  FindMin therefore
needs only O(log N) *test runs* instead of the naive N: at each step it
tests B = mid and B = mid+1 and recurses toward the descending side.

``find_v_minimum`` takes an arbitrary ``evaluate(B) -> latency`` callable
(a test run on real hardware in the paper; the analytic model or the DES
here) and memoises evaluations so repeated probes are counted once --
the returned :class:`SearchTrace` records exactly which B values were
test-run, which the complexity benchmark (E7) asserts is O(log N).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["SearchTrace", "find_v_minimum"]


@dataclass
class SearchTrace:
    """Record of one FindMin invocation."""

    best_batch: int
    best_latency: float
    evaluated: dict[int, float] = field(default_factory=dict)

    @property
    def test_runs(self) -> int:
        return len(self.evaluated)


def find_v_minimum(
    evaluate: Callable[[int], float],
    lo: int,
    hi: int,
) -> SearchTrace:
    """FindMin(T, lo, hi) of Algorithm 4.

    Parameters
    ----------
    evaluate : latency of a test run at batch size B (1-indexed, inclusive).
    lo, hi : inclusive search bounds (the paper uses [1, N]).
    """
    if lo < 1 or hi < lo:
        raise ValueError(f"invalid bounds [{lo}, {hi}]")
    memo: dict[int, float] = {}

    def probe(b: int) -> float:
        if b not in memo:
            memo[b] = evaluate(b)
        return memo[b]

    while lo < hi:
        mid = (lo + hi) // 2
        # Algorithm 4 line 5: "Test Run with B = mid and B = mid + 1"
        t_mid = probe(mid)
        t_next = probe(mid + 1)
        if t_mid >= t_next:
            lo = mid + 1  # still descending (or flat): minimum is right
        else:
            hi = mid  # ascending: minimum is at mid or left of it
    best = lo
    return SearchTrace(best_batch=best, best_latency=probe(best), evaluated=memo)
