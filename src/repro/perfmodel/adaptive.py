"""The design-configuration workflow (paper Sections 3.2 and 4.2).

Given a profiled application, a platform and a worker budget N, decide at
"compile time" (configuration time):

1. which parallel scheme to run -- shared tree or local tree -- by
   evaluating the performance models (Equations 3-6); and
2. for a local tree on a CPU-GPU platform, the communication batch size B,
   found with Algorithm 4's O(log N) V-sequence search over *test runs*.

Test runs can be the analytic model (fast, what the paper's models
predict), or a measured run of the DES / the real implementation (what
the paper actually does on hardware); pass ``measure`` to override.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.parallel.base import SchemeName
from repro.perfmodel.models import PerformanceModel, ProfiledLatencies
from repro.perfmodel.vsearch import SearchTrace, find_v_minimum
from repro.simulator.hardware import GPUSpec

__all__ = ["AdaptiveConfig", "DesignConfigurator"]


@dataclass(frozen=True)
class AdaptiveConfig:
    """The workflow's output: scheme + batch size + predicted latencies."""

    scheme: SchemeName
    num_workers: int
    use_gpu: bool
    batch_size: int  # communication batch size (N for shared-tree GPU)
    predicted_latency: float
    candidates: dict[str, float] = field(default_factory=dict)
    batch_search: SearchTrace | None = None

    @property
    def speedup_vs_worst(self) -> float:
        """Predicted gain of the adaptive choice over the worst candidate."""
        worst = max(self.candidates.values())
        return worst / self.predicted_latency if self.predicted_latency > 0 else 1.0


class DesignConfigurator:
    """Compile-time scheme/batch selection from profiled latencies."""

    def __init__(
        self,
        profile: ProfiledLatencies,
        gpu: GPUSpec | None = None,
    ) -> None:
        self.profile = profile
        self.gpu = gpu
        self.model = PerformanceModel(profile, gpu)

    # -- CPU-only platforms ----------------------------------------------------
    def configure_cpu(self, num_workers: int) -> AdaptiveConfig:
        """Pick the scheme for a multi-core CPU (Equations 3 and 5)."""
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        t_shared = self.model.shared_cpu(num_workers)
        t_local = self.model.local_cpu(num_workers)
        if t_shared <= t_local:
            scheme, latency = SchemeName.SHARED_TREE, t_shared
        else:
            scheme, latency = SchemeName.LOCAL_TREE, t_local
        return AdaptiveConfig(
            scheme=scheme,
            num_workers=num_workers,
            use_gpu=False,
            batch_size=1,
            predicted_latency=latency,
            candidates={"shared_tree": t_shared, "local_tree": t_local},
        )

    # -- CPU-GPU platforms ----------------------------------------------------
    def configure_gpu(
        self,
        num_workers: int,
        measure: Callable[[int], float] | None = None,
        measured_shared: float | None = None,
    ) -> AdaptiveConfig:
        """Pick scheme and batch size for a CPU-GPU platform (Eqs. 4/6).

        Parameters
        ----------
        measure : optional test-run callable ``B -> measured latency`` used
            by Algorithm 4 instead of the analytic Equation-6 model.  The
            paper uses empirical test runs of a single move; pass a DES
            runner (see the Figure-5 benchmark) for the same effect.
        measured_shared : shared-tree latency measured the same way; when
            *measure* is given, supply this too so the scheme comparison is
            apples-to-apples (model vs model, or measurement vs
            measurement).
        """
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.gpu is None:
            raise ValueError("configure_gpu requires a GPU spec")
        if measure is not None and measured_shared is None:
            raise ValueError(
                "pass measured_shared when using measured test runs, so the "
                "shared-tree candidate is measured with the same instrument"
            )
        t_shared = (
            measured_shared
            if measured_shared is not None
            else self.model.shared_gpu(num_workers)
        )
        evaluate = measure or (lambda b: self.model.local_gpu(num_workers, b))
        trace = find_v_minimum(evaluate, 1, num_workers)
        # Probe the full-batch endpoint explicitly: the overlap kink at
        # B > N/2 makes the sequence only approximately a V at small N,
        # and B = N is one extra test run.
        t_full = trace.evaluated.get(num_workers)
        if t_full is None:
            t_full = evaluate(num_workers)
            trace.evaluated[num_workers] = t_full
        if t_full < trace.best_latency:
            trace = SearchTrace(
                best_batch=num_workers,
                best_latency=t_full,
                evaluated=trace.evaluated,
            )
        t_local = trace.best_latency
        if t_shared <= t_local:
            scheme, latency, batch = SchemeName.SHARED_TREE, t_shared, num_workers
        else:
            scheme, latency, batch = SchemeName.LOCAL_TREE, t_local, trace.best_batch
        return AdaptiveConfig(
            scheme=scheme,
            num_workers=num_workers,
            use_gpu=True,
            batch_size=batch,
            predicted_latency=latency,
            candidates={
                "shared_tree": t_shared,
                "local_tree_full_batch": self.model.local_gpu(num_workers, num_workers)
                if measure is None
                else evaluate(num_workers),
                "local_tree_best_batch": t_local,
            },
            batch_search=trace,
        )

    def configure(
        self,
        num_workers: int,
        use_gpu: bool,
        measure: Callable[[int], float] | None = None,
    ) -> AdaptiveConfig:
        """Dispatch to the CPU-only or CPU-GPU workflow."""
        if use_gpu:
            return self.configure_gpu(num_workers, measure)
        return self.configure_cpu(num_workers)
