"""Search-tree node with AlphaZero edge statistics.

Each node represents a game state; the edge statistics Q(s,a), N(s,a),
P(s,a) from Section 2.1 of the paper are stored on the *child* node reached
by taking action ``a``, which is the standard flattening (an edge and the
node under it are one-to-one in a tree).

Sign convention (important!): ``value_sum``/``q`` are from the perspective
of **the player who moved into this node** -- i.e. Q(s,a) for the player to
move at the parent.  Leaf evaluations arrive from the mover-at-leaf
perspective and are negated once per level in backup.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["Node"]


class Node:
    """A single tree node; plain attribute access, ``__slots__`` for density."""

    __slots__ = (
        "parent",
        "action",
        "prior",
        "visit_count",
        "value_sum",
        "virtual_loss",
        "children",
        "terminal_value",
    )

    def __init__(
        self,
        parent: "Node | None" = None,
        action: int = -1,
        prior: float = 1.0,
    ) -> None:
        self.parent = parent
        self.action = action
        self.prior = prior
        self.visit_count = 0
        self.value_sum = 0.0
        #: pending traversals through this node (units depend on VL policy)
        self.virtual_loss = 0.0
        self.children: dict[int, Node] = {}
        #: cached game outcome when this node's state is terminal, from the
        #: mover-at-this-state perspective; None for non-terminal states.
        self.terminal_value: float | None = None

    # -- structure -----------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        """True until the node has been expanded (no children yet)."""
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_terminal(self) -> bool:
        return self.terminal_value is not None

    # -- statistics -----------------------------------------------------------
    @property
    def q(self) -> float:
        """Mean action value Q(s,a); 0 for unvisited edges (paper init)."""
        return self.value_sum / self.visit_count if self.visit_count else 0.0

    def add_child(self, action: int, prior: float) -> "Node":
        if action in self.children:
            raise ValueError(f"child for action {action} already exists")
        child = Node(parent=self, action=action, prior=prior)
        self.children[action] = child
        return child

    # -- traversal helpers -----------------------------------------------------
    def path_from_root(self) -> list[int]:
        """Action sequence from the root to this node."""
        actions: list[int] = []
        node: Node | None = self
        while node is not None and node.parent is not None:
            actions.append(node.action)
            node = node.parent
        return actions[::-1]

    def depth(self) -> int:
        d = 0
        node = self.parent
        while node is not None:
            d += 1
            node = node.parent
        return d

    def iter_subtree(self) -> Iterator["Node"]:
        """Pre-order iteration over this node's subtree (self included)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def subtree_size(self) -> int:
        return sum(1 for _ in self.iter_subtree())

    def max_depth(self) -> int:
        """Depth of the deepest descendant, relative to this node."""
        best = 0
        stack = [(self, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            stack.extend((c, d + 1) for c in node.children.values())
        return best

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Node(action={self.action}, N={self.visit_count}, "
            f"Q={self.q:+.3f}, P={self.prior:.3f}, VL={self.virtual_loss}, "
            f"children={len(self.children)})"
        )
