"""MCTS core: tree node structures, UCT scoring, virtual loss, serial search.

This package contains everything the parallel schemes share:

- :mod:`repro.mcts.node`         -- the tree node / edge-statistics struct.
- :mod:`repro.mcts.arraytree`    -- structure-of-arrays tree backend with
  vectorised PUCT selection, slab expansion and array-indexed backup.
- :mod:`repro.mcts.backend`      -- the ``TreeBackend`` seam selecting
  between the two storage layouts.
- :mod:`repro.mcts.uct`          -- Equation-1 PUCT selection.
- :mod:`repro.mcts.virtual_loss` -- constant virtual loss [Chaslot 2008] and
  WU-UCT unobserved-sample tracking [Liu 2020], the two VL styles the paper
  cites in Section 2.1.
- :mod:`repro.mcts.evaluation`   -- leaf evaluators (network, random
  rollout, uniform).
- :mod:`repro.mcts.search`       -- expansion/backup primitives, action
  priors, temperature and Dirichlet-noise utilities.
- :mod:`repro.mcts.serial`       -- the serial DNN-MCTS baseline.
"""

from repro.mcts.arraytree import ArrayNodeView, ArrayTree
from repro.mcts.backend import (
    TreeBackend,
    capacity_hint,
    make_root,
    resolve_backend,
)
from repro.mcts.budget import BudgetClock, BudgetSnapshot, SearchBudget, as_budget
from repro.mcts.evaluation import (
    Evaluation,
    Evaluator,
    NetworkEvaluator,
    RandomRolloutEvaluator,
    UniformEvaluator,
)
from repro.mcts.node import Node
from repro.mcts.search import (
    action_prior_from_root,
    add_dirichlet_noise,
    backup,
    expand,
    sample_action,
    select_leaf,
)
from repro.mcts.serial import SerialMCTS
from repro.mcts.uct import select_child, uct_scores
from repro.mcts.virtual_loss import (
    ConstantVirtualLoss,
    NoVirtualLoss,
    VirtualLossPolicy,
    WUVirtualLoss,
)

__all__ = [
    "ArrayNodeView",
    "ArrayTree",
    "BudgetClock",
    "BudgetSnapshot",
    "ConstantVirtualLoss",
    "Evaluation",
    "Evaluator",
    "NetworkEvaluator",
    "NoVirtualLoss",
    "Node",
    "RandomRolloutEvaluator",
    "SearchBudget",
    "SerialMCTS",
    "TreeBackend",
    "UniformEvaluator",
    "VirtualLossPolicy",
    "WUVirtualLoss",
    "action_prior_from_root",
    "add_dirichlet_noise",
    "as_budget",
    "backup",
    "capacity_hint",
    "expand",
    "make_root",
    "resolve_backend",
    "sample_action",
    "select_child",
    "select_leaf",
    "uct_scores",
]
