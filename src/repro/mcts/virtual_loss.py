"""Virtual-loss policies for tree-parallel MCTS.

The paper (Section 2.1): "after a worker traverses a certain node (path)
during Node Selection, a virtual loss VL is subtracted from U of the
traversed edges to lower their weights, thus encouraging other workers to
take different paths. ... VL can either be a pre-defined constant value
[Chaslot 2008], or a number tracking visit counts of child nodes
[WU-UCT, Liu 2020]."

Both styles are expressed through one interface so every search scheme
(serial, shared-tree, local-tree, simulated) is policy-agnostic:

- :meth:`on_descend` is called for each node on the selected path while
  descending (paper: Algorithm 2 line 14, "update node's UCT score with
  virtual loss");
- :meth:`on_backup` is called for each node on the path during BackUp
  (paper: "VL is recovered later in the BackUp phase");
- :meth:`effective_stats` maps raw (N, W, VL) to the values Equation 1
  should see.

Array API
---------
The array-backed tree (:mod:`repro.mcts.arraytree`) never touches nodes
one at a time, so every policy additionally exposes a vectorised face:

- :attr:`descend_amount` -- the constant added to a node's virtual-loss
  counter per in-flight traversal (0 disables VL bookkeeping entirely);
- :meth:`effective_stats_arrays` -- :meth:`effective_stats` over whole
  child slices at once;
- :meth:`parent_visit_total` -- the Equation-1 sqrt numerator derived
  from the *parent's own* counters instead of a per-child sum (every
  visit to an expanded non-terminal node except the one that expanded it
  descended into exactly one child, so ``sum_b N(s,b) == N(s) - 1``; the
  same derivation subtracts the caller's own pending descend from the
  virtual-loss total).  Both tree backends use this, which is what makes
  selection O(children) in one numpy expression instead of two passes.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.mcts.node import Node

__all__ = [
    "VirtualLossPolicy",
    "NoVirtualLoss",
    "ConstantVirtualLoss",
    "WUVirtualLoss",
]


class VirtualLossPolicy(abc.ABC):
    """Strategy interface for discouraging concurrent path collisions."""

    #: treat an unbalanced descend/backup as a bug (overridden per instance
    #: by the concrete policies; lock-free schemes run non-strict)
    strict: bool = True

    @property
    @abc.abstractmethod
    def descend_amount(self) -> float:
        """Virtual loss added to a node's counter per in-flight traversal."""

    @abc.abstractmethod
    def on_descend(self, node: Node) -> None:
        """Mark *node* as being traversed by an in-flight worker."""

    @abc.abstractmethod
    def on_backup(self, node: Node) -> None:
        """Recover the virtual loss applied by :meth:`on_descend`."""

    @abc.abstractmethod
    def effective_stats(self, node: Node) -> tuple[float, float]:
        """Return ``(effective_visits, effective_q)`` for UCT scoring."""

    @abc.abstractmethod
    def effective_stats_arrays(
        self,
        visit_count: np.ndarray,
        value_sum: np.ndarray,
        virtual_loss: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`effective_stats` over parallel stat arrays."""

    def parent_visit_total(self, visit_count: float, virtual_loss: float) -> float:
        """Equation-1 sqrt numerator from the parent's *own* counters.

        ``sum_b N(s,b) == N(s) - 1`` for any expanded non-terminal node
        (every backup through the node continued into exactly one child,
        except the single playout that expanded it), and in-flight
        traversals past the node are its virtual-loss total minus the
        caller's own pending descend.  O(1) instead of a per-child sum.
        """
        return max(visit_count - 1.0, 0.0) + max(
            virtual_loss - self.descend_amount, 0.0
        )


class NoVirtualLoss(VirtualLossPolicy):
    """Identity policy: what serial MCTS uses."""

    @property
    def descend_amount(self) -> float:
        return 0.0

    def on_descend(self, node: Node) -> None:
        pass

    def on_backup(self, node: Node) -> None:
        pass

    def effective_stats(self, node: Node) -> tuple[float, float]:
        return float(node.visit_count), node.q

    def effective_stats_arrays(
        self,
        visit_count: np.ndarray,
        value_sum: np.ndarray,
        virtual_loss: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        n = visit_count.astype(np.float64)
        q = np.zeros_like(n)
        np.divide(value_sum, n, out=q, where=n > 0)
        return n, q


class ConstantVirtualLoss(VirtualLossPolicy):
    """Classic constant virtual loss [Chaslot et al. 2008].

    Each in-flight traversal pretends to be ``weight`` lost playouts:
    N_eff = N + weight * inflight, W_eff = W - weight * inflight.  This both
    deflates Q and inflates the visit denominator, strongly repelling other
    workers from the path.
    """

    def __init__(self, weight: float = 3.0, strict: bool = True) -> None:
        if weight <= 0:
            raise ValueError(f"virtual-loss weight must be positive, got {weight}")
        self.weight = weight
        #: strict policies treat an unbalanced descend/backup as a bug;
        #: lock-free schemes set strict=False because racy read-modify-
        #: write updates can legitimately lose increments.
        self.strict = strict

    @property
    def descend_amount(self) -> float:
        return self.weight

    def on_descend(self, node: Node) -> None:
        node.virtual_loss += self.weight

    def on_backup(self, node: Node) -> None:
        node.virtual_loss -= self.weight
        if node.virtual_loss < -1e-9:
            if self.strict:
                raise RuntimeError(
                    "virtual loss went negative: unbalanced descend/backup"
                )
            node.virtual_loss = 0.0

    def effective_stats(self, node: Node) -> tuple[float, float]:
        vl = node.virtual_loss
        n_eff = node.visit_count + vl
        if n_eff <= 0:
            return 0.0, 0.0
        # each pretended playout contributes a loss (-1) to the value sum
        q_eff = (node.value_sum - vl) / n_eff
        return n_eff, q_eff

    def effective_stats_arrays(
        self,
        visit_count: np.ndarray,
        value_sum: np.ndarray,
        virtual_loss: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        n_eff = visit_count + virtual_loss
        positive = n_eff > 0
        q_eff = np.zeros_like(n_eff, dtype=np.float64)
        np.divide(value_sum - virtual_loss, n_eff, out=q_eff, where=positive)
        return np.where(positive, n_eff, 0.0), q_eff


class WUVirtualLoss(VirtualLossPolicy):
    """WU-UCT style: track *unobserved samples* [Liu et al. 2020].

    In-flight traversals count toward the visit totals (both in the sqrt
    numerator and the per-edge denominator of Equation 1) but do **not**
    poison Q with fake losses -- the exploration term alone spreads the
    workers.  This is gentler than constant VL and was shown by WU-UCT to
    preserve the sequential algorithm's regret behaviour.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict

    @property
    def descend_amount(self) -> float:
        return 1.0

    def on_descend(self, node: Node) -> None:
        node.virtual_loss += 1.0

    def on_backup(self, node: Node) -> None:
        node.virtual_loss -= 1.0
        if node.virtual_loss < -1e-9:
            if self.strict:
                raise RuntimeError(
                    "unobserved count went negative: unbalanced descend/backup"
                )
            node.virtual_loss = 0.0

    def effective_stats(self, node: Node) -> tuple[float, float]:
        n_eff = node.visit_count + node.virtual_loss
        # Q uses only *observed* outcomes (the "watch the unobserved" rule).
        q = node.q
        return n_eff, q

    def effective_stats_arrays(
        self,
        visit_count: np.ndarray,
        value_sum: np.ndarray,
        virtual_loss: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        n = visit_count.astype(np.float64)
        q = np.zeros_like(n)
        np.divide(value_sum, n, out=q, where=n > 0)
        return n + virtual_loss, q
