"""Virtual-loss policies for tree-parallel MCTS.

The paper (Section 2.1): "after a worker traverses a certain node (path)
during Node Selection, a virtual loss VL is subtracted from U of the
traversed edges to lower their weights, thus encouraging other workers to
take different paths. ... VL can either be a pre-defined constant value
[Chaslot 2008], or a number tracking visit counts of child nodes
[WU-UCT, Liu 2020]."

Both styles are expressed through one interface so every search scheme
(serial, shared-tree, local-tree, simulated) is policy-agnostic:

- :meth:`on_descend` is called for each node on the selected path while
  descending (paper: Algorithm 2 line 14, "update node's UCT score with
  virtual loss");
- :meth:`on_backup` is called for each node on the path during BackUp
  (paper: "VL is recovered later in the BackUp phase");
- :meth:`effective_stats` maps raw (N, W, VL) to the values Equation 1
  should see.
"""

from __future__ import annotations

import abc

from repro.mcts.node import Node

__all__ = [
    "VirtualLossPolicy",
    "NoVirtualLoss",
    "ConstantVirtualLoss",
    "WUVirtualLoss",
]


class VirtualLossPolicy(abc.ABC):
    """Strategy interface for discouraging concurrent path collisions."""

    @abc.abstractmethod
    def on_descend(self, node: Node) -> None:
        """Mark *node* as being traversed by an in-flight worker."""

    @abc.abstractmethod
    def on_backup(self, node: Node) -> None:
        """Recover the virtual loss applied by :meth:`on_descend`."""

    @abc.abstractmethod
    def effective_stats(self, node: Node) -> tuple[float, float]:
        """Return ``(effective_visits, effective_q)`` for UCT scoring."""

    def effective_parent_visits(self, node: Node) -> float:
        """Effective visit total used inside the sqrt of Equation 1."""
        n, _ = self.effective_stats(node)
        return n


class NoVirtualLoss(VirtualLossPolicy):
    """Identity policy: what serial MCTS uses."""

    def on_descend(self, node: Node) -> None:
        pass

    def on_backup(self, node: Node) -> None:
        pass

    def effective_stats(self, node: Node) -> tuple[float, float]:
        return float(node.visit_count), node.q


class ConstantVirtualLoss(VirtualLossPolicy):
    """Classic constant virtual loss [Chaslot et al. 2008].

    Each in-flight traversal pretends to be ``weight`` lost playouts:
    N_eff = N + weight * inflight, W_eff = W - weight * inflight.  This both
    deflates Q and inflates the visit denominator, strongly repelling other
    workers from the path.
    """

    def __init__(self, weight: float = 3.0, strict: bool = True) -> None:
        if weight <= 0:
            raise ValueError(f"virtual-loss weight must be positive, got {weight}")
        self.weight = weight
        #: strict policies treat an unbalanced descend/backup as a bug;
        #: lock-free schemes set strict=False because racy read-modify-
        #: write updates can legitimately lose increments.
        self.strict = strict

    def on_descend(self, node: Node) -> None:
        node.virtual_loss += self.weight

    def on_backup(self, node: Node) -> None:
        node.virtual_loss -= self.weight
        if node.virtual_loss < -1e-9:
            if self.strict:
                raise RuntimeError(
                    "virtual loss went negative: unbalanced descend/backup"
                )
            node.virtual_loss = 0.0

    def effective_stats(self, node: Node) -> tuple[float, float]:
        vl = node.virtual_loss
        n_eff = node.visit_count + vl
        if n_eff <= 0:
            return 0.0, 0.0
        # each pretended playout contributes a loss (-1) to the value sum
        q_eff = (node.value_sum - vl) / n_eff
        return n_eff, q_eff


class WUVirtualLoss(VirtualLossPolicy):
    """WU-UCT style: track *unobserved samples* [Liu et al. 2020].

    In-flight traversals count toward the visit totals (both in the sqrt
    numerator and the per-edge denominator of Equation 1) but do **not**
    poison Q with fake losses -- the exploration term alone spreads the
    workers.  This is gentler than constant VL and was shown by WU-UCT to
    preserve the sequential algorithm's regret behaviour.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict

    def on_descend(self, node: Node) -> None:
        node.virtual_loss += 1.0

    def on_backup(self, node: Node) -> None:
        node.virtual_loss -= 1.0
        if node.virtual_loss < -1e-9:
            if self.strict:
                raise RuntimeError(
                    "unobserved count went negative: unbalanced descend/backup"
                )
            node.virtual_loss = 0.0

    def effective_stats(self, node: Node) -> tuple[float, float]:
        n_eff = node.visit_count + node.virtual_loss
        # Q uses only *observed* outcomes (the "watch the unobserved" rule).
        q = node.q
        return n_eff, q
