"""Leaf evaluators: the "Node Evaluation" stage of DNN-MCTS.

An evaluator maps a game state to ``(priors over the action space, value)``
where *value* is from the perspective of the player to move.  Three
implementations:

- :class:`NetworkEvaluator`     -- wraps a policy/value network (the paper's
  ``neural_network_simulate``); masks illegal moves and renormalises.
- :class:`RandomRolloutEvaluator` -- classical Monte-Carlo rollout
  evaluation [Coulom 2006], the pre-DNN baseline the paper contrasts with.
- :class:`UniformEvaluator`     -- uniform priors / zero value; makes tests
  and latency profiling independent of network weights.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass

import numpy as np

from repro.games.base import Game
from repro.utils.rng import new_rng

__all__ = [
    "Evaluation",
    "Evaluator",
    "NetworkEvaluator",
    "RandomRolloutEvaluator",
    "UniformEvaluator",
    "mask_and_normalize",
]


@dataclass(frozen=True)
class Evaluation:
    """Result of evaluating one state."""

    priors: np.ndarray  # (action_size,) probabilities, zero on illegal moves
    value: float  # in [-1, 1], mover's perspective


def mask_and_normalize(probs: np.ndarray, legal_mask: np.ndarray) -> np.ndarray:
    """Zero illegal entries and renormalise along the last axis; uniform
    fallback for rows whose legal mass underflows (can happen early in
    training).

    Accepts a single ``(A,)`` vector or any batched ``(..., A)`` stack --
    this is the one definition of the legality-normalisation contract, used
    by both the per-state evaluators and the vectorised
    :meth:`repro.nn.network.PolicyValueNet.predict_batch` path.
    """
    probs = np.asarray(probs, dtype=np.float64)
    legal_mask = np.asarray(legal_mask, dtype=bool)
    if legal_mask.shape != probs.shape:
        raise ValueError(
            f"legal_mask shape {legal_mask.shape} does not match "
            f"probs shape {probs.shape}"
        )
    masked = np.where(legal_mask, probs, 0.0)
    totals = masked.sum(axis=-1, keepdims=True)
    legal_counts = legal_mask.sum(axis=-1, keepdims=True)
    if np.any(legal_counts == 0):
        raise ValueError("no legal actions to normalise over")
    degenerate = totals <= 1e-12
    if not np.any(degenerate):  # hot path: no underflow, skip the fallback
        return masked / totals
    uniform = legal_mask.astype(np.float64) / legal_counts
    return np.where(degenerate, uniform, masked / np.where(degenerate, 1.0, totals))


class Evaluator(abc.ABC):
    """State -> (priors, value) mapping; batched variant optional."""

    @abc.abstractmethod
    def evaluate(self, game: Game) -> Evaluation: ...

    def evaluate_batch(self, games: list[Game]) -> list[Evaluation]:
        """Default batched path: evaluate sequentially.

        Network-backed evaluators override this with a single batched
        forward pass -- the operation the accelerator queue of Section 3.3
        feeds.
        """
        return [self.evaluate(g) for g in games]


def _sanitize_masks(masks: np.ndarray) -> np.ndarray:
    """Boolean-ise a ``(B, A)`` mask batch, mapping all-illegal rows to
    all-legal.

    An all-illegal row cannot come from a live game (search never
    evaluates terminal states); it only appears when the multiprocess farm
    evaluates a slab slot torn by a killed-and-respawned worker, and that
    response is discarded by the epoch fence anyway -- the substitution
    just keeps the batched forward from dividing by zero on a row nobody
    will read.
    """
    masks = np.asarray(masks).astype(bool)
    empty = ~masks.any(axis=-1)
    if np.any(empty):
        masks = masks.copy()
        masks[empty] = True
    return masks


class NetworkEvaluator(Evaluator):
    """Policy/value-network evaluation (the paper's DNN inference).

    The batched path is vectorised end-to-end: states and legality masks
    are stacked once and the forward pass, illegal-move masking and
    renormalisation all run as whole-batch array operations (via
    ``network.predict_batch`` when available), so batch cost does not
    include a per-state Python inner loop.

    For the stock towers ``predict_batch`` executes the compiled fused
    float32 plan (:mod:`repro.nn.infer`) by default, which also guarantees
    evaluation can never mutate network state: the plan is an immutable
    snapshot, and the float64 reference backend forces eval mode for the
    duration of the call.  Repeated evaluation of the same states is
    therefore bit-identical even on a network left in training mode.
    """

    def __init__(self, network) -> None:
        self.network = network

    def evaluate(self, game: Game) -> Evaluation:
        return self.evaluate_batch([game])[0]

    def evaluate_batch(self, games: list[Game]) -> list[Evaluation]:
        if not games:
            return []
        states = np.stack([g.encode() for g in games])
        masks = np.stack([g.legal_mask() for g in games])
        predict_batch = getattr(self.network, "predict_batch", None)
        if predict_batch is not None:
            out = predict_batch(states, masks)
            policy = out.policy
        else:  # non-PolicyValueNet backends: mask in one batched pass here
            out = self.network.predict(states)
            policy = mask_and_normalize(out.policy, masks)
        # Copy each row out of the (B, A) batch array: Evaluations outlive
        # the batch (e.g. in the serving-layer LRU cache), and a row *view*
        # would pin the whole batch array in memory for its lifetime.
        return [
            Evaluation(priors=policy[i].copy(), value=float(out.value[i]))
            for i in range(len(games))
        ]

    def evaluate_encoded(
        self, states: np.ndarray, masks: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate pre-encoded states: ``(B, C, H, W)`` planes and
        ``(B, A)`` legality masks -> ``(priors (B, A), values (B,))``.

        This is the multiprocess farm's evaluation surface: worker
        processes ship ``encode()`` planes through shared memory, so by
        the time the batch reaches the evaluator process there are no
        ``Game`` objects left to call :meth:`evaluate_batch` with.  The
        numeric path is identical to :meth:`evaluate_batch` (same
        ``predict_batch``, same masking contract), so in-process and
        cross-process evaluation of the same state agree exactly.
        """
        masks = _sanitize_masks(masks)
        predict_batch = getattr(self.network, "predict_batch", None)
        if predict_batch is not None:
            out = predict_batch(np.asarray(states), masks)
            return out.policy, np.asarray(out.value, dtype=np.float64)
        out = self.network.predict(np.asarray(states))
        return mask_and_normalize(out.policy, masks), np.asarray(
            out.value, dtype=np.float64
        )


class UniformEvaluator(Evaluator):
    """Uniform priors over legal moves, zero value."""

    def evaluate(self, game: Game) -> Evaluation:
        mask = game.legal_mask()
        count = int(mask.sum())
        if count == 0:
            raise ValueError("cannot evaluate a state with no legal actions")
        return Evaluation(priors=mask.astype(np.float64) / count, value=0.0)

    def evaluate_encoded(
        self, states: np.ndarray, masks: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Farm-facing pre-encoded path; row-wise identical to
        :meth:`evaluate`, so cross-process runs stay transcript-exact."""
        masks = _sanitize_masks(masks)
        counts = masks.sum(axis=-1, keepdims=True)
        priors = masks.astype(np.float64) / counts
        return priors, np.zeros(len(priors), dtype=np.float64)


class RandomRolloutEvaluator(Evaluator):
    """Monte-Carlo rollout evaluation: play random moves to the end.

    *num_rollouts* independent playouts are averaged; priors are uniform
    (classical UCT has no learned policy).

    Thread safety: each calling thread lazily gets its own generator
    spawned from the seed stream, so concurrent evaluation from a worker
    pool is well-defined (NumPy generators are not thread-safe to share).
    """

    def __init__(
        self, num_rollouts: int = 1, rng: np.random.Generator | int | None = None
    ) -> None:
        if num_rollouts < 1:
            raise ValueError("num_rollouts must be >= 1")
        self.num_rollouts = num_rollouts
        self._seed_rng = new_rng(rng)
        self._local = threading.local()

    @property
    def rng(self) -> np.random.Generator:
        rng = getattr(self._local, "rng", None)
        if rng is None:
            # spawn() is itself guarded: only called under the import-wide
            # GIL from whichever thread first evaluates.
            rng = self._seed_rng.spawn(1)[0]
            self._local.rng = rng
        return rng

    def evaluate(self, game: Game) -> Evaluation:
        mask = game.legal_mask()
        count = int(mask.sum())
        if count == 0:
            raise ValueError("cannot evaluate a state with no legal actions")
        priors = mask.astype(np.float64) / count
        total = 0.0
        for _ in range(self.num_rollouts):
            total += self._rollout(game.copy())
        return Evaluation(priors=priors, value=total / self.num_rollouts)

    def _rollout(self, game: Game) -> float:
        mover = game.current_player
        while not game.is_terminal:
            legal = game.legal_actions()
            game.step(int(self.rng.choice(legal)))
        w = game.winner
        assert w is not None
        if w == 0:
            return 0.0
        return 1.0 if w == mover else -1.0
