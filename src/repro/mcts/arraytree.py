"""Array-backed MCTS tree: structure-of-arrays storage, vectorised PUCT.

The :class:`repro.mcts.node.Node` tree pays a heap allocation per node and
a Python attribute access per edge statistic; ``uct_scores`` then loops
over a ``dict[int, Node]`` at every level of every simulation.  This
module stores the whole tree as preallocated, growable numpy arrays
(``parent``, ``action``, ``prior``, ``visit_count``, ``value_sum``,
``virtual_loss``, ``terminal_value`` plus the ``child_start``/
``child_count`` slab index), the structure-of-arrays layout production
AlphaZero reimplementations use for 10-50x tree-op throughput.  A node is
just an integer row; the children of a node are a *contiguous* row range
(slabs are allocated whole at expansion, in ascending action order), so
``child_start``/``child_count`` slice the node arrays directly and
Equation-1 selection is one vectorised expression plus one ``np.argmax``
-- no ``sorted()`` allocation, no per-child ``effective_stats`` calls.

Sign convention (carried over from :mod:`repro.mcts.node`, important!):
``value_sum`` / Q are from the perspective of **the player who moved into
the node** -- i.e. Q(s,a) for the player to move at the parent.  Leaf
evaluations arrive from the mover-at-leaf perspective and are negated
once per level in :meth:`ArrayTree.backup` (the leaf's own row receives
``-value``, its parent ``+value``, and so on up the path).

Equivalence: for identical playout sequences the array tree reproduces
the ``Node`` backend's statistics *exactly* -- same float64 operation
order in scoring, same ascending-action tie-break under ``np.argmax``,
same RNG consumption for Dirichlet root noise.  The property tests in
``tests/mcts/test_backend_equivalence.py`` pin visit-count parity down to
the integer.

Thread safety: slab allocation (and therefore expansion) takes an
internal lock so concurrent expanders cannot interleave row ranges;
statistics updates are plain array read-modify-writes, which under
CPython's GIL lose increments only in the same weakly-consistent regime
the lock-free ``Node`` scheme already accepts.  Growth swaps in larger
arrays, so a racing writer holding a stale array reference can lose its
update -- serial, leaf-parallel, local-tree (master-thread in-tree ops),
root-parallel and speculative schemes never race and are exact; the
shared-tree/lock-free schemes treat the array backend as weakly
consistent (run non-strict virtual loss there).
"""

from __future__ import annotations

import math
import threading
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.mcts.virtual_loss import NoVirtualLoss, VirtualLossPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.games.base import Game

__all__ = ["ArrayTree", "ArrayNodeView"]

_NO_VL = NoVirtualLoss()

#: row id meaning "no parent" (the root) in the ``parent`` array
NO_PARENT = -1

#: per-node statistic columns copied verbatim by :meth:`ArrayTree.extract_subtree`
#: (structure columns -- ``parent``/``child_start``/``child_count`` -- are
#: rebuilt for the destination layout instead)
_NODE_COLUMNS = (
    "action",
    "prior",
    "visit_count",
    "value_sum",
    "virtual_loss",
    "terminal_value",
    "is_terminal_flag",
)


class ArrayTree:
    """Growable structure-of-arrays search tree.

    Parameters
    ----------
    capacity : initial number of node rows; the arrays double whenever a
        child slab would overflow, so this is a hint, not a limit.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self.size = 0
        self._alloc_lock = threading.Lock()
        self.parent = np.full(capacity, NO_PARENT, dtype=np.int64)
        self.action = np.full(capacity, -1, dtype=np.int64)
        self.prior = np.zeros(capacity, dtype=np.float64)
        self.visit_count = np.zeros(capacity, dtype=np.int64)
        self.value_sum = np.zeros(capacity, dtype=np.float64)
        self.virtual_loss = np.zeros(capacity, dtype=np.float64)
        self.terminal_value = np.zeros(capacity, dtype=np.float64)
        self.is_terminal_flag = np.zeros(capacity, dtype=bool)
        self.child_start = np.zeros(capacity, dtype=np.int64)
        self.child_count = np.zeros(capacity, dtype=np.int64)

    # -- allocation ----------------------------------------------------------
    def _grow_to(self, needed: int) -> None:
        """Swap in larger arrays (caller holds the allocation lock)."""
        new_cap = self._capacity
        while new_cap < needed:
            new_cap *= 2
        for name, fill in (
            ("parent", NO_PARENT),
            ("action", -1),
            ("prior", 0.0),
            ("visit_count", 0),
            ("value_sum", 0.0),
            ("virtual_loss", 0.0),
            ("terminal_value", 0.0),
            ("is_terminal_flag", False),
            ("child_start", 0),
            ("child_count", 0),
        ):
            old = getattr(self, name)
            fresh = np.full(new_cap, fill, dtype=old.dtype)
            fresh[: self.size] = old[: self.size]
            setattr(self, name, fresh)
        self._capacity = new_cap

    def _alloc(self, n: int) -> int:
        """Reserve *n* contiguous rows; returns the first row id."""
        with self._alloc_lock:
            start = self.size
            if start + n > self._capacity:
                self._grow_to(start + n)
            self.size = start + n
            return start

    def new_root(self, prior: float = 1.0) -> int:
        """Allocate a fresh root row (mirrors ``Node()``)."""
        idx = self._alloc(1)
        self.prior[idx] = prior
        return idx

    # -- structure -----------------------------------------------------------
    def is_leaf(self, idx: int) -> bool:
        return self.child_count[idx] == 0

    def is_terminal(self, idx: int) -> bool:
        return bool(self.is_terminal_flag[idx])

    def mark_terminal(self, idx: int, value: float) -> None:
        self.terminal_value[idx] = value
        self.is_terminal_flag[idx] = True

    def children_slice(self, idx: int) -> slice:
        start = int(self.child_start[idx])
        return slice(start, start + int(self.child_count[idx]))

    def child_actions(self, idx: int) -> np.ndarray:
        return self.action[self.children_slice(idx)]

    def detach(self, idx: int) -> None:
        """Make *idx* a root in place (discarded rows stay allocated).

        O(1), but the abandoned part of the tree is never freed -- use
        :meth:`extract_subtree` when the tree lives across many moves
        (subtree reuse), where the leak would compound.
        """
        self.parent[idx] = NO_PARENT
        self.action[idx] = -1

    def extract_subtree(self, idx: int) -> "ArrayTree":
        """Compact *idx*'s subtree into a fresh tree (row 0 = new root).

        Slab-by-slab BFS copy: child slabs are contiguous in the source,
        so each node's children transfer as one slice assignment and stay
        contiguous in the destination.  This is the re-root path for
        subtree reuse -- the abandoned siblings (the bulk of the old tree)
        are released with the old tree object instead of accumulating
        over an episode.
        """
        new = ArrayTree(capacity=max(256, int(self.child_count[idx]) + 1))
        new._alloc(1)
        for column in _NODE_COLUMNS:
            getattr(new, column)[0] = getattr(self, column)[idx]
        new.parent[0] = NO_PARENT
        new.action[0] = -1
        queue = [(idx, 0)]
        while queue:
            old_row, new_row = queue.pop()
            k = int(self.child_count[old_row])
            if k == 0:
                new.child_count[new_row] = 0
                continue
            old_start = int(self.child_start[old_row])
            new_start = new._alloc(k)
            for column in _NODE_COLUMNS:
                getattr(new, column)[new_start : new_start + k] = getattr(
                    self, column
                )[old_start : old_start + k]
            new.parent[new_start : new_start + k] = new_row
            new.child_start[new_row] = new_start
            new.child_count[new_row] = k
            queue.extend(
                (old_start + i, new_start + i) for i in range(k)
            )
        return new

    # -- expansion -----------------------------------------------------------
    def expand(self, idx: int, actions: np.ndarray, priors: np.ndarray) -> None:
        """Create the child slab of *idx* (one row per legal action).

        *actions* must be ascending (``Game.legal_actions`` guarantees it)
        so that ``np.argmax`` tie-breaking matches the ``Node`` backend's
        lowest-action rule.  Raises ``ValueError`` if *idx* already has
        children, mirroring ``Node.add_child`` on a duplicate insert (the
        lock-free scheme catches this to count expansion races).
        """
        k = len(actions)
        if k == 0:
            raise ValueError("expand with no actions")
        with self._alloc_lock:
            if self.child_count[idx] != 0:
                raise ValueError(f"node {idx} already expanded")
            start = self.size
            if start + k > self._capacity:
                self._grow_to(start + k)
            self.size = start + k
            sl = slice(start, start + k)
            self.parent[sl] = idx
            self.action[sl] = actions
            self.prior[sl] = priors
            self.child_start[idx] = start
            # publish last: concurrent readers see the slab only complete
            self.child_count[idx] = k

    # -- Equation-1 selection ------------------------------------------------
    def _child_scores(
        self, idx: int, c_puct: float, vl: VirtualLossPolicy
    ) -> tuple[int, np.ndarray]:
        """``(slab_start, Equation-1 scores)`` for the children of *idx*."""
        k = int(self.child_count[idx])
        if k == 0:
            raise ValueError("uct_scores on an unexpanded node")
        start = int(self.child_start[idx])
        sl = slice(start, start + k)
        n_eff, q_eff = vl.effective_stats_arrays(
            self.visit_count[sl], self.value_sum[sl], self.virtual_loss[sl]
        )
        total = vl.parent_visit_total(
            float(self.visit_count[idx]), float(self.virtual_loss[idx])
        )
        # Floor at 1 so that, before any child has been visited, selection
        # falls back to argmax of the priors instead of degenerating to ties.
        sqrt_parent = math.sqrt(max(total, 1.0))
        scores = q_eff + c_puct * self.prior[sl] * sqrt_parent / (1.0 + n_eff)
        return start, scores

    def uct_scores(
        self,
        idx: int,
        c_puct: float,
        vl_policy: VirtualLossPolicy | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised Equation 1 over the child slab of *idx*.

        Returns ``(actions, scores)`` parallel arrays in ascending-action
        order, numerically identical to the per-child ``Node`` loop.
        """
        start, scores = self._child_scores(idx, c_puct, vl_policy or _NO_VL)
        return self.action[start : start + len(scores)].copy(), scores

    def select_child_index(
        self,
        idx: int,
        c_puct: float,
        vl_policy: VirtualLossPolicy | None = None,
    ) -> int:
        """Row id of the Equation-1 argmax child (ties -> lowest action)."""
        start, scores = self._child_scores(idx, c_puct, vl_policy or _NO_VL)
        return start + int(np.argmax(scores))

    def select_to_leaf(
        self,
        idx: int,
        game: "Game",
        c_puct: float,
        vl_policy: VirtualLossPolicy | None = None,
        apply_virtual_loss: bool = True,
    ) -> tuple[int, int]:
        """Descend from *idx* following Equation 1 until reaching a leaf.

        Mutates *game* by stepping the selected actions and, when
        *apply_virtual_loss*, adds the policy's ``descend_amount`` along
        the path.  Returns ``(leaf_row, path_length)``.
        """
        vl = vl_policy or _NO_VL
        amount = vl.descend_amount
        node = idx
        depth = 0
        if apply_virtual_loss and amount:
            self.virtual_loss[node] += amount
        while self.child_count[node] != 0 and not self.is_terminal_flag[node]:
            node = self.select_child_index(node, c_puct, vl)
            game.step(int(self.action[node]))
            depth += 1
            if apply_virtual_loss and amount:
                self.virtual_loss[node] += amount
            if game.is_terminal:
                self.mark_terminal(node, game.terminal_value)
        return node, depth

    # -- backup --------------------------------------------------------------
    def path_to_root(self, idx: int) -> np.ndarray:
        """Row ids from *idx* (inclusive) up to the root (inclusive)."""
        path = [idx]
        parent = self.parent
        node = int(parent[idx])
        while node != NO_PARENT:
            path.append(node)
            node = int(parent[node])
        return np.array(path, dtype=np.int64)

    def backup(
        self,
        idx: int,
        value: float,
        vl_policy: VirtualLossPolicy | None = None,
        revert_virtual_loss: bool = True,
    ) -> None:
        """BackUp with pure array indexing along the parent chain.

        *value* is from the perspective of the player to move at *idx*'s
        state; each level's edge accumulates the outcome for the player
        who took it, so contributions alternate ``-v, +v, -v, ...`` from
        the leaf upward.  Recovers virtual loss in the same pass.

        Paths are short (tree depth), so this walks them with scalar
        int-indexed array updates -- cheaper than materialising the path
        as an index array for a fancy-indexed write at every depth the
        benchmark games reach, though still costlier per level than a
        ``Node`` attribute bump (numpy scalar-indexing round-trips);
        backup is a few percent of end-to-end simulation time, which the
        selection/expansion wins dwarf.
        """
        vl = vl_policy or _NO_VL
        amount = vl.descend_amount if revert_virtual_loss else 0.0
        visit_count = self.visit_count
        value_sum = self.value_sum
        virtual_loss = self.virtual_loss
        parent = self.parent
        node = idx
        v = value
        while node != NO_PARENT:
            visit_count[node] += 1
            value_sum[node] += -v
            if amount:
                residue = virtual_loss[node] - amount
                if residue < -1e-9:
                    if vl.strict:
                        raise RuntimeError(
                            "virtual loss went negative: unbalanced descend/backup"
                        )
                    residue = 0.0
                virtual_loss[node] = residue
            v = -v
            node = int(parent[node])

    # -- root utilities ------------------------------------------------------
    def add_dirichlet_noise(
        self,
        idx: int,
        rng: np.random.Generator,
        alpha: float = 0.3,
        epsilon: float = 0.25,
    ) -> None:
        """Vectorised Dirichlet root-noise mixing (AlphaZero exploration)."""
        k = int(self.child_count[idx])
        if k == 0:
            raise ValueError("expand the root before adding noise")
        sl = self.children_slice(idx)
        # same RNG consumption as the Node backend: one dirichlet([alpha]*k)
        noise = rng.dirichlet([alpha] * k)
        self.prior[sl] = (1 - epsilon) * self.prior[sl] + epsilon * noise

    def action_prior(self, idx: int, action_size: int) -> np.ndarray:
        """Normalised root visit counts over the full action space."""
        sl = self.children_slice(idx)
        visits = self.visit_count[sl]
        total = int(visits.sum())
        if total == 0:
            raise ValueError("root has no visited children; run playouts first")
        prior = np.zeros(action_size, dtype=np.float64)
        prior[self.action[sl]] = visits
        return prior / total

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArrayTree(size={self.size}, capacity={self._capacity})"


class ArrayNodeView:
    """A ``Node``-shaped handle onto one row of an :class:`ArrayTree`.

    Duck-types the read *and* write surface of :class:`repro.mcts.node.Node`
    (statistics properties, ``children``, traversal helpers) so every
    scheme, test and tool that walks a ``Node`` tree works unchanged on
    the array backend; the hot-path primitives in :mod:`repro.mcts.uct`
    and :mod:`repro.mcts.search` recognise the view and bypass it
    entirely, operating on the underlying arrays.
    """

    __slots__ = ("tree", "index")

    def __init__(self, tree: ArrayTree, index: int) -> None:
        self.tree = tree
        self.index = index

    # -- structure -----------------------------------------------------------
    @property
    def parent(self) -> "ArrayNodeView | None":
        p = int(self.tree.parent[self.index])
        return None if p == NO_PARENT else ArrayNodeView(self.tree, p)

    @property
    def action(self) -> int:
        return int(self.tree.action[self.index])

    @property
    def is_leaf(self) -> bool:
        return self.tree.is_leaf(self.index)

    @property
    def is_root(self) -> bool:
        return int(self.tree.parent[self.index]) == NO_PARENT

    @property
    def is_terminal(self) -> bool:
        return self.tree.is_terminal(self.index)

    @property
    def terminal_value(self) -> float | None:
        if not self.tree.is_terminal_flag[self.index]:
            return None
        return float(self.tree.terminal_value[self.index])

    @terminal_value.setter
    def terminal_value(self, value: float) -> None:
        self.tree.mark_terminal(self.index, value)

    @property
    def children(self) -> dict[int, "ArrayNodeView"]:
        tree = self.tree
        sl = tree.children_slice(self.index)
        return {
            int(tree.action[row]): ArrayNodeView(tree, row)
            for row in range(sl.start, sl.stop)
        }

    def add_child(self, action: int, prior: float) -> "ArrayNodeView":
        raise TypeError(
            "the array backend allocates child slabs whole; use "
            "repro.mcts.search.expand or ArrayTree.expand"
        )

    # -- statistics -----------------------------------------------------------
    @property
    def prior(self) -> float:
        return float(self.tree.prior[self.index])

    @prior.setter
    def prior(self, value: float) -> None:
        self.tree.prior[self.index] = value

    @property
    def visit_count(self) -> int:
        return int(self.tree.visit_count[self.index])

    @visit_count.setter
    def visit_count(self, value: int) -> None:
        self.tree.visit_count[self.index] = value

    @property
    def value_sum(self) -> float:
        return float(self.tree.value_sum[self.index])

    @value_sum.setter
    def value_sum(self, value: float) -> None:
        self.tree.value_sum[self.index] = value

    @property
    def virtual_loss(self) -> float:
        return float(self.tree.virtual_loss[self.index])

    @virtual_loss.setter
    def virtual_loss(self, value: float) -> None:
        self.tree.virtual_loss[self.index] = value

    @property
    def q(self) -> float:
        n = int(self.tree.visit_count[self.index])
        return float(self.tree.value_sum[self.index]) / n if n else 0.0

    # -- traversal helpers -----------------------------------------------------
    def path_from_root(self) -> list[int]:
        path = self.tree.path_to_root(self.index)
        return [int(self.tree.action[row]) for row in path[-2::-1]]

    def depth(self) -> int:
        return len(self.tree.path_to_root(self.index)) - 1

    def iter_subtree(self) -> Iterator["ArrayNodeView"]:
        tree = self.tree
        stack = [self.index]
        while stack:
            row = stack.pop()
            yield ArrayNodeView(tree, row)
            sl = tree.children_slice(row)
            stack.extend(range(sl.start, sl.stop))

    def subtree_size(self) -> int:
        return sum(1 for _ in self.iter_subtree())

    def max_depth(self) -> int:
        tree = self.tree
        best = 0
        stack = [(self.index, 0)]
        while stack:
            row, d = stack.pop()
            best = max(best, d)
            sl = tree.children_slice(row)
            stack.extend((c, d + 1) for c in range(sl.start, sl.stop))
        return best

    # -- identity -------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayNodeView)
            and other.tree is self.tree
            and other.index == self.index
        )

    def __hash__(self) -> int:
        return hash((id(self.tree), self.index))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ArrayNodeView(index={self.index}, action={self.action}, "
            f"N={self.visit_count}, Q={self.q:+.3f}, P={self.prior:.3f}, "
            f"children={int(self.tree.child_count[self.index])})"
        )
