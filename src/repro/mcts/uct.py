"""Equation-1 PUCT scoring and child selection.

    U(s, a) = Q(s, a) + c * P(s, a) * sqrt(sum_b N(s, b)) / (1 + N(s, a))

with virtual-loss-adjusted statistics supplied by a
:class:`repro.mcts.virtual_loss.VirtualLossPolicy`.

Both tree backends are served here: ``Node`` trees take the per-child
path below, :class:`repro.mcts.arraytree.ArrayNodeView` handles dispatch
to the vectorised slab operations.  The ``sqrt`` numerator is derived
from the parent's *own* counters in both paths (``sum_b N(s,b) == N(s) -
1`` for any expanded non-terminal node -- see
:meth:`~repro.mcts.virtual_loss.VirtualLossPolicy.parent_visit_total`),
so neither backend loops the children twice.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mcts.arraytree import ArrayNodeView
from repro.mcts.node import Node
from repro.mcts.virtual_loss import NoVirtualLoss, VirtualLossPolicy

__all__ = ["uct_scores", "select_child"]

_NO_VL = NoVirtualLoss()


def uct_scores(
    node: "Node | ArrayNodeView",
    c_puct: float,
    vl_policy: VirtualLossPolicy | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """UCT scores of all children of *node*.

    Returns ``(actions, scores)`` as parallel arrays (actions sorted
    ascending for determinism).
    """
    vl = vl_policy or _NO_VL
    if isinstance(node, ArrayNodeView):
        return node.tree.uct_scores(node.index, c_puct, vl)
    if node.is_leaf:
        raise ValueError("uct_scores on an unexpanded node")
    actions = np.array(sorted(node.children), dtype=np.int64)
    n_parent = vl.parent_visit_total(node.visit_count, node.virtual_loss)
    # Floor at 1 so that, before any child has been visited, selection
    # falls back to argmax of the priors instead of degenerating to ties.
    sqrt_parent = math.sqrt(max(n_parent, 1.0))
    scores = np.empty(len(actions), dtype=np.float64)
    for i, a in enumerate(actions):
        child = node.children[a]
        n_eff, q_eff = vl.effective_stats(child)
        scores[i] = q_eff + c_puct * child.prior * sqrt_parent / (1.0 + n_eff)
    return actions, scores


def select_child(
    node: "Node | ArrayNodeView",
    c_puct: float,
    vl_policy: VirtualLossPolicy | None = None,
) -> "Node | ArrayNodeView":
    """Argmax of Equation 1 over *node*'s children (ties -> lowest action)."""
    if isinstance(node, ArrayNodeView):
        row = node.tree.select_child_index(node.index, c_puct, vl_policy)
        return ArrayNodeView(node.tree, row)
    actions, scores = uct_scores(node, c_puct, vl_policy)
    best = int(np.argmax(scores))
    return node.children[int(actions[best])]
